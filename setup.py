"""Setup shim so the package installs in environments without the
``wheel`` module (offline legacy ``pip install -e`` path)."""

from setuptools import setup

setup()
