#!/usr/bin/env python3
"""Quickstart: exact synthesis of the paper's running example.

Synthesizes ``f = 0x8ff8`` (Example 7: ``or(and(a, b), xor(c, d))``)
with the STP-based engine, prints every optimal 2-LUT chain, and
re-verifies one of them with the STP circuit AllSAT solver.

Run::

    python examples/quickstart.py
"""

from repro.core import synthesize, verify_chain
from repro.truthtable import from_hex


def main() -> None:
    target = from_hex("8ff8", 4)
    print(f"target function: 0x{target.to_hex()} over 4 inputs")
    print(f"onset minterms:  {target.onset()}\n")

    result = synthesize(target, timeout=60, max_solutions=16)

    print(
        f"optimum size: {result.num_gates} gates; "
        f"{result.num_solutions} optimal chains found "
        f"in {result.runtime:.3f}s "
        f"({result.stats.dags_examined} pDAGs examined)\n"
    )
    for index, chain in enumerate(result.chains, start=1):
        print(f"solution {index}:")
        print("  " + chain.format().replace("\n", "\n  "))
        assert chain.simulate_output() == target
        print()

    best = result.best
    print("circuit AllSAT re-verification of solution 1:",
          "PASS" if verify_chain(best, target) else "FAIL")


if __name__ == "__main__":
    main()
