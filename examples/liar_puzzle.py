#!/usr/bin/env python3
"""The paper's Example 4: STP logical reasoning and AllSAT.

Three people are each either honest or a liar.  ``a`` says ``b`` lies,
``b`` says ``c`` lies, and ``c`` says both ``a`` and ``b`` lie.  Who is
honest?  The formula is brought into STP canonical form (Property 2)
and solved by extracting the ``[1 0]^T`` columns (Fig. 1).

Run::

    python examples/liar_puzzle.py
"""

import numpy as np

from repro.stp import (
    M_D,
    M_I,
    M_N,
    STPSolver,
    parse,
    prove_identity,
    stp,
)


def main() -> None:
    # Example 2 warm-up: prove a -> b == ~a | b two ways.
    print("Example 2: prove  a -> b  ==  ~a | b")
    print("  matrix identity M_d ⋉ M_n == M_i:",
          np.array_equal(stp(M_D, M_N), M_I))
    print("  canonical-form identity:",
          prove_identity(parse("a -> b"), parse("~a | b")))
    print()

    # Example 4: the liar puzzle.
    formula = parse("(a <-> ~b) & (b <-> ~c) & (c <-> (~a & ~b))")
    print(f"Example 4 formula: {formula}")
    solver = STPSolver(formula)
    print("canonical form M_Φ =")
    print(solver.canonical_form)

    solutions = solver.solutions_as_dicts()
    print(f"\nAllSAT found {len(solutions)} solution(s):")
    for solution in solutions:
        roles = {
            name: "honest" if value else "liar"
            for name, value in solution.items()
        }
        print(f"  {roles}")
    assert solutions == [{"a": 0, "b": 1, "c": 0}]
    print("\n=> only b is honest, as in the paper.")


if __name__ == "__main__":
    main()
