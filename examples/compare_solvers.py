#!/usr/bin/env python3
"""Head-to-head: STP vs the three baselines on sample functions.

A miniature of the paper's Table I: runs BMS (plain SSV SAT), FEN
(fence-constrained SAT), the ABC ``lutexact``-style CEGAR engine and
the STP synthesizer on a handful of functions from each suite family
and prints per-instance timings.

Run::

    python examples/compare_solvers.py
"""

import time

from repro.bench.runner import default_algorithms
from repro.truthtable import fdsd_suite, from_hex, majority, parity, pdsd_suite


def main() -> None:
    cases = [
        ("maj3 (prime)", majority(3)),
        ("parity4", parity(4)),
        ("0x8ff8 (Example 7)", from_hex("8ff8", 4)),
        ("fdsd6 sample", fdsd_suite(6, 1, seed=42)[0]),
        ("pdsd6 sample", pdsd_suite(6, 1, seed=42)[0]),
    ]
    algorithms = default_algorithms(max_solutions=64)

    header = f"{'function':22s}" + "".join(
        f"{a.name:>14s}" for a in algorithms
    )
    print(header)
    print("-" * len(header))
    for name, function in cases:
        row = f"{name:22s}"
        gates = {}
        for algorithm in algorithms:
            start = time.perf_counter()
            try:
                result = algorithm.run(function, 60.0)
                elapsed = time.perf_counter() - start
                gates[algorithm.name] = result.num_gates
                suffix = (
                    f"[{result.num_solutions}]"
                    if algorithm.all_solutions
                    else ""
                )
                row += f"{elapsed:10.3f}s{suffix:>4s}"
            except TimeoutError:
                row += f"{'t/o':>14s}"
        print(row + f"   (gates: {gates})")
        sizes = set(gates.values())
        if len(sizes) > 1:
            print(f"   NOTE: engines disagree on gate count: {gates}")

    print("\nSTP numbers in [brackets] are all-solutions counts; the")
    print("baselines return a single chain per run.")


if __name__ == "__main__":
    main()
