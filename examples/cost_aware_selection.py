#!/usr/bin/env python3
"""Cost-aware selection over the all-solutions set.

The paper's key practical argument for AllSAT-style exact synthesis:
because *every* optimal chain comes back as 2-LUTs, the most
cost-effective one can be picked per design target — area, depth,
XOR-avoiding technology weights, or fanout — without re-running
synthesis.

Run::

    python examples/cost_aware_selection.py
"""

from repro.chain import COST_MODELS, rank_solutions, select_best
from repro.core import synthesize
from repro.truthtable import majority


def main() -> None:
    target = majority(3)
    print("target: MAJ3 (0x%s)\n" % target.to_hex())

    result = synthesize(target, timeout=120, max_solutions=512)
    print(
        f"{result.num_solutions} optimal {result.num_gates}-gate chains "
        f"found in {result.runtime:.2f}s\n"
    )

    for cost_name in ("gates", "depth", "weighted", "fanout"):
        best = select_best(result.chains, cost_name)
        cost = COST_MODELS[cost_name](best)
        print(f"best under {cost_name!r:10s} (cost {cost:4.1f}):")
        print("  " + best.format().replace("\n", "\n  "))
        print()

    # Depth distribution across the whole solution set.
    ranked = rank_solutions(result.chains, "depth")
    depths = {}
    for cost, _ in ranked:
        depths[cost] = depths.get(cost, 0) + 1
    print("depth histogram over all optimal chains:", dict(sorted(depths.items())))
    shallowest = ranked[0][0]
    print(f"=> same gate count, but depth varies; the best is {shallowest:.0f} levels.")


if __name__ == "__main__":
    main()
