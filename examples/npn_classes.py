#!/usr/bin/env python3
"""NPN classification and synthesis of class representatives.

Recomputes a slice of the NPN4 suite from scratch — canonicalizing raw
truth tables into class representatives — then synthesizes optimal
chains for a few classes and maps a chain back through the NPN
transform, illustrating how exact synthesis databases are built.

Run::

    python examples/npn_classes.py
"""

import random

from repro.core import synthesize
from repro.truthtable import TruthTable, exact_canonical


def main() -> None:
    rng = random.Random(2023)

    # 1. Canonicalize random functions; orbit-mates share a class.
    print("NPN canonicalization of random 4-input functions:")
    for _ in range(4):
        raw = TruthTable(rng.getrandbits(16), 4)
        rep, transform = exact_canonical(raw)
        back = transform.inverse().apply(rep)
        assert back == raw
        print(
            f"  0x{raw.to_hex()} -> class 0x{rep.to_hex()} "
            f"(perm={transform.perm}, flips={transform.input_flips:04b}, "
            f"out={int(transform.output_flip)})"
        )
    print()

    # 2. Synthesize representatives once; reuse for the whole orbit.
    from repro.bench.suites import npn4_suite

    classes = npn4_suite()
    print(f"the NPN4 suite has {len(classes)} classes; synthesizing 5:")
    for rep in classes[16:21]:
        result = synthesize(rep, timeout=60, max_solutions=8)
        print(
            f"  class 0x{rep.to_hex()}: {result.num_gates} gates, "
            f"{result.num_solutions}+ optimal chains, "
            f"{result.runtime:.3f}s"
        )

    # 3. A chain synthesized for the representative serves any orbit
    #    member: apply the inverse transform to the inputs/output.
    raw = TruthTable(rng.getrandbits(16), 4)
    rep, transform = exact_canonical(raw)
    result = synthesize(rep, timeout=60, max_solutions=4)
    print(
        f"\nclass database hit: raw 0x{raw.to_hex()} reuses the "
        f"{result.num_gates}-gate chain of class 0x{rep.to_hex()}"
    )


if __name__ == "__main__":
    main()
