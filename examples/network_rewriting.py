#!/usr/bin/env python3
"""Exact-synthesis-based network rewriting — the application side.

Builds a deliberately redundant LUT network, runs a DAG-aware
rewriting pass that replaces cut logic with optimal chains from the
NPN database (every replacement is a size-optimal Boolean chain from
the STP synthesizer), and round-trips the result through BLIF.

Run::

    python examples/network_rewriting.py
"""

import random

from repro.core import NPNDatabase
from repro.network import (
    LogicNetwork,
    network_to_blif,
    blif_to_network,
    rewrite_network,
)
from repro.truthtable import TruthTable, binary_op_table


def build_redundant_network() -> LogicNetwork:
    """and(a,b) | (c ^ d), written as wastefully as possible."""
    net = LogicNetwork("wasteful")
    a, b, c, d = [net.add_pi() for _ in range(4)]
    n_nand = net.add_node(binary_op_table(0x7), (a, b))
    n_and = net.add_node(TruthTable(0b01, 1), (n_nand,))  # not(nand)
    n_or1 = net.add_node(binary_op_table(0xE), (c, d))
    n_nand2 = net.add_node(binary_op_table(0x7), (c, d))
    n_xor = net.add_node(binary_op_table(0x8), (n_or1, n_nand2))  # (c|d)&~(c&d)
    n_out = net.add_node(binary_op_table(0xE), (n_and, n_xor))
    net.add_po(n_out)
    return net


def main() -> None:
    rng = random.Random(7)
    database = NPNDatabase(timeout=60)

    net = build_redundant_network()
    target = net.simulate()[0]
    print(f"function: 0x{target.to_hex()}")
    print(f"before: {net.num_gates()} LUTs, depth {net.depth()}")

    result = rewrite_network(net, database=database)
    assert net.simulate()[0] == target  # function preserved
    print(
        f"after : {net.num_gates()} LUTs, depth {net.depth()} "
        f"({result.replacements} replacements, "
        f"{result.cuts_tried} cuts examined)"
    )

    blif = network_to_blif(net)
    print("\nBLIF export:\n" + blif)
    assert blif_to_network(blif).simulate()[0] == target

    # A bigger random cleanup, same database (classes are cached).
    big = LogicNetwork("random")
    nodes = [big.add_pi() for _ in range(5)]
    for _ in range(14):
        k = rng.choice([1, 2, 2, 3])
        fanins = [rng.choice(nodes) for _ in range(k)]
        nodes.append(
            big.add_node(TruthTable(rng.getrandbits(1 << k), k), fanins)
        )
    big.add_po(nodes[-1])
    want = big.simulate()[0]
    result = rewrite_network(big, database=database)
    assert big.simulate()[0] == want
    print(
        f"random network: {result.gates_before} -> {result.gates_after} "
        f"LUTs ({len(database)} NPN classes synthesized so far)"
    )


if __name__ == "__main__":
    main()
