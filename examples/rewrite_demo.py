#!/usr/bin/env python3
"""Store-backed network rewriting, end to end.

Loads the bundled naive full adder (two outputs sharing logic), runs
a store-backed rewriting pass — every cut function is served from a
persistent chain store or synthesized exactly and written back — then
replays the same rewrite against the warmed store to show the second
run needs **zero** synthesis calls.  The rewritten network is verified
by packed simulation and exported back to BLIF.

Run::

    python examples/rewrite_demo.py

This is the scripted twin of the CLI::

    repro-rewrite examples/circuits/fulladder_naive.blif --store db.sqlite
"""

import os
import tempfile
from pathlib import Path

from repro.network import (
    blif_to_network,
    network_to_blif,
    rewrite_with_store,
)
from repro.store import ChainStore

CIRCUIT = Path(__file__).resolve().parent / "circuits" / "fulladder_naive.blif"


def load_network():
    return blif_to_network(CIRCUIT.read_text())


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="rewrite-demo-") as tmp:
        store_path = os.path.join(tmp, "chains.db")

        # -- cold pass: misses synthesize and write back -------------
        net = load_network()
        baseline = [t.bits for t in net.simulate()]
        print(f"loaded {CIRCUIT.name}: {net.num_gates()} LUTs, "
              f"{len(net.pos)} outputs")
        with ChainStore(store_path) as store:
            cold = rewrite_with_store(net, store, timeout_per_cut=30.0)
        print(f"cold pass: {cold.gates_before} -> {cold.gates_after} "
              f"gates ({cold.synthesis_calls} synthesis call(s), "
              f"{cold.store_hits} store hit(s))")

        # The pass already verified-and-committed; check once more
        # from the caller's side.
        assert cold.verified
        assert [t.bits for t in net.simulate()] == baseline
        print("packed simulation: rewritten network is equivalent")

        # -- warm pass: every class is served from the store ---------
        replay = load_network()
        with ChainStore(store_path) as store:
            warm = rewrite_with_store(replay, store, timeout_per_cut=30.0)
        print(f"warm pass: {warm.gates_before} -> {warm.gates_after} "
              f"gates ({warm.synthesis_calls} synthesis call(s), "
              f"{warm.store_hits} store hit(s))")
        assert warm.synthesis_calls == 0
        assert warm.gain == cold.gain
        print("warm replay reproduced the rewrite with zero synthesis")

        # -- export --------------------------------------------------
        out_path = os.path.join(tmp, "fulladder_rewritten.blif")
        with open(out_path, "w") as handle:
            handle.write(network_to_blif(net))
        round_trip = blif_to_network(open(out_path).read())
        assert [t.bits for t in round_trip.simulate()] == baseline
        print(f"exported {net.num_gates()}-LUT network to BLIF and "
              f"round-tripped it losslessly")


if __name__ == "__main__":
    main()
