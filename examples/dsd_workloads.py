#!/usr/bin/env python3
"""Generating and analysing the FDSD/PDSD workloads.

Shows the benchmark-suite machinery end to end: generate fully and
partially DSD-decomposable functions, print their decomposition trees,
and synthesize them with the hierarchical STP engine — the fast path
that makes the paper's FDSD speedups possible.

Run::

    python examples/dsd_workloads.py
"""

from repro.core import hierarchical_synthesize
from repro.truthtable import (
    dsd_decompose,
    dsd_kind,
    fdsd_suite,
    pdsd_suite,
)


def main() -> None:
    print("=== fully DSD-decomposable (FDSD6) ===")
    for function in fdsd_suite(6, 3, seed=7):
        tree = dsd_decompose(function)
        result = hierarchical_synthesize(
            function, timeout=60, max_solutions=32
        )
        print(f"0x{function.to_hex()}  [{dsd_kind(function)}]")
        print(f"  tree : {tree.format()}")
        print(
            f"  synth: {result.num_gates} gates, "
            f"{result.num_solutions} solutions, {result.runtime:.3f}s"
        )
        assert result.num_gates == function.support_size() - 1

    print("\n=== partially DSD-decomposable (PDSD6) ===")
    for function in pdsd_suite(6, 2, seed=7):
        tree = dsd_decompose(function)
        result = hierarchical_synthesize(
            function, timeout=120, max_solutions=32
        )
        print(f"0x{function.to_hex()}  [{dsd_kind(function)}]")
        print(f"  tree : {tree.format()}")
        print(
            f"  synth: {result.num_gates} gates "
            f"(prime block of {tree.max_prime_arity()} inputs "
            f"synthesized exactly), {result.runtime:.3f}s"
        )


if __name__ == "__main__":
    main()
