"""Property-based tests on DSD invariants (hypothesis-heavy)."""

import random

from hypothesis import given, settings, strategies as st

from repro.truthtable import (
    DSDKind,
    TruthTable,
    binary_op_table,
    dsd_decompose,
    dsd_kind,
    is_fully_dsd,
    projection,
    random_fully_dsd,
    random_prime_function,
)


class TestKindInvariance:
    @given(st.integers(0, 0xFFFF), st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_kind_invariant_under_var_swap(self, bits, a, b):
        t = TruthTable(bits, 4)
        swapped = t.swap_vars(a, b)
        assert dsd_kind(t) == dsd_kind(swapped)

    @given(st.integers(0, 0xFFFF), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_kind_invariant_under_input_flip(self, bits, var):
        t = TruthTable(bits, 4)
        assert dsd_kind(t) == dsd_kind(t.flip_var(var))

    @given(st.integers(0, 0xFFFF))
    @settings(max_examples=40, deadline=None)
    def test_kind_invariant_under_output_flip(self, bits):
        t = TruthTable(bits, 4)
        assert dsd_kind(t) == dsd_kind(~t)


class TestCompositionalProperties:
    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_fdsd_closed_under_gate_composition(self, seed):
        """Joining two disjoint fully-DSD functions with a nontrivial
        gate stays fully DSD."""
        rnd = random.Random(seed)
        left = random_fully_dsd(3, rnd)
        right = random_fully_dsd(3, rnd)
        code = rnd.choice((0x6, 0x8, 0xE, 0x9, 0x7, 0x1))
        op = binary_op_table(code)
        inner_left = left.compose(
            [projection(i, 6) for i in range(3)]
        )
        inner_right = right.compose(
            [projection(i + 3, 6) for i in range(3)]
        )
        combined = op.compose([inner_left, inner_right])
        assert is_fully_dsd(combined)

    @given(st.integers(0, 10**9))
    @settings(max_examples=10, deadline=None)
    def test_prime_plus_disjoint_var_is_partial(self, seed):
        rnd = random.Random(seed)
        prime = random_prime_function(3, rnd)
        inner = prime.compose([projection(i, 4) for i in range(3)])
        combined = inner ^ projection(3, 4)
        assert dsd_kind(combined) == DSDKind.PARTIAL

    @given(st.integers(0, 10**9))
    @settings(max_examples=15, deadline=None)
    def test_tree_roundtrip_structured(self, seed):
        rnd = random.Random(seed)
        t = random_fully_dsd(rnd.choice([4, 5, 6]), rnd)
        tree = dsd_decompose(t)
        assert tree.to_truth_table(t.num_vars) == t
        assert tree.max_prime_arity() == 0
