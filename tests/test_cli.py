"""CLI exit-code and fallback-trail tests (real subprocesses).

The CLI contract is part of the robustness story: scripts branch on
exit codes (0 ok, 2 timeout, 3 crash, 4 infeasible, 65 bad input) and
read the engine-fallback trail from stderr while stdout stays
parseable.
"""

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")


def run_cli(*argv, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=REPO,
    )


class TestExitCodes:
    def test_ok(self):
        proc = run_cli("8ff8", "--vars", "4", "--max-solutions", "2")
        assert proc.returncode == 0
        assert "optimum 3 gates" in proc.stdout
        assert "[stp]" in proc.stdout

    def test_timeout_is_2(self):
        proc = run_cli(
            "8ff8", "--vars", "4", "--inject-fault", "timeout"
        )
        assert proc.returncode == 2
        assert "timeout" in proc.stderr
        assert proc.stdout == ""

    def test_crash_without_fallback_is_3(self):
        proc = run_cli(
            "8ff8",
            "--vars",
            "4",
            "--inject-fault",
            "crash",
            "--no-fallback",
        )
        assert proc.returncode == 3
        assert "crash" in proc.stderr

    def test_infeasible_is_4(self):
        proc = run_cli(
            "8ff8", "--vars", "4", "--max-gates", "1", "--no-fallback"
        )
        assert proc.returncode == 4
        assert "infeasible" in proc.stderr

    def test_bad_hex_is_65(self):
        proc = run_cli("zzzz", "--vars", "4")
        assert proc.returncode == 65
        assert "error:" in proc.stderr


class TestFallbackTrail:
    def test_crash_falls_back_to_fen_and_reports_on_stderr(self):
        proc = run_cli(
            "8ff8", "--vars", "4", "--inject-fault", "crash"
        )
        assert proc.returncode == 0
        assert "fell back: stp -> fen" in proc.stderr
        assert "crash" in proc.stderr
        # stdout carries only the result, attributed to the rescuer
        assert "[fen]" in proc.stdout
        assert "optimum 3 gates" in proc.stdout
        assert "fell back" not in proc.stdout

    def test_corrupt_result_is_rejected_then_rescued(self):
        proc = run_cli(
            "8ff8", "--vars", "4", "--inject-fault", "corrupt"
        )
        assert proc.returncode == 0
        assert "corrupt" in proc.stderr
        assert "[fen]" in proc.stdout


class TestIsolation:
    @pytest.mark.slow
    def test_hung_worker_is_killed_and_exits_2(self):
        proc = run_cli(
            "8ff8",
            "--vars",
            "4",
            "--isolate",
            "--no-fallback",
            "--timeout",
            "1.0",
            "--inject-fault",
            "hang",
            timeout=30,
        )
        assert proc.returncode == 2
        assert "timeout" in proc.stderr

    @pytest.mark.slow
    def test_hard_crash_in_worker_exits_3(self):
        proc = run_cli(
            "8ff8",
            "--vars",
            "4",
            "--isolate",
            "--no-fallback",
            "--inject-fault",
            "hard-crash",
            timeout=30,
        )
        assert proc.returncode == 3
        assert "crash" in proc.stderr
