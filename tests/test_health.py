"""Engine health scores: circuit breakers and adaptive deadlines."""

import pytest

from repro.runtime.health import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    EngineHealth,
)
from repro.truthtable import from_hex


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def health(clock):
    return EngineHealth(
        window=8,
        failure_threshold=0.5,
        min_samples=4,
        cooldown=10.0,
        clock=clock,
    )


class TestBreakerTransitions:
    def test_fresh_engine_is_closed(self, health):
        assert health.state("stp") == BREAKER_CLOSED

    def test_opens_after_repeated_failures(self, health):
        for _ in range(4):
            health.record("stp", "crash")
        assert health.state("stp") == BREAKER_OPEN

    def test_min_samples_guards_single_early_crash(self, health):
        health.record("stp", "crash")
        assert health.state("stp") == BREAKER_CLOSED

    def test_infeasible_is_not_a_failure(self, health):
        # Infeasibility is a correct answer about the problem, not a
        # malfunction — it must never trip the breaker.
        for _ in range(16):
            health.record("stp", "infeasible")
        assert health.state("stp") == BREAKER_CLOSED

    def test_cooldown_half_opens(self, health, clock):
        for _ in range(4):
            health.record("stp", "timeout")
        assert health.state("stp") == BREAKER_OPEN
        clock.advance(9.0)
        assert health.state("stp") == BREAKER_OPEN
        clock.advance(2.0)
        assert health.state("stp") == BREAKER_HALF_OPEN

    def test_probe_success_closes(self, health, clock):
        for _ in range(4):
            health.record("stp", "crash")
        clock.advance(11.0)
        assert health.select(["stp"]) == ["stp"]  # the probe
        health.record("stp", "ok")
        assert health.state("stp") == BREAKER_CLOSED

    def test_probe_failure_reopens(self, health, clock):
        for _ in range(4):
            health.record("stp", "crash")
        clock.advance(11.0)
        assert health.select(["stp"]) == ["stp"]
        health.record("stp", "timeout")
        assert health.state("stp") == BREAKER_OPEN
        # ... and the cooldown restarts from the re-open.
        clock.advance(9.0)
        assert health.state("stp") == BREAKER_OPEN
        clock.advance(2.0)
        assert health.state("stp") == BREAKER_HALF_OPEN


class TestSelect:
    def test_open_engines_are_skipped(self, health):
        for _ in range(4):
            health.record("stp", "crash")
        assert health.select(["stp", "fen"]) == ["fen"]

    def test_half_open_admits_exactly_one_probe(self, health, clock):
        for _ in range(4):
            health.record("stp", "crash")
        clock.advance(11.0)
        assert health.select(["stp", "fen"]) == ["stp", "fen"]
        # The probe token is consumed until the next record().
        assert health.select(["stp", "fen"]) == ["fen"]

    def test_never_returns_empty(self, health):
        for name in ("stp", "fen"):
            for _ in range(4):
                health.record(name, "crash")
        # Everything is open, but dispatch must still get a lane.
        assert health.select(["stp", "fen"]) == ["stp"]

    def test_limit_caps_width(self, health):
        lanes = health.select(["stp", "fen", "cegis"], limit=2)
        assert lanes == ["stp", "fen"]


class TestAdaptiveDeadlines:
    def test_no_history_means_full_budget(self, health):
        assert health.suggest_timeout(from_hex("8ff8", 4), 60.0) is None

    def test_suggestion_scales_worst_recent_time(self, health):
        f = from_hex("8ff8", 4)
        health.record("stp", "ok", 0.5, function=f)
        health.record("fen", "ok", 1.0, function=f)
        # margin (4.0) × worst recent (1.0), clamped to the budget.
        assert health.suggest_timeout(f, 60.0) == pytest.approx(4.0)
        assert health.suggest_timeout(f, 2.0) == pytest.approx(2.0)

    def test_floor_clamps_tiny_histories(self, health):
        f = from_hex("8ff8", 4)
        health.record("stp", "ok", 0.001, function=f)
        assert health.suggest_timeout(f, 60.0) == pytest.approx(0.5)

    def test_history_is_shared_across_the_npn_orbit(self, health):
        # 0x8ff8 and its complement share a canonical class, so one
        # solve seeds the deadline for the whole orbit.
        f = from_hex("8ff8", 4)
        g = ~f
        health.record("stp", "ok", 1.0, function=f)
        assert health.suggest_timeout(g, 60.0) == pytest.approx(4.0)

    def test_seed_class_times(self, health):
        f = from_hex("8ff8", 4)
        from repro.cache import get_cache

        canon, _ = get_cache().npn_canonical(f)
        health.seed_class_times([(4, canon.to_hex(), 2.0)])
        assert health.suggest_timeout(f, 60.0) == pytest.approx(8.0)


class TestIntrospection:
    def test_to_record_snapshot(self, health):
        health.record("stp", "ok")
        health.record("fen", "crash")
        snapshot = health.to_record()
        assert snapshot["stp"]["state"] == BREAKER_CLOSED
        assert snapshot["stp"]["failure_rate"] == 0.0
        assert snapshot["fen"]["samples"] == 1
        assert snapshot["fen"]["failure_rate"] == 1.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            EngineHealth(failure_threshold=0.0)
