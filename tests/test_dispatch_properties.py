"""Property tests for the priority/deadline dispatch queue.

The :class:`repro.parallel.dispatch.DispatchQueue` is the ordering
heart of deadline-aware serving — every dispatcher thread trusts it
for three invariants that are awkward to pin down with example tests
but trivial to state as properties over random workloads:

1. **Band ordering** — a lower-urgency item is never handed out while
   a higher-urgency item is already waiting in the queue.
2. **No silent expiry** — an item whose deadline has lapsed by pop
   time is always flagged ``expired=True`` (the dispatcher answers it
   504 in O(1) without occupying a worker), and an item with deadline
   slack is never flagged.
3. **FIFO within a key** — items with equal ``(band, deadline)`` come
   out in insertion order, so equal-priority clients are served
   fairly.

Hypothesis drives interleavings with a fake clock injected through
the queue's ``clock`` parameter; nothing here sleeps.
"""

from __future__ import annotations

from queue import Empty

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.dispatch import (
    PRIORITY_BANDS,
    DispatchQueue,
    normalize_priority,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


# One queued item: (band, deadline-offset-or-None, advance-after-put).
_items = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.one_of(
        st.none(),
        st.floats(
            min_value=0.001,
            max_value=100.0,
            allow_nan=False,
            allow_infinity=False,
        ),
    ),
    st.floats(
        min_value=0.0,
        max_value=5.0,
        allow_nan=False,
        allow_infinity=False,
    ),
)


def _drain(queue: DispatchQueue) -> list:
    popped = []
    while True:
        try:
            popped.append(queue.get(timeout=0))
        except Empty:
            return popped


class TestBandOrdering:
    @given(st.lists(_items, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_never_dispatch_lower_band_before_ready_higher(self, items):
        """Pops come out in non-decreasing band order (all puts first)."""
        clock = FakeClock()
        queue = DispatchQueue(clock=clock)
        for index, (band, deadline_off, _advance) in enumerate(items):
            deadline = (
                None if deadline_off is None else clock.now + deadline_off
            )
            queue.put((index, band), band=band, deadline=deadline)
        popped = _drain(queue)
        assert len(popped) == len(items)
        bands = [payload[1] for payload, _expired in popped]
        assert bands == sorted(bands)

    @given(st.lists(_items, min_size=2, max_size=30), st.data())
    @settings(max_examples=200, deadline=None)
    def test_interleaved_pops_respect_waiting_higher_band(
        self, items, data
    ):
        """Even with puts and pops interleaved, a pop never returns a
        band when a strictly more urgent item is already queued."""
        clock = FakeClock()
        queue = DispatchQueue(clock=clock)
        waiting: list[int] = []  # bands currently in the queue
        for index, (band, deadline_off, _advance) in enumerate(items):
            deadline = (
                None if deadline_off is None else clock.now + deadline_off
            )
            queue.put((index, band), band=band, deadline=deadline)
            waiting.append(band)
            if waiting and data.draw(st.booleans()):
                (payload, _expired) = queue.get(timeout=0)
                waiting.remove(payload[1])
                assert payload[1] == min(
                    w for w in waiting + [payload[1]]
                )
        for payload, _expired in _drain(queue):
            waiting.remove(payload[1])
            assert payload[1] <= min(waiting, default=payload[1])
        assert not waiting


class TestExpiryFlag:
    @given(st.lists(_items, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_expired_iff_deadline_lapsed_at_pop(self, items):
        """The expired flag is exactly ``deadline <= now`` at pop time —
        lapsed deadlines are never dispatched unflagged, and live ones
        are never flagged."""
        clock = FakeClock()
        queue = DispatchQueue(clock=clock)
        deadlines: dict[int, float | None] = {}
        for index, (band, deadline_off, advance) in enumerate(items):
            deadline = (
                None if deadline_off is None else clock.now + deadline_off
            )
            deadlines[index] = deadline
            queue.put(index, band=band, deadline=deadline)
            clock.now += advance
        for payload, expired in _drain(queue):
            deadline = deadlines[payload]
            should_expire = (
                deadline is not None and clock.now >= deadline
            )
            assert expired == should_expire

    def test_deadline_crossing_between_puts(self):
        """An item can expire while queued behind a long-running pop."""
        clock = FakeClock()
        queue = DispatchQueue(clock=clock)
        queue.put("a", band=1, deadline=10.0)
        queue.put("b", band=1, deadline=1000.0)
        clock.now = 50.0
        assert queue.get(timeout=0) == ("a", True)
        assert queue.get(timeout=0) == ("b", False)


class TestFifoWithinKey:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_fifo_within_equal_band_no_deadline(self, bands):
        """Same (band, no-deadline) items come out in insertion order."""
        queue = DispatchQueue(clock=FakeClock())
        for index, band in enumerate(bands):
            queue.put((band, index), band=band)
        last_seen: dict[int, int] = {}
        for (band, index), _expired in _drain(queue):
            assert last_seen.get(band, -1) < index
            last_seen[band] = index

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.sampled_from([10.0, 20.0]),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_fifo_within_equal_band_and_deadline(self, keyed):
        """Ties on (band, deadline) break by arrival sequence."""
        queue = DispatchQueue(clock=FakeClock())
        for index, (band, deadline) in enumerate(keyed):
            queue.put((band, deadline, index), band=band, deadline=deadline)
        last_seen: dict[tuple, int] = {}
        for (band, deadline, index), _expired in _drain(queue):
            key = (band, deadline)
            assert last_seen.get(key, -1) < index
            last_seen[key] = index

    @given(st.lists(_items, min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_edf_within_band(self, items):
        """Within one band, pops are earliest-deadline-first (None
        deadlines sort last)."""
        clock = FakeClock()
        queue = DispatchQueue(clock=clock)
        for index, (_band, deadline_off, _advance) in enumerate(items):
            deadline = (
                None if deadline_off is None else clock.now + deadline_off
            )
            queue.put((index, deadline), band=1, deadline=deadline)
        keys = [
            float("inf") if deadline is None else deadline
            for (_index, deadline), _expired in _drain(queue)
        ]
        assert keys == sorted(keys)


class TestNormalizePriority:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("high", PRIORITY_BANDS["high"]),
            ("HIGH", PRIORITY_BANDS["high"]),
            ("normal", PRIORITY_BANDS["normal"]),
            ("low", PRIORITY_BANDS["low"]),
            (0, 0),
            (9, 9),
            (None, PRIORITY_BANDS["normal"]),
        ],
    )
    def test_accepted(self, value, expected):
        assert normalize_priority(value) == expected

    @pytest.mark.parametrize(
        "value", ["urgent", -1, 10, 1.5, True, [], {}]
    )
    def test_rejected(self, value):
        with pytest.raises(ValueError):
            normalize_priority(value)
