"""Rewriting and BLIF I/O tests."""

import random

import pytest

from repro.core import NPNDatabase
from repro.network import (
    LogicNetwork,
    blif_to_network,
    network_to_blif,
    rewrite_network,
)
from repro.truthtable import TruthTable, binary_op_table, from_hex


def random_network(rnd, num_pis=5, num_nodes=10):
    net = LogicNetwork()
    nodes = [net.add_pi() for _ in range(num_pis)]
    for _ in range(num_nodes):
        k = rnd.choice([1, 2, 2, 3])
        fanins = [rnd.choice(nodes) for _ in range(k)]
        nodes.append(
            net.add_node(TruthTable(rnd.getrandbits(1 << k), k), fanins)
        )
    net.add_po(nodes[-1])
    net.add_po(nodes[-2], True)
    return net


class TestRewriting:
    def test_preserves_function(self):
        rnd = random.Random(42)
        db = NPNDatabase(timeout=60)
        for _ in range(4):
            net = random_network(rnd)
            before = [t.bits for t in net.simulate()]
            result = rewrite_network(net, database=db)
            after = [t.bits for t in net.simulate()]
            assert before == after
            assert result.gates_after <= result.gates_before
            assert result.gates_after == net.num_gates()

    def test_shrinks_redundant_logic(self):
        net = LogicNetwork()
        pis = [net.add_pi() for _ in range(3)]
        # and(a,b) rebuilt the long way: not(nand(a,b))
        n_nand = net.add_node(binary_op_table(0x7), (pis[0], pis[1]))
        n_not = net.add_node(TruthTable(0b01, 1), (n_nand,))
        n_or = net.add_node(binary_op_table(0xE), (n_not, pis[2]))
        net.add_po(n_or)
        before = net.simulate()[0]
        result = rewrite_network(net)
        assert net.simulate()[0] == before
        assert result.gates_after < result.gates_before

    def test_optimal_network_untouched(self):
        net = LogicNetwork()
        pis = [net.add_pi() for _ in range(2)]
        n = net.add_node(binary_op_table(0x6), pis)
        net.add_po(n)
        result = rewrite_network(net)
        assert result.gates_after == 1
        assert net.simulate()[0].bits == 0x6

    def test_cut_size_validation(self):
        net = LogicNetwork()
        with pytest.raises(ValueError):
            rewrite_network(net, cut_size=5)

    def test_database_is_reused(self):
        rnd = random.Random(1)
        db = NPNDatabase(timeout=60)
        net = random_network(rnd, num_pis=4, num_nodes=6)
        rewrite_network(net, database=db)
        cached = len(db)
        net2 = random_network(rnd, num_pis=4, num_nodes=6)
        rewrite_network(net2, database=db)
        assert len(db) >= cached


class TestBlif:
    def test_roundtrip_example7(self):
        net = LogicNetwork("ex7")
        pa, pb, pc, pd = [net.add_pi() for _ in range(4)]
        n_and = net.add_node(binary_op_table(0x8), (pa, pb))
        n_xor = net.add_node(binary_op_table(0x6), (pc, pd))
        net.add_po(net.add_node(binary_op_table(0xE), (n_and, n_xor)))
        text = network_to_blif(net)
        back = blif_to_network(text)
        assert back.simulate()[0] == from_hex("8ff8", 4)
        assert ".model ex7" in text

    def test_roundtrip_random(self):
        rnd = random.Random(9)
        for _ in range(5):
            net = random_network(rnd, num_pis=4, num_nodes=7)
            want = [t.bits for t in net.simulate()]
            back = blif_to_network(network_to_blif(net))
            got = [t.bits for t in back.simulate()]
            assert got == want

    def test_complemented_po(self):
        net = LogicNetwork()
        pis = [net.add_pi() for _ in range(2)]
        n = net.add_node(binary_op_table(0x8), pis)
        net.add_po(n, complemented=True)
        back = blif_to_network(network_to_blif(net))
        assert back.simulate()[0].bits == 0x7

    def test_parse_dont_care_cubes(self):
        text = """
.model t
.inputs a b c
.outputs y
.names a b c y
1-- 1
-11 1
.end
"""
        net = blif_to_network(text)
        out = net.simulate()[0]
        # y = a | (b & c)
        for m in range(8):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert out.value(m) == (a | (b & c))

    def test_parse_complemented_cover(self):
        text = """
.model t
.inputs a b
.outputs y
.names a b y
11 0
.end
"""
        net = blif_to_network(text)
        assert net.simulate()[0].bits == 0x7  # nand

    def test_parse_constant(self):
        text = """
.model t
.inputs a
.outputs y
.names y
1
.end
"""
        net = blif_to_network(text)
        assert net.simulate()[0].bits == 0b11

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            blif_to_network(".model t\n.inputs a\n.outputs y\n.end\n")
        with pytest.raises(ValueError):
            blif_to_network(
                ".model t\n.latch a b\n.end\n"
            )


class TestCli:
    def test_cli_synthesize(self, capsys):
        from repro.cli import main

        assert main(["8ff8", "--vars", "4", "--best-only"]) == 0
        out = capsys.readouterr().out
        assert "optimum 3 gates" in out

    def test_cli_engines(self, capsys):
        from repro.cli import main

        for engine in ("bms", "fen", "lutexact", "hier"):
            assert main(
                ["e8", "--vars", "3", "--engine", engine, "--best-only"]
            ) == 0

    def test_cli_blif_export(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "out.blif"
        assert main(["6", "--vars", "2", "--blif", str(path)]) == 0
        net = blif_to_network(path.read_text())
        assert net.simulate()[0].bits == 0x6

    def test_cli_bad_hex(self, capsys):
        # exit 2 now means "budget exceeded"; malformed input is 65
        from repro.cli import EXIT_BAD_INPUT, main

        assert main(["zzz", "--vars", "3"]) == EXIT_BAD_INPUT
