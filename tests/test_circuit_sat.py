"""Circuit-based AllSAT solver tests (Section III-C, Algorithms 1–2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import BooleanChain
from repro.core import (
    chain_all_sat,
    cubes_to_onset,
    merge_cube_sets,
    merge_cubes,
    simulate_solutions,
    verify_chain,
)
from repro.kernels.reference import chain_all_sat_ref, verify_chain_ref
from repro.truthtable import TruthTable, constant, from_hex, majority, projection

from tests.helpers import assert_chain_realizes, random_chain


class TestCubeMerge:
    def test_merge_compatible(self):
        assert merge_cubes((1, None), (None, 0)) == (1, 0)
        assert merge_cubes((1, 0), (1, 0)) == (1, 0)
        assert merge_cubes((None, None), (None, None)) == (None, None)

    def test_merge_conflict(self):
        assert merge_cubes((1, None), (0, None)) is None

    def test_merge_sets_drops_conflicts(self):
        s1 = {(1, None), (0, None)}
        s2 = {(1, 1)}
        merged = merge_cube_sets(s1, s2)
        assert merged == {(1, 1)}

    def test_merge_sets_empty(self):
        assert merge_cube_sets({(1,)}, {(0,)}) == set()


class TestCubesToOnset:
    def test_full_cube(self):
        assert cubes_to_onset([(1, 1)], 2) == 0x8

    def test_free_variable_expands(self):
        assert cubes_to_onset([(1, None)], 2) == 0b1010

    def test_union(self):
        onset = cubes_to_onset([(1, None), (None, 1)], 2)
        assert onset == 0b1110

    def test_simulate_solutions(self):
        t = simulate_solutions([(1, None)], 2)
        assert isinstance(t, TruthTable)
        assert t.bits == 0b1010


class TestChainAllSat:
    def test_example8_ten_assignments(self):
        """The paper's Example 8: the chain for 0x8ff8 has exactly ten
        satisfying PI assignments, simulating back to 0x8ff8."""
        chain = BooleanChain(4)
        # x6 = 0x8(a,b), x5 = 0x6(c,d), x7 = 0xe(x5, x6) in paper
        # terms; our gate rows use fanins[0] as the low bit.
        s_and = chain.add_gate(0x8, (0, 1))
        s_xor = chain.add_gate(0x6, (2, 3))
        s_top = chain.add_gate(0xE, (s_and, s_xor))
        chain.set_output(s_top)
        cubes = chain_all_sat(chain)
        onset = cubes_to_onset(cubes, 4)
        target = from_hex("8ff8", 4)
        assert onset == target.bits
        assert bin(onset).count("1") == 10

    def test_unsat_chain(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x6, (0, 1))  # xor
        chain.set_output(s)
        # target 1 with an extra output forcing xnor=1 simultaneously
        s2 = chain.add_gate(0x9, (0, 1))
        chain.set_output(s2)
        assert chain_all_sat(chain) == set()

    def test_explicit_targets(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x8, (0, 1))
        chain.set_output(s)
        zeros = chain_all_sat(chain, targets=[0])
        assert cubes_to_onset(zeros, 2) == 0x7

    def test_complemented_output_target(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x8, (0, 1))
        chain.set_output(s, complemented=True)
        cubes = chain_all_sat(chain)
        assert cubes_to_onset(cubes, 2) == 0x7

    def test_no_outputs(self):
        with pytest.raises(ValueError):
            chain_all_sat(BooleanChain(2))

    def test_target_arity_mismatch(self):
        chain = BooleanChain(2)
        chain.set_output(chain.add_gate(0x8, (0, 1)))
        with pytest.raises(ValueError):
            chain_all_sat(chain, targets=[1, 0])

    @given(st.integers(0, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_allsat_equals_simulation(self, seed):
        """Core invariant: AllSAT expansion == the chain's onset, even
        for reconvergent chains."""
        rnd = random.Random(seed)
        chain = random_chain(rnd, num_inputs=4, num_gates=5)
        cubes = chain_all_sat(chain)
        onset = cubes_to_onset(cubes, 4)
        assert onset == chain.simulate_output().bits

    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_multi_output(self, seed):
        rnd = random.Random(seed)
        chain = random_chain(rnd, num_inputs=3, num_gates=4)
        chain.set_output(3)  # add the first gate as a second output
        cubes = chain_all_sat(chain)
        onset = cubes_to_onset(cubes, 3)
        t1, t2 = chain.simulate()
        assert onset == (t1 & t2).bits


class TestVerifyChain:
    def test_verify_correct_chain(self):
        chain = BooleanChain(4)
        s_and = chain.add_gate(0x8, (0, 1))
        s_xor = chain.add_gate(0x6, (2, 3))
        chain.set_output(chain.add_gate(0xE, (s_and, s_xor)))
        assert_chain_realizes(from_hex("8ff8", 4), chain)

    def test_verify_rejects_wrong_function(self):
        chain = BooleanChain(3)
        chain.set_output(chain.add_gate(0x8, (0, 1)))
        assert not verify_chain(chain, majority(3))

    def test_verify_arity_mismatch(self):
        chain = BooleanChain(2)
        chain.set_output(chain.add_gate(0x8, (0, 1)))
        with pytest.raises(ValueError):
            verify_chain(chain, majority(3))


class TestConstantOutputSemantics:
    """Regression lock on the CONST0-output semantics fixed by the
    kernel rewrite.

    The packed solver treats an output wired to
    ``BooleanChain.CONST0`` as constant 0 (constant 1 when
    complemented).  The pre-kernel tuple solver — kept verbatim in
    ``repro.kernels.reference`` — treated the pseudo-signal as an
    *unconstrained* input, so its AllSAT set for such chains is the
    all-free cube regardless of target.  These tests pin down both
    behaviours: the packed semantics must never regress, and a change
    in the reference's historical behaviour would silently invalidate
    the old-vs-new equivalence suite's CONST0 carve-out.
    """

    @staticmethod
    def _const_chain(num_vars, complemented):
        chain = BooleanChain(num_vars)
        chain.set_output(BooleanChain.CONST0, complemented=complemented)
        return chain

    @pytest.mark.parametrize("num_vars", [1, 2, 3])
    def test_const0_output_packed(self, num_vars):
        chain = self._const_chain(num_vars, complemented=False)
        assert verify_chain(chain, constant(0, num_vars))
        assert not verify_chain(chain, constant(1, num_vars))
        assert not verify_chain(chain, projection(0, num_vars))
        assert chain_all_sat(chain) == set()
        assert_chain_realizes(constant(0, num_vars), chain)

    @pytest.mark.parametrize("num_vars", [1, 2, 3])
    def test_const1_output_packed(self, num_vars):
        chain = self._const_chain(num_vars, complemented=True)
        assert verify_chain(chain, constant(1, num_vars))
        assert not verify_chain(chain, constant(0, num_vars))
        free_cube = (None,) * num_vars
        assert chain_all_sat(chain) == {free_cube}
        assert_chain_realizes(constant(1, num_vars), chain)

    def test_const0_reference_keeps_old_semantics(self):
        """The relocated tuple solver deliberately preserves the old
        unconstrained-CONST0 behaviour; document it so any change is a
        conscious one."""
        chain = self._const_chain(2, complemented=False)
        assert chain_all_sat_ref(chain) == {(None, None)}
        assert verify_chain_ref(chain, constant(1, 2))  # historically wrong
        assert not verify_chain_ref(chain, constant(0, 2))
        # The packed solver disagrees — by design.
        assert verify_chain(chain, constant(0, 2))

    @pytest.mark.parametrize("complemented", [False, True])
    def test_single_literal_output_both_paths(self, complemented):
        """An output wired straight to a primary input (zero gates)
        must agree across packed and reference paths."""
        num_vars = 3
        chain = BooleanChain(num_vars)
        chain.set_output(0, complemented=complemented)
        target = projection(0, num_vars, complemented=complemented)
        assert verify_chain(chain, target)
        assert verify_chain_ref(chain, target)
        assert not verify_chain(chain, ~target)
        assert not verify_chain_ref(chain, ~target)
        assert_chain_realizes(target, chain)

    def test_gate_built_constant_both_paths(self):
        """A constant built from a real gate (op 0x0) — as opposed to
        the CONST0 pseudo-signal — has identical semantics in both
        solvers."""
        chain = BooleanChain(2)
        chain.set_output(chain.add_gate(0x0, (0, 1)))
        assert verify_chain(chain, constant(0, 2))
        assert verify_chain_ref(chain, constant(0, 2))
        assert not verify_chain(chain, constant(1, 2))
        assert not verify_chain_ref(chain, constant(1, 2))
        assert_chain_realizes(constant(0, 2), chain)
