"""Circuit-based AllSAT solver tests (Section III-C, Algorithms 1–2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import BooleanChain
from repro.core import (
    chain_all_sat,
    cubes_to_onset,
    merge_cube_sets,
    merge_cubes,
    simulate_solutions,
    verify_chain,
)
from repro.truthtable import TruthTable, from_hex, majority

from tests.helpers import random_chain


class TestCubeMerge:
    def test_merge_compatible(self):
        assert merge_cubes((1, None), (None, 0)) == (1, 0)
        assert merge_cubes((1, 0), (1, 0)) == (1, 0)
        assert merge_cubes((None, None), (None, None)) == (None, None)

    def test_merge_conflict(self):
        assert merge_cubes((1, None), (0, None)) is None

    def test_merge_sets_drops_conflicts(self):
        s1 = {(1, None), (0, None)}
        s2 = {(1, 1)}
        merged = merge_cube_sets(s1, s2)
        assert merged == {(1, 1)}

    def test_merge_sets_empty(self):
        assert merge_cube_sets({(1,)}, {(0,)}) == set()


class TestCubesToOnset:
    def test_full_cube(self):
        assert cubes_to_onset([(1, 1)], 2) == 0x8

    def test_free_variable_expands(self):
        assert cubes_to_onset([(1, None)], 2) == 0b1010

    def test_union(self):
        onset = cubes_to_onset([(1, None), (None, 1)], 2)
        assert onset == 0b1110

    def test_simulate_solutions(self):
        t = simulate_solutions([(1, None)], 2)
        assert isinstance(t, TruthTable)
        assert t.bits == 0b1010


class TestChainAllSat:
    def test_example8_ten_assignments(self):
        """The paper's Example 8: the chain for 0x8ff8 has exactly ten
        satisfying PI assignments, simulating back to 0x8ff8."""
        chain = BooleanChain(4)
        # x6 = 0x8(a,b), x5 = 0x6(c,d), x7 = 0xe(x5, x6) in paper
        # terms; our gate rows use fanins[0] as the low bit.
        s_and = chain.add_gate(0x8, (0, 1))
        s_xor = chain.add_gate(0x6, (2, 3))
        s_top = chain.add_gate(0xE, (s_and, s_xor))
        chain.set_output(s_top)
        cubes = chain_all_sat(chain)
        onset = cubes_to_onset(cubes, 4)
        target = from_hex("8ff8", 4)
        assert onset == target.bits
        assert bin(onset).count("1") == 10

    def test_unsat_chain(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x6, (0, 1))  # xor
        chain.set_output(s)
        # target 1 with an extra output forcing xnor=1 simultaneously
        s2 = chain.add_gate(0x9, (0, 1))
        chain.set_output(s2)
        assert chain_all_sat(chain) == set()

    def test_explicit_targets(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x8, (0, 1))
        chain.set_output(s)
        zeros = chain_all_sat(chain, targets=[0])
        assert cubes_to_onset(zeros, 2) == 0x7

    def test_complemented_output_target(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x8, (0, 1))
        chain.set_output(s, complemented=True)
        cubes = chain_all_sat(chain)
        assert cubes_to_onset(cubes, 2) == 0x7

    def test_no_outputs(self):
        with pytest.raises(ValueError):
            chain_all_sat(BooleanChain(2))

    def test_target_arity_mismatch(self):
        chain = BooleanChain(2)
        chain.set_output(chain.add_gate(0x8, (0, 1)))
        with pytest.raises(ValueError):
            chain_all_sat(chain, targets=[1, 0])

    @given(st.integers(0, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_allsat_equals_simulation(self, seed):
        """Core invariant: AllSAT expansion == the chain's onset, even
        for reconvergent chains."""
        rnd = random.Random(seed)
        chain = random_chain(rnd, num_inputs=4, num_gates=5)
        cubes = chain_all_sat(chain)
        onset = cubes_to_onset(cubes, 4)
        assert onset == chain.simulate_output().bits

    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_multi_output(self, seed):
        rnd = random.Random(seed)
        chain = random_chain(rnd, num_inputs=3, num_gates=4)
        chain.set_output(3)  # add the first gate as a second output
        cubes = chain_all_sat(chain)
        onset = cubes_to_onset(cubes, 3)
        t1, t2 = chain.simulate()
        assert onset == (t1 & t2).bits


class TestVerifyChain:
    def test_verify_correct_chain(self):
        chain = BooleanChain(4)
        s_and = chain.add_gate(0x8, (0, 1))
        s_xor = chain.add_gate(0x6, (2, 3))
        chain.set_output(chain.add_gate(0xE, (s_and, s_xor)))
        assert verify_chain(chain, from_hex("8ff8", 4))

    def test_verify_rejects_wrong_function(self):
        chain = BooleanChain(3)
        chain.set_output(chain.add_gate(0x8, (0, 1)))
        assert not verify_chain(chain, majority(3))

    def test_verify_arity_mismatch(self):
        chain = BooleanChain(2)
        chain.set_output(chain.add_gate(0x8, (0, 1)))
        with pytest.raises(ValueError):
            verify_chain(chain, majority(3))
