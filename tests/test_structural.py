"""Structural-matrix tests (Definition 3, Example 1)."""

import numpy as np
import pytest

from repro.stp import (
    M_C,
    M_D,
    M_E,
    M_I,
    M_N,
    M_NAND,
    M_NOR,
    M_X,
    NAMED_STRUCTURAL,
    code_of_structural_matrix,
    eval_structural,
    is_logic_matrix,
    structural_matrix,
    structural_matrix_of_table,
    table_of_structural_matrix,
)
from repro.truthtable import (
    apply_binary_op,
    majority,
)


class TestNamedMatrices:
    def test_negation(self):
        assert np.array_equal(M_N, [[0, 1], [1, 0]])

    def test_paper_or_and_implication(self):
        assert np.array_equal(M_D, [[1, 1, 1, 0], [0, 0, 0, 1]])
        assert np.array_equal(M_I, [[1, 0, 1, 1], [0, 1, 0, 0]])

    def test_all_named_are_logic_matrices(self):
        for name, matrix in NAMED_STRUCTURAL.items():
            assert is_logic_matrix(matrix), name

    def test_xnor_equiv_alias(self):
        assert np.array_equal(
            NAMED_STRUCTURAL["xnor"], NAMED_STRUCTURAL["equiv"]
        )


class TestConversions:
    def test_code_roundtrip(self):
        for code in range(16):
            matrix = structural_matrix(code)
            assert code_of_structural_matrix(matrix) == code

    def test_table_roundtrip(self):
        m = structural_matrix_of_table(majority(3))
        assert m.shape == (2, 8)
        assert table_of_structural_matrix(m) == majority(3)

    def test_code_of_wide_matrix_rejected(self):
        m = structural_matrix_of_table(majority(3))
        with pytest.raises(ValueError):
            code_of_structural_matrix(m)


class TestEvaluation:
    def test_operand_order_convention(self):
        """First STP operand = high truth-table variable."""
        for code in range(16):
            matrix = structural_matrix(code)
            for hi in (0, 1):
                for lo in (0, 1):
                    got = eval_structural(matrix, [hi, lo])
                    assert got == apply_binary_op(code, lo, hi)

    def test_ternary_evaluation(self):
        m = structural_matrix_of_table(majority(3))
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    got = eval_structural(m, [a, b, c])
                    # paper x_1 = table var 2, x_3 = table var 0
                    assert got == majority(3)(c, b, a)

    def test_rejects_non_logic_matrix(self):
        with pytest.raises(ValueError):
            eval_structural(np.array([[2, 0], [0, 1]]), [1])

    def test_specific_gates(self):
        assert eval_structural(M_C, [1, 1]) == 1
        assert eval_structural(M_C, [1, 0]) == 0
        assert eval_structural(M_NAND, [1, 1]) == 0
        assert eval_structural(M_NOR, [0, 0]) == 1
        assert eval_structural(M_X, [1, 0]) == 1
        assert eval_structural(M_E, [1, 1]) == 1
