"""Fence and pDAG enumeration tests (Section III-A, Figs. 2–3)."""

import pytest
from hypothesis import given, strategies as st

from repro.topology import (
    all_fences,
    count_dags,
    count_fences,
    enumerate_dags,
    enumerate_skeletons,
    fences_of_level,
    is_valid_fence,
    valid_fences,
)


class TestFences:
    def test_f3_unpruned(self):
        assert sorted(all_fences(3)) == [(1, 1, 1), (1, 2), (2, 1), (3,)]

    def test_f3_pruned_matches_fig2b(self):
        assert sorted(valid_fences(3)) == [(1, 1, 1), (2, 1)]

    @given(st.integers(1, 10))
    def test_composition_count(self, k):
        assert len(all_fences(k)) == 2 ** (k - 1)

    def test_fences_of_level(self):
        assert fences_of_level(4, 2) == [(1, 3), (2, 2), (3, 1)]
        with pytest.raises(ValueError):
            fences_of_level(3, 4)

    def test_invalid_fence_rules(self):
        assert not is_valid_fence((1, 2))  # two top nodes
        assert not is_valid_fence((3,))  # three top nodes
        assert not is_valid_fence((3, 1))  # capacity: 3 > 2·1
        assert is_valid_fence((2, 1))
        assert is_valid_fence((2, 2, 1))
        assert not is_valid_fence(())
        assert not is_valid_fence((0, 1))

    def test_capacity_rule_counts_all_above(self):
        # level 0 has 4 nodes; above it sit 2 + 1 = 3 nodes with 6
        # fanin slots, so 4 is fine even though 4 > 2·2.
        assert is_valid_fence((4, 2, 1))

    @given(st.integers(1, 9))
    def test_valid_subset(self, k):
        pruned = set(valid_fences(k))
        assert pruned <= set(all_fences(k))
        assert count_fences(k, pruned=True) == len(pruned)
        for fence in pruned:
            assert sum(fence) == k
            assert fence[-1] == 1


class TestDags:
    def test_fence21_with_4_pis(self):
        dags = list(enumerate_dags((2, 1), 4))
        assert len(dags) == 3  # the 3 ways to pair up 4 PIs
        for dag in dags:
            assert dag.num_nodes == 3
            assert dag.references_all_pis()
            # top node consumes both level-1 nodes
            assert dag.fanins[-1] == (4, 5)

    def test_example7_dag_present(self):
        fanins = {dag.fanins for dag in enumerate_dags((2, 1), 4)}
        assert ((0, 1), (2, 3), (4, 5)) in fanins

    def test_levels(self):
        dag = next(iter(enumerate_dags((2, 1), 4)))
        assert dag.level_of(0) == 0
        assert dag.level_of(4) == 1
        assert dag.level_of(dag.top_signal) == 2

    def test_supports(self):
        dag = next(iter(enumerate_dags((2, 1), 4)))
        assert dag.support_of(dag.top_signal) == frozenset({0, 1, 2, 3})

    def test_no_dangling_internal_nodes(self):
        for fence in valid_fences(4):
            for dag in enumerate_dags(fence, 3):
                used = set()
                for a, b in dag.fanins:
                    used.update((a, b))
                for node in range(dag.num_nodes - 1):
                    assert dag.num_pis + node in used

    def test_level_constraint(self):
        """Every node takes at least one fanin from the level below."""
        for fence in valid_fences(4):
            for dag in enumerate_dags(fence, 4):
                for i, (a, b) in enumerate(dag.fanins):
                    node_level = dag.level_of(dag.num_pis + i)
                    assert max(dag.level_of(a), dag.level_of(b)) == (
                        node_level - 1
                    )

    def test_require_all_pis_flag(self):
        with_all = count_dags((2, 1), 4, require_all_pis=True)
        without = count_dags((2, 1), 4, require_all_pis=False)
        assert without > with_all

    def test_impossible_coverage(self):
        # 3 gates cannot touch 5 distinct PIs (max 4 with 2 internal edges).
        assert count_dags((2, 1), 5, require_all_pis=True) == 0

    def test_symmetry_breaking_no_duplicates(self):
        for fence in valid_fences(4):
            dags = list(enumerate_dags(fence, 3))
            assert len({d.fanins for d in dags}) == len(dags)

    def test_bad_fence(self):
        with pytest.raises(ValueError):
            list(enumerate_dags((0, 1), 3))

    def test_describe(self):
        dag = next(iter(enumerate_dags((2, 1), 4)))
        assert "pis=4" in dag.describe()


class TestSkeletons:
    def test_f3_skeletons(self):
        assert len(enumerate_skeletons((2, 1))) >= 1
        assert len(enumerate_skeletons((1, 1, 1))) >= 1

    def test_skeletons_deduplicate(self):
        skeletons = enumerate_skeletons((2, 1))
        keys = set()
        for dag in skeletons:
            key = tuple(
                tuple(s if s >= dag.num_pis else -1 for s in pair)
                for pair in dag.fanins
            )
            assert key not in keys
            keys.add(key)
