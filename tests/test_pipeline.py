"""The staged synthesis pipeline: stage stats, contexts, NPN mode,
and the chain-level helpers (don't-care canonicalization, dedup)."""

import random

import pytest

from repro.chain import BooleanChain
from repro.chain.transform import npn_transform_chain
from repro.core import SynthesisContext, SynthesisSpec, run_pipeline
from repro.core.synthesizer import (
    STPSynthesizer,
    _canonicalize_dont_cares,
    _dedup,
)
from repro.runtime.errors import BudgetExceeded
from repro.truthtable import from_hex, majority, parity
from repro.truthtable.npn import NPNTransform, canonicalize

EXAMPLE7 = from_hex("8ff8", 4)


class TestStageAccounting:
    def test_stage_timers_populated(self):
        result = run_pipeline(SynthesisSpec(function=EXAMPLE7, timeout=120))
        stages = set(result.stats.stage_seconds)
        assert {"normalize", "topology", "search", "expand", "finalize"} <= (
            stages
        )
        assert all(v >= 0.0 for v in result.stats.stage_seconds.values())

    def test_trivial_functions_skip_search(self):
        result = run_pipeline(SynthesisSpec(function=from_hex("a", 2)))
        assert result.num_gates == 0
        assert "search" not in result.stats.stage_seconds

    def test_stats_to_record_is_json_safe(self):
        import json

        from repro.cache import SynthesisCache

        # A private cold cache: hit/miss counts must not depend on what
        # earlier tests left in the process-global cache.
        ctx = SynthesisContext.create(timeout=120, cache=SynthesisCache())
        result = run_pipeline(
            SynthesisSpec(function=parity(3), timeout=120), ctx
        )
        record = result.stats.to_record()
        assert json.loads(json.dumps(record)) == record
        assert record["cache_misses"]

    def test_context_child_nests_deadline(self):
        ctx = SynthesisContext.create(timeout=100)
        child = ctx.child(timeout=5)
        assert child.deadline.limit <= 5
        assert child.cache is ctx.cache
        assert child.stats is ctx.stats
        fresh = ctx.child(fresh_stats=True)
        assert fresh.stats is not ctx.stats

    def test_deadline_expires(self):
        ctx = SynthesisContext.create(timeout=0.0)
        with pytest.raises(BudgetExceeded):
            run_pipeline(
                SynthesisSpec(function=EXAMPLE7, timeout=0.0), ctx
            )


class TestNPNCanonicalizeMode:
    @pytest.mark.parametrize("hex_bits", ["1ee1", "0357", "6996"])
    def test_same_optimum_and_solution_set(self, hex_bits):
        f = from_hex(hex_bits, 4)
        plain = run_pipeline(
            SynthesisSpec(function=f, timeout=120, max_solutions=500)
        )
        via_npn = run_pipeline(
            SynthesisSpec(
                function=f,
                timeout=120,
                max_solutions=500,
                npn_canonicalize=True,
            )
        )
        assert plain.num_gates == via_npn.num_gates
        assert {c.signature() for c in plain.chains} == {
            c.signature() for c in via_npn.chains
        }

    def test_synthesizer_exposes_flag(self):
        result = STPSynthesizer(
            npn_canonicalize=True, max_solutions=64
        ).synthesize(majority(3), timeout=120)
        assert result.num_gates == 4
        for chain in result.chains:
            assert chain.simulate_output() == majority(3)


class TestChainNPNTransform:
    def test_roundtrip_on_synthesized_chains(self):
        f = from_hex("cafe", 4)
        rep, transform = canonicalize(f)
        result = run_pipeline(
            SynthesisSpec(function=rep, timeout=120, max_solutions=16)
        )
        inverse = transform.inverse()
        for chain in result.chains:
            assert chain.simulate_output() == rep
            back = npn_transform_chain(chain, inverse)
            assert back.simulate_output() == f
            assert back.num_gates == chain.num_gates

    def test_random_transforms(self):
        rnd = random.Random(99)
        f = parity(3)
        result = run_pipeline(
            SynthesisSpec(function=f, timeout=120, max_solutions=4)
        )
        chain = result.chains[0]
        for _ in range(20):
            perm = list(range(3))
            rnd.shuffle(perm)
            transform = NPNTransform(
                tuple(perm), rnd.randrange(8), bool(rnd.getrandbits(1))
            )
            moved = npn_transform_chain(chain, transform)
            assert moved.simulate_output() == transform.apply(f)


class TestDedup:
    def test_removes_signature_duplicates(self):
        result = run_pipeline(
            SynthesisSpec(function=majority(3), timeout=120)
        )
        chains = result.chains
        doubled = chains + list(chains)
        unique = _dedup(doubled)
        assert [c.signature() for c in unique] == [
            c.signature() for c in chains
        ]

    def test_preserves_first_occurrence_order(self):
        a = BooleanChain(2)
        a.add_gate(0x8, (0, 1))
        a.set_output(2)
        b = BooleanChain(2)
        b.add_gate(0xE, (0, 1))
        b.set_output(2)
        assert _dedup([a, b, a, b, a]) == [a, b]


class TestCanonicalizeDontCares:
    def test_chains_differing_only_in_dont_cares_collapse(self):
        # Gate 2 reads (g0, g0): rows 01 and 10 can never be exercised,
        # so two chains differing only there are behaviourally equal.
        first = BooleanChain(2)
        g0 = first.add_gate(0x8, (0, 1))  # AND
        first.add_gate(0x6, (g0, g0))  # XOR: rows 01/10 set (unreachable)
        first.set_output(3)

        second = BooleanChain(2)
        g0 = second.add_gate(0x8, (0, 1))
        second.add_gate(0x0, (g0, g0))  # constant-0 LUT
        second.set_output(3)

        assert first.simulate_output() == second.simulate_output()
        assert first.signature() != second.signature()
        fixed_first = _canonicalize_dont_cares(first)
        fixed_second = _canonicalize_dont_cares(second)
        assert fixed_first.signature() == fixed_second.signature()
        assert len(_dedup([fixed_first, fixed_second])) == 1

    def test_behaviour_unchanged(self):
        result = run_pipeline(
            SynthesisSpec(function=EXAMPLE7, timeout=120, max_solutions=32)
        )
        for chain in result.chains:
            fixed = _canonicalize_dont_cares(chain)
            assert fixed.simulate_output() == chain.simulate_output()
            # Idempotent: already-canonical chains are fixed points.
            assert (
                _canonicalize_dont_cares(fixed).signature()
                == fixed.signature()
            )

    def test_keeps_reachable_rows(self):
        chain = BooleanChain(2)
        chain.add_gate(0x6, (0, 1))  # XOR over independent inputs
        chain.set_output(2)
        fixed = _canonicalize_dont_cares(chain)
        assert fixed.gates[0].op == 0x6  # all four rows reachable
