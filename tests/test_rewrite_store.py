"""Store-backed rewriting, the repro-rewrite CLI, and multi-output
network round trips."""

from pathlib import Path

from repro.chain import merge_chains_shared
from repro.core import synthesize_all
from repro.network import (
    LogicNetwork,
    blif_to_network,
    network_to_blif,
    rewrite_with_store,
)
from repro.network.cli import main as rewrite_main
from repro.store import ChainStore
from repro.truthtable import TruthTable, from_hex

AND = TruthTable(0x8, 2)
OR = TruthTable(0xE, 2)

CIRCUITS = Path(__file__).resolve().parent.parent / "benchmarks" / "circuits"


def redundant_maj():
    """MAJ3 with a duplicated, OR-merged cone — reliably reducible."""
    net = LogicNetwork("maj3_redundant")
    a, b, c = (net.add_pi() for _ in range(3))
    ab = net.add_node(AND, (a, b))
    ac = net.add_node(AND, (a, c))
    bc = net.add_node(AND, (b, c))
    o1 = net.add_node(OR, (ab, ac))
    o2 = net.add_node(OR, (o1, bc))
    x1 = net.add_node(OR, (ab, bc))
    x2 = net.add_node(OR, (x1, ac))
    net.add_po(net.add_node(OR, (o2, x2)))
    return net


class TestRewriteWithStore:
    def test_cold_pass_reduces_and_verifies(self, tmp_path):
        net = redundant_maj()
        baseline = [t.bits for t in net.simulate()]
        with ChainStore(tmp_path / "s.db") as store:
            result = rewrite_with_store(
                net, store, timeout_per_cut=60.0
            )
        assert result.verified
        assert result.gain > 0
        assert result.synthesis_calls > 0
        assert [t.bits for t in net.simulate()] == baseline

    def test_warm_replay_needs_zero_synthesis(self, tmp_path):
        with ChainStore(tmp_path / "s.db") as store:
            cold = rewrite_with_store(
                redundant_maj(), store, timeout_per_cut=60.0
            )
            warm = rewrite_with_store(
                redundant_maj(), store, timeout_per_cut=60.0
            )
        assert warm.synthesis_calls == 0
        assert warm.store_misses == 0
        assert warm.gain == cold.gain

    def test_failed_verification_rolls_back(self, tmp_path):
        net = redundant_maj()
        gates_before = net.num_gates()
        baseline = [t.bits for t in net.simulate()]

        class LyingOutcome:
            status = "ok"
            engine = "liar"

        class LyingExecutor:
            """Serves a wrong-but-plausible chain for every cut."""

            def run(self, function, timeout=None, **kwargs):
                from repro.core.spec import (
                    SynthesisResult,
                    SynthesisSpec,
                )

                wrong = ~function
                chains = synthesize_all(wrong)
                outcome = LyingOutcome()
                outcome.result = SynthesisResult(
                    spec=SynthesisSpec(function=wrong),
                    chains=chains,
                    num_gates=chains[0].num_gates,
                    runtime=0.0,
                )
                return outcome

        with ChainStore(tmp_path / "s.db") as store:
            result = rewrite_with_store(
                net, store, executor=LyingExecutor()
            )
        assert not result.verified
        assert result.gates_after == gates_before
        assert net.num_gates() == gates_before
        assert [t.bits for t in net.simulate()] == baseline

    def test_checked_in_suite_is_reducible(self, tmp_path):
        paths = sorted(CIRCUITS.glob("*.blif"))
        assert paths, "benchmarks/circuits/ suite is missing"
        gains = []
        with ChainStore(tmp_path / "s.db") as store:
            for path in paths:
                net = blif_to_network(path.read_text())
                result = rewrite_with_store(
                    net, store, timeout_per_cut=60.0
                )
                assert result.verified, path.name
                gains.append(result.gain)
        assert any(g > 0 for g in gains)


class TestRewriteCLI:
    def test_end_to_end(self, tmp_path, capsys):
        blif = tmp_path / "in.blif"
        blif.write_text(network_to_blif(redundant_maj()))
        out = tmp_path / "out.blif"
        report = tmp_path / "report.json"
        code = rewrite_main(
            [
                str(blif),
                "--store",
                str(tmp_path / "s.db"),
                "--out",
                str(out),
                "--json",
                str(report),
                "--timeout-per-cut",
                "60",
            ]
        )
        assert code == 0
        assert "gates" in capsys.readouterr().out
        rewritten = blif_to_network(out.read_text())
        original = blif_to_network(blif.read_text())
        assert [t.bits for t in rewritten.simulate()] == [
            t.bits for t in original.simulate()
        ]
        assert rewritten.num_gates() < original.num_gates()
        import json

        record = json.loads(report.read_text())
        assert record["gates_after"] < record["gates_before"]
        assert all(p["verified"] for p in record["passes"])

    def test_bad_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.blif"
        bad.write_text(".model broken\n.latch a b\n.end\n")
        assert rewrite_main([str(bad)]) == 65
        capsys.readouterr()


class TestMultiOutputNetworkRoundTrip:
    def test_from_chain_keeps_every_output(self):
        maj = from_hex("e8", 3)
        fa_sum = from_hex("96", 3)
        merged = merge_chains_shared(
            [synthesize_all(maj)[0], synthesize_all(fa_sum)[0]]
        )
        net = LogicNetwork.from_chain(merged, name="fa")
        assert len(net.pos) == 2
        tables = net.simulate()
        assert [t.bits for t in tables] == [
            t.bits for t in merged.simulate()
        ]

    def test_blif_round_trip_is_lossless(self):
        maj = from_hex("e8", 3)
        fa_sum = from_hex("96", 3)
        merged = merge_chains_shared(
            [synthesize_all(maj)[0], synthesize_all(fa_sum)[0]]
        )
        net = LogicNetwork.from_chain(merged, name="fa")
        round_trip = blif_to_network(network_to_blif(net))
        assert len(round_trip.pos) == 2
        assert [t.bits for t in round_trip.simulate()] == [
            t.bits for t in net.simulate()
        ]

    def test_const0_output_round_trips(self):
        from repro.chain import BooleanChain

        chain = BooleanChain(2)
        chain.add_gate(0x6, (0, 1))
        chain.set_output(2, False)
        chain.set_output(BooleanChain.CONST0, True)
        net = LogicNetwork.from_chain(chain)
        assert len(net.pos) == 2
        tables = net.simulate()
        assert tables[0].bits == 0x6
        assert tables[1].bits == 0b1111
        round_trip = blif_to_network(network_to_blif(net))
        assert [t.bits for t in round_trip.simulate()] == [
            t.bits for t in tables
        ]

    def test_splice_chain_multi_shares_gates(self):
        maj = from_hex("e8", 3)
        merged = merge_chains_shared(
            [synthesize_all(maj)[0], synthesize_all(maj)[0]]
        )
        net = LogicNetwork("host")
        leaves = [net.add_pi() for _ in range(3)]
        outs = net.splice_chain_multi(merged, leaves)
        assert len(outs) == 2
        assert outs[0] == outs[1]  # fully shared duplicate
