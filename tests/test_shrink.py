"""Greedy failure-shrinker tests."""

import pytest

from repro.truthtable import TruthTable, constant, from_hex, projection
from repro.verify.shrink import shrink_function


def _simplicity(table):
    return (table.num_vars, table.count_ones(), table.bits)


class TestShrinking:
    def test_shrinks_to_single_minterm_single_variable(self):
        """With "has any onset row" as the failure, the local minimum
        is one minterm over one variable."""

        def still_fails(table):
            return table.count_ones() > 0

        result = shrink_function(from_hex("8ff8", 4), still_fails)
        assert result.reduced
        assert result.minimized.num_vars == 1
        assert result.minimized.count_ones() == 1
        assert still_fails(result.minimized)

    def test_drops_vacuous_variables(self):
        """A function that ignores half its inputs loses them."""
        small = from_hex("6", 2)
        padded = small.extend(4)

        def still_fails(table):
            # Failure = "xor of the first two variables is reachable by
            # restricting the rest", which survives vacuous-drop moves.
            t = table
            while t.num_vars > 2:
                t = t.restrict(t.num_vars - 1, 0)
            return t == small

        result = shrink_function(padded, still_fails)
        assert result.minimized.num_vars == 2
        assert result.minimized == small

    def test_minimized_is_never_more_complex(self):
        def still_fails(table):
            return table.count_ones() >= 2

        result = shrink_function(from_hex("e8", 3), still_fails)
        assert _simplicity(result.minimized) <= _simplicity(
            result.original
        )
        assert still_fails(result.minimized)

    def test_trail_records_each_accepted_move(self):
        result = shrink_function(
            projection(0, 2), lambda t: t.count_ones() > 0
        )
        assert len(result.trail) >= 1
        for step in result.trail:
            assert " -> 0x" in step

    def test_deterministic(self):
        def still_fails(table):
            return table.count_ones() > 0

        a = shrink_function(from_hex("8ff8", 4), still_fails)
        b = shrink_function(from_hex("8ff8", 4), still_fails)
        assert a == b


class TestBudgetAndErrors:
    def test_non_failing_input_raises(self):
        with pytest.raises(ValueError, match="failing input"):
            shrink_function(constant(0, 2), lambda t: False)

    def test_max_evaluations_is_respected(self):
        calls = []

        def still_fails(table):
            calls.append(table)
            return True

        result = shrink_function(
            from_hex("8ff8", 4), still_fails, max_evaluations=5
        )
        assert result.evaluations <= 5
        assert len(calls) <= 5

    def test_local_minimum_has_no_accepted_move_left(self):
        """Every strictly-simpler neighbour of the minimum repairs the
        failure — the definition of a 1-minimal reproducer."""

        def still_fails(table):
            return table.count_ones() > 0

        result = shrink_function(from_hex("e8", 3), still_fails)
        minimum = result.minimized
        # The only simpler tables are constants (count 0) — none fail.
        assert minimum.count_ones() == 1
        assert not still_fails(TruthTable(0, minimum.num_vars))

    def test_already_minimal_input_is_returned_unchanged(self):
        table = TruthTable(1, 1)

        def still_fails(candidate):
            return candidate == table

        result = shrink_function(table, still_fails)
        assert not result.reduced
        assert result.minimized == table


class TestRecord:
    def test_to_record_round_trips_hex(self):
        result = shrink_function(
            from_hex("e8", 3), lambda t: t.count_ones() > 0
        )
        record = result.to_record()
        assert from_hex(record["minimized"], record["minimized_vars"]) == (
            result.minimized
        )
        assert record["original"] == "e8"
        assert record["trail"] == list(result.trail)
