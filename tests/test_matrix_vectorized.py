"""Equivalence of the vectorized STP matrix builders against their
original loop implementations, and canonical-form round trips."""

import random

import numpy as np
import pytest

from repro.stp import (
    canonical_to_truth_table,
    khatri_rao,
    power_reduce_matrix,
    swap_matrix,
    truth_table_to_canonical,
)
from repro.truthtable import TruthTable


# -- loop reference implementations (the pre-vectorization code) -------
def swap_matrix_loop(m: int, n: int) -> np.ndarray:
    w = np.zeros((m * n, m * n), dtype=np.int64)
    for i in range(m):
        for j in range(n):
            w[j * m + i, i * n + j] = 1
    return w


def power_reduce_loop(dim: int) -> np.ndarray:
    pr = np.zeros((dim * dim, dim), dtype=np.int64)
    for j in range(dim):
        pr[j * dim + j, j] = 1
    return pr


def khatri_rao_loop(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.zeros((a.shape[0] * b.shape[0], a.shape[1]), dtype=np.int64)
    for j in range(a.shape[1]):
        out[:, j] = np.kron(a[:, j], b[:, j])
    return out


class TestVectorizedEquivalence:
    @pytest.mark.parametrize(
        "m,n", [(1, 1), (1, 5), (2, 2), (2, 3), (3, 2), (4, 4), (5, 7)]
    )
    def test_swap_matrix(self, m, n):
        assert np.array_equal(swap_matrix(m, n), swap_matrix_loop(m, n))

    @pytest.mark.parametrize("dim", [1, 2, 3, 4, 8, 16])
    def test_power_reduce_matrix(self, dim):
        assert np.array_equal(
            power_reduce_matrix(dim), power_reduce_loop(dim)
        )

    def test_khatri_rao(self):
        rnd = np.random.default_rng(7)
        for _ in range(10):
            rows_a, rows_b, cols = rnd.integers(1, 6, size=3)
            a = rnd.integers(0, 3, size=(rows_a, cols))
            b = rnd.integers(0, 3, size=(rows_b, cols))
            assert np.array_equal(
                khatri_rao(a, b), khatri_rao_loop(a, b)
            )

    def test_dtypes_preserved(self):
        assert swap_matrix(3, 4).dtype == np.int64
        assert power_reduce_matrix(5).dtype == np.int64


class TestCanonicalRoundTrip:
    def test_all_three_input_functions(self):
        for bits in range(1 << 8):
            table = TruthTable(bits, 3)
            matrix = truth_table_to_canonical(table)
            assert matrix.shape == (2, 8)
            assert canonical_to_truth_table(matrix) == table

    def test_random_four_input_sample(self):
        rnd = random.Random(2023)
        for _ in range(200):
            table = TruthTable(rnd.getrandbits(16), 4)
            matrix = truth_table_to_canonical(table)
            assert canonical_to_truth_table(matrix) == table

    def test_column_semantics(self):
        # Column j holds the value at the bit-complemented row — the
        # table read right-to-left (Definition 3).
        table = TruthTable(0b1100_1010, 3)
        matrix = truth_table_to_canonical(table)
        for j in range(8):
            value = table.value(7 ^ j)
            assert matrix[1 - value, j] == 1
            assert matrix[value, j] == 0
