"""Fault-tolerant runtime tests: errors, workers, executor, faults.

Every degradation path the runtime promises is exercised here via the
deterministic fault-injection harness — hung workers, crashed workers,
corrupt results, missing engines, retry with backoff, and the
STP → FEN fallback chain.
"""

import time

import pytest

from repro.runtime.engines import (
    DEFAULT_FALLBACK_CHAIN,
    ENGINE_NAMES,
    get_engine,
)
from repro.runtime.errors import (
    BudgetExceeded,
    EngineUnavailable,
    SynthesisError,
    SynthesisInfeasible,
    VerificationFailed,
    WorkerCrash,
    classify_failure,
)
from repro.runtime.executor import FaultTolerantExecutor
from repro.runtime.faults import FaultPlan, FaultSpec, execute_fault
from repro.runtime.worker import WorkerTask, run_isolated
from repro.truthtable import from_hex

EASY = from_hex("8ff8", 4)  # paper Example 7: optimum is 3 gates


class TestErrorHierarchy:
    def test_every_failure_is_a_synthesis_error(self):
        for cls in (
            BudgetExceeded,
            WorkerCrash,
            VerificationFailed,
            EngineUnavailable,
            SynthesisInfeasible,
        ):
            assert issubclass(cls, SynthesisError)

    def test_legacy_compatibility(self):
        # Seed-era handlers catch TimeoutError / RuntimeError; the
        # structured classes must keep satisfying them.
        assert issubclass(BudgetExceeded, TimeoutError)
        assert issubclass(SynthesisInfeasible, RuntimeError)

    def test_budget_exceeded_carries_numbers(self):
        exc = BudgetExceeded("x", budget=1.5, elapsed=2.0)
        assert exc.budget == 1.5
        assert exc.elapsed == 2.0

    def test_classify(self):
        assert classify_failure(BudgetExceeded()) == "timeout"
        assert classify_failure(TimeoutError()) == "timeout"
        assert classify_failure(SynthesisInfeasible()) == "infeasible"
        assert classify_failure(WorkerCrash()) == "crash"
        assert classify_failure(VerificationFailed()) == "corrupt"
        assert classify_failure(EngineUnavailable()) == "unavailable"
        assert classify_failure(ValueError("boom")) == "crash"


class TestEngineRegistry:
    def test_known_engines(self):
        assert set(DEFAULT_FALLBACK_CHAIN) <= set(ENGINE_NAMES)
        for name in ENGINE_NAMES:
            assert callable(get_engine(name))

    def test_unknown_engine(self):
        with pytest.raises(EngineUnavailable):
            get_engine("abc9000")

    def test_adapters_ignore_foreign_kwargs(self):
        # One shared kwargs dict must be usable across a heterogeneous
        # chain; engines silently drop the knobs they don't support.
        result = get_engine("fen")(
            EASY, 30.0, max_solutions=4, all_solutions=True
        )
        assert result.chains[0].simulate_output() == EASY


class TestFaultPlan:
    def test_draw_burns_out(self):
        plan = FaultPlan({"k": FaultSpec("crash", times=2)})
        assert plan.draw("k").kind == "crash"
        assert plan.draw("k").kind == "crash"
        assert plan.draw("k") is None
        assert plan.fired("k") == 2

    def test_engine_scoping(self):
        plan = FaultPlan({"k": FaultSpec("crash", engine="stp")})
        assert plan.draw("k", "fen") is None
        assert plan.draw("k", "stp").kind == "crash"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("segfault")

    def test_wildcard_matches_any_key(self):
        plan = FaultPlan({FaultPlan.WILDCARD: FaultSpec("crash", times=2)})
        assert plan.draw("aaaa").kind == "crash"
        assert plan.draw("bbbb").kind == "crash"
        # Burn-out is global across keys, not per instance.
        assert plan.draw("cccc") is None

    def test_exact_key_takes_precedence_over_wildcard(self):
        plan = FaultPlan(
            {
                "k": FaultSpec("timeout", times=1),
                FaultPlan.WILDCARD: FaultSpec("crash", times=None),
            }
        )
        assert plan.draw("k").kind == "timeout"
        # Exact entry burnt out: the wildcard takes over.
        assert plan.draw("k").kind == "crash"
        assert plan.draw("other").kind == "crash"

    def test_wildcard_respects_engine_scoping(self):
        plan = FaultPlan(
            {FaultPlan.WILDCARD: FaultSpec("crash", engine="stp")}
        )
        assert plan.draw("k", "fen") is None
        assert plan.draw("k", "stp").kind == "crash"

    def test_corrupt_fault_is_wrong_but_well_formed(self):
        result = execute_fault(
            FaultSpec("corrupt"), EASY, None, isolated=False
        )
        assert result.chains[0].simulate_output() != EASY


class TestIsolatedWorker:
    def test_result_crosses_the_process_boundary(self):
        task = WorkerTask(
            "stp", EASY.bits, 4, 30.0, {"max_solutions": 2}
        )
        result = run_isolated(task)
        assert result.num_gates == 3
        for chain in result.chains:
            assert chain.simulate_output() == EASY

    def test_hung_worker_is_killed_within_1_5x_budget(self):
        """Acceptance: a non-polling busy loop cannot wedge the run."""
        task = WorkerTask(
            "stp", EASY.bits, 4, 1.0, fault=FaultSpec("hang")
        )
        start = time.perf_counter()
        with pytest.raises(BudgetExceeded):
            run_isolated(task)
        assert time.perf_counter() - start < 1.5

    def test_hard_crash_is_a_worker_crash(self):
        task = WorkerTask(
            "stp", EASY.bits, 4, 10.0, fault=FaultSpec("hard-crash")
        )
        with pytest.raises(WorkerCrash) as info:
            run_isolated(task)
        assert info.value.exitcode == 66

    def test_in_child_exception_is_a_worker_crash(self):
        task = WorkerTask(
            "stp", EASY.bits, 4, 10.0, fault=FaultSpec("crash")
        )
        with pytest.raises(WorkerCrash):
            run_isolated(task)

    def test_infeasible_crosses_the_boundary(self):
        task = WorkerTask(
            "stp", EASY.bits, 4, 30.0, {"max_gates": 1}
        )
        with pytest.raises(SynthesisInfeasible):
            run_isolated(task)

    def test_memory_cap_turns_hog_into_crash(self):
        task = WorkerTask(
            "stp",
            EASY.bits,
            4,
            10.0,
            fault=FaultSpec("hog"),
            memory_limit_mb=256,
        )
        start = time.perf_counter()
        with pytest.raises(WorkerCrash):
            run_isolated(task)
        # MemoryError fires long before the hard timeout would.
        assert time.perf_counter() - start < 10.0


class TestExecutorFallback:
    def test_plain_run(self):
        executor = FaultTolerantExecutor(
            ("stp", "fen"), engine_kwargs={"stp": {"max_solutions": 4}}
        )
        outcome = executor.run(EASY, timeout=30)
        assert outcome.solved
        assert outcome.engine == "stp"
        assert outcome.fallback_from is None
        assert outcome.attempts == 1

    def test_stp_crash_degrades_to_verified_fen(self):
        """Acceptance: an injected STP crash falls back to the CNF
        fence baseline, which still returns a simulation-verified
        chain, and the outcome records the degradation."""
        plan = FaultPlan(
            {EASY.to_hex(): FaultSpec("crash", engine="stp", times=None)}
        )
        executor = FaultTolerantExecutor(
            ("stp", "fen"), fault_plan=plan, backoff=0.01
        )
        outcome = executor.run(EASY, timeout=30)
        assert outcome.solved
        assert outcome.engine == "fen"
        assert outcome.fallback_from == "stp"
        for chain in outcome.result.chains:
            assert chain.simulate_output() == EASY
        # the trail shows the crashed attempts before the rescue
        assert [r.status for r in outcome.trail][-1] == "ok"
        assert "crash" in {r.status for r in outcome.trail}

    def test_transient_crash_is_retried_with_backoff(self):
        naps = []
        plan = FaultPlan(
            {EASY.to_hex(): FaultSpec("crash", engine="stp", times=1)}
        )
        executor = FaultTolerantExecutor(
            ("stp",),
            fault_plan=plan,
            max_retries=2,
            backoff=0.01,
            backoff_factor=3.0,
            engine_kwargs={"stp": {"max_solutions": 2}},
            sleep=naps.append,
        )
        outcome = executor.run(EASY, timeout=30)
        assert outcome.solved
        assert outcome.engine == "stp"
        assert outcome.attempts == 2
        assert naps == [pytest.approx(0.01)]

    def test_backoff_grows_exponentially(self):
        naps = []
        plan = FaultPlan(
            {EASY.to_hex(): FaultSpec("crash", times=None)}
        )
        executor = FaultTolerantExecutor(
            ("stp",),
            fault_plan=plan,
            max_retries=2,
            backoff=0.01,
            backoff_factor=3.0,
            sleep=naps.append,
        )
        outcome = executor.run(EASY, timeout=30)
        assert outcome.status == "crash"
        assert outcome.attempts == 3
        assert naps == [pytest.approx(0.01), pytest.approx(0.03)]

    def test_corrupt_result_is_caught_and_degraded(self):
        plan = FaultPlan(
            {EASY.to_hex(): FaultSpec("corrupt", engine="stp", times=None)}
        )
        executor = FaultTolerantExecutor(
            ("stp", "fen"), fault_plan=plan
        )
        outcome = executor.run(EASY, timeout=30)
        assert outcome.solved
        assert outcome.engine == "fen"
        assert outcome.fallback_from == "stp"
        assert outcome.trail[0].status == "corrupt"

    def test_timeout_does_not_fall_back_by_default(self):
        plan = FaultPlan(
            {EASY.to_hex(): FaultSpec("timeout", engine="stp", times=None)}
        )
        executor = FaultTolerantExecutor(
            ("stp", "fen"), fault_plan=plan
        )
        outcome = executor.run(EASY, timeout=30)
        assert not outcome.solved
        assert outcome.status == "timeout"
        # fen never ran
        assert {r.engine for r in outcome.trail} == {"stp"}

    def test_unavailable_engine_falls_through(self):
        executor = FaultTolerantExecutor(("nonesuch", "fen"))
        outcome = executor.run(EASY, timeout=30)
        assert outcome.solved
        assert outcome.engine == "fen"

    def test_whole_chain_failing_records_last_error(self):
        plan = FaultPlan(
            {EASY.to_hex(): FaultSpec("crash", times=None)}
        )
        executor = FaultTolerantExecutor(
            ("stp", "fen"),
            fault_plan=plan,
            max_retries=0,
            backoff=0.0,
        )
        outcome = executor.run(EASY, timeout=30)
        assert not outcome.solved
        assert outcome.status == "crash"
        assert outcome.engine == ""
        assert "injected crash" in outcome.error
        assert len(outcome.trail) == 2  # one attempt per engine

    def test_isolated_hang_outcome_recorded_and_run_continues(self):
        """Acceptance: a hung worker is killed, recorded as a timeout
        outcome, and the caller can keep going."""
        plan = FaultPlan(
            {EASY.to_hex(): FaultSpec("hang", times=None)}
        )
        executor = FaultTolerantExecutor(
            ("stp",), isolate=True, fault_plan=plan, max_retries=0
        )
        start = time.perf_counter()
        outcome = executor.run(EASY, timeout=1.0)
        assert time.perf_counter() - start < 1.5
        assert outcome.status == "timeout"
        assert not outcome.solved
        # the executor is reusable after a kill
        clean = FaultTolerantExecutor(
            ("stp",), isolate=True,
            engine_kwargs={"stp": {"max_solutions": 2}},
        )
        assert clean.run(EASY, timeout=30).solved

    def test_outcome_record_is_json_safe(self):
        import json

        executor = FaultTolerantExecutor(
            ("stp",), engine_kwargs={"stp": {"max_solutions": 2}}
        )
        outcome = executor.run(EASY, timeout=30)
        record = json.loads(json.dumps(outcome.to_record()))
        assert record["status"] == "ok"
        assert record["num_gates"] == 3
        assert record["trail"][0]["engine"] == "stp"

    def test_callable_engines_cannot_be_isolated(self):
        with pytest.raises(ValueError):
            FaultTolerantExecutor(
                [("x", lambda f, t: None)], isolate=True
            )

    def test_needs_at_least_one_engine(self):
        with pytest.raises(ValueError):
            FaultTolerantExecutor(())
