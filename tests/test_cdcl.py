"""CDCL solver tests: fuzzing against brute force, assumptions,
incremental AllSAT, restarts."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import CNF, CDCLSolver, Luby, all_models, solve_cnf


def brute_models(cnf):
    models = set()
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        if cnf.evaluate(bits):
            models.add(bits)
    return models


def random_cnf(rnd, num_vars, num_clauses, max_width=3):
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        width = rnd.randint(1, max_width)
        lits = [
            (v if rnd.random() < 0.5 else -v)
            for v in (rnd.randint(1, num_vars) for _ in range(width))
        ]
        cnf.add_clause(lits)
    return cnf


class TestLuby:
    def test_sequence(self):
        want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [Luby.value(i) for i in range(1, 16)] == want

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            Luby.value(0)

    def test_budgets_scale(self):
        luby = Luby(base=10)
        assert luby.next_budget() == 10
        assert luby.next_budget() == 10
        assert luby.next_budget() == 20


class TestBasicSolving:
    def test_simple_sat(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        assert solver.solve()
        assert solver.model()[2] is True

    def test_simple_unsat(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        assert not solver.add_clause([-1])
        assert solver.solve() is False

    def test_empty_clause(self):
        solver = CDCLSolver()
        assert not solver.add_clause([])

    def test_tautological_clause_ignored(self):
        solver = CDCLSolver()
        assert solver.add_clause([1, -1])
        assert solver.solve()

    def test_duplicate_literals(self):
        solver = CDCLSolver()
        solver.add_clause([1, 1, 1])
        assert solver.solve()
        assert solver.model()[1] is True

    def test_literal_zero_rejected(self):
        with pytest.raises(ValueError):
            CDCLSolver().add_clause([0])

    def test_pigeonhole_3_2_unsat(self):
        """3 pigeons, 2 holes: classic small UNSAT instance."""
        solver = CDCLSolver()
        # p[i][j] = var 2*i + j + 1
        var = lambda i, j: 2 * i + j + 1
        for i in range(3):
            solver.add_clause([var(i, 0), var(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    solver.add_clause([-var(i1, j), -var(i2, j)])
        assert solver.solve() is False

    def test_statistics_counters(self):
        rnd = random.Random(0)
        cnf = random_cnf(rnd, 12, 50)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        solver.solve()
        assert solver.num_propagations > 0


class TestFuzzing:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_brute_force(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(2, 9)
        cnf = random_cnf(rnd, n, rnd.randint(1, 4 * n))
        model = solve_cnf(cnf)
        if model is None:
            assert not brute_models(cnf)
        else:
            full = [model.get(v, False) for v in range(1, n + 1)]
            assert cnf.evaluate(full)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_allsat_is_complete(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(2, 6)
        cnf = random_cnf(rnd, n, rnd.randint(1, 3 * n))
        got = {
            tuple(m[v] for v in range(1, n + 1)) for m in all_models(cnf)
        }
        assert got == brute_models(cnf)

    def test_allsat_limit(self):
        cnf = CNF(4)  # 16 models
        cnf.add_clause([1, -1])
        models = list(all_models(cnf, limit=5))
        assert len(models) == 5

    def test_allsat_projection(self):
        cnf = CNF(3)
        cnf.add_clause([1, 2])
        projected = list(all_models(cnf, projection=[1]))
        values = {m[1] for m in projected}
        assert values == {True, False}


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        assert solver.solve([1]) and solver.model()[3] is True
        assert solver.solve([-1]) and solver.model()[2] is True
        assert solver.solve([1, -3]) is False

    def test_reusable_after_assumptions(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-1]) is True
        assert solver.solve() is True
        assert solver.solve([-1, -2]) is False
        assert solver.solve() is True

    def test_incremental_clauses(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve()
        solver.add_clause([-1])
        assert solver.solve()
        assert solver.model()[2] is True
        solver.add_clause([-2])
        assert solver.solve() is False


class TestDeadline:
    def test_deadline_propagates(self):
        from repro.core.spec import Deadline

        # Pigeonhole PHP(6, 5): UNSAT and conflict-heavy, so the
        # per-conflict deadline poll is guaranteed to fire.
        pigeons, holes = 6, 5
        solver = CDCLSolver()
        var = lambda i, j: holes * i + j + 1
        for i in range(pigeons):
            solver.add_clause([var(i, j) for j in range(holes)])
        for j in range(holes):
            for i1 in range(pigeons):
                for i2 in range(i1 + 1, pigeons):
                    solver.add_clause([-var(i1, j), -var(i2, j)])
        with pytest.raises(TimeoutError):
            solver.solve(deadline=Deadline(0.0))

    def test_conflict_limit_returns_none(self):
        rnd = random.Random(6)
        solver = CDCLSolver()
        solver.add_cnf(random_cnf(rnd, 30, 135, max_width=3))
        result = solver.solve(conflict_limit=1)
        assert result in (None, True, False)
