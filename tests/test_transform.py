"""Chain rewrite tests: support shrinking/lifting and polarity flips."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import BooleanChain
from repro.chain.transform import (
    flip_signal,
    lift_chain,
    polarity_variants,
    shrink_to_support,
    trivial_chain,
)
from repro.truthtable import TruthTable, constant, from_function, projection

from tests.helpers import random_chain


class TestShrinkLift:
    def test_shrink_identity_on_full_support(self):
        t = TruthTable(0x8FF8, 4)
        local, support = shrink_to_support(t)
        assert local == t and support == (0, 1, 2, 3)

    def test_shrink_removes_vacuous(self):
        t = from_function(lambda a, b, c, d: a ^ c, 4)
        local, support = shrink_to_support(t)
        assert support == (0, 2)
        assert local == from_function(lambda a, c: a ^ c, 2)

    def test_lift_roundtrip(self):
        t = from_function(lambda a, b, c, d: (a and d) or c, 4)
        local, support = shrink_to_support(t)
        chain = BooleanChain(len(support))
        s = chain.add_gate(0x8, (0, 2))
        s2 = chain.add_gate(0xE, (s, 1))
        chain.set_output(s2)
        assert chain.simulate_output() == local
        lifted = lift_chain(chain, 4, support)
        assert lifted.num_inputs == 4
        assert lifted.simulate_output() == t

    def test_lift_const_output(self):
        chain = BooleanChain(1)
        chain.set_output(BooleanChain.CONST0, True)
        lifted = lift_chain(chain, 3, (1,))
        assert lifted.simulate_output() == constant(1, 3)


class TestTrivialChain:
    def test_constants(self):
        c0 = trivial_chain(constant(0, 3))
        c1 = trivial_chain(constant(1, 3))
        assert c0.simulate_output() == constant(0, 3)
        assert c1.simulate_output() == constant(1, 3)

    def test_projections(self):
        p = projection(2, 4)
        assert trivial_chain(p).simulate_output() == p
        assert trivial_chain(~p).simulate_output() == ~p

    def test_nontrivial_returns_none(self):
        assert trivial_chain(TruthTable(0x8, 2)) is None


class TestFlipSignal:
    @given(st.integers(0, 10**9))
    @settings(max_examples=50, deadline=None)
    def test_flip_preserves_outputs(self, seed):
        rnd = random.Random(seed)
        chain = random_chain(rnd)
        signal = chain.num_inputs + rnd.randrange(chain.num_gates)
        flipped = flip_signal(chain, signal)
        assert flipped.simulate() == chain.simulate()

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_flip_is_involution(self, seed):
        rnd = random.Random(seed)
        chain = random_chain(rnd)
        signal = chain.num_inputs + rnd.randrange(chain.num_gates)
        twice = flip_signal(flip_signal(chain, signal), signal)
        assert twice.signature() == chain.signature()

    def test_flip_changes_internal_function(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x8, (0, 1))
        s2 = chain.add_gate(0x6, (0, s))
        chain.set_output(s2)
        flipped = flip_signal(chain, s)
        assert flipped.gate(s).op == 0x7  # and → nand
        assert flipped.simulate_output() == chain.simulate_output()

    def test_flip_output_signal_toggles_flag(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x8, (0, 1))
        chain.set_output(s)
        flipped = flip_signal(chain, s)
        assert flipped.outputs[0][1] is True
        assert flipped.simulate_output() == chain.simulate_output()

    def test_flip_pi_rejected(self):
        chain = BooleanChain(2)
        chain.add_gate(0x8, (0, 1))
        chain.set_output(2)
        with pytest.raises(ValueError):
            flip_signal(chain, 0)


class TestPolarityVariants:
    def test_count_and_distinctness(self):
        chain = BooleanChain(3)
        s3 = chain.add_gate(0x8, (0, 1))
        s4 = chain.add_gate(0x6, (2, s3))
        chain.set_output(s4)
        variants = list(polarity_variants(chain))
        assert len(variants) == 4  # 2^2 internal signals
        signatures = {v.signature() for v in variants}
        assert len(signatures) == 4
        target = chain.simulate_output()
        for v in variants:
            assert v.simulate_output() == target

    def test_cap(self):
        rnd = random.Random(0)
        chain = random_chain(rnd, num_gates=6)
        variants = list(polarity_variants(chain, max_variants=10))
        assert len(variants) == 10

    def test_first_variant_is_original(self):
        rnd = random.Random(1)
        chain = random_chain(rnd)
        first = next(iter(polarity_variants(chain)))
        assert first.signature() == chain.signature()
