"""End-to-end tests of the flat STP exact synthesizer."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core import STPSynthesizer, synthesize, verify_chain
from repro.truthtable import (
    TruthTable,
    constant,
    from_function,
    from_hex,
    majority,
    parity,
    projection,
)

KNOWN_SIZES = [
    ("and2", from_hex("8", 2), 1),
    ("or2", from_hex("e", 2), 1),
    ("xor2", from_hex("6", 2), 1),
    ("xor3", parity(3), 2),
    ("and3", from_function(lambda a, b, c: a and b and c, 3), 2),
    ("maj3", majority(3), 4),
    ("example7", from_hex("8ff8", 4), 3),
    ("mux", from_function(lambda s, a, b: b if s else a, 3), 3),
]


class TestKnownOptima:
    @pytest.mark.parametrize("name,f,size", KNOWN_SIZES)
    def test_gate_count(self, name, f, size):
        result = synthesize(f, timeout=120)
        assert result.num_gates == size

    @pytest.mark.parametrize("name,f,size", KNOWN_SIZES)
    def test_all_chains_realise_target(self, name, f, size):
        result = synthesize(f, timeout=120)
        assert result.num_solutions >= 1
        for chain in result.chains:
            assert chain.num_gates == size
            assert chain.simulate_output() == f
            assert verify_chain(chain, f)

    def test_solutions_distinct(self):
        result = synthesize(majority(3), timeout=120)
        signatures = {c.signature() for c in result.chains}
        assert len(signatures) == result.num_solutions


class TestTrivialFunctions:
    def test_constants(self):
        for value in (0, 1):
            result = synthesize(constant(value, 3))
            assert result.num_gates == 0
            assert result.chains[0].simulate_output() == constant(value, 3)

    def test_projections(self):
        for n in (1, 3):
            for v in range(n):
                for comp in (False, True):
                    f = projection(v, n, complemented=comp)
                    result = synthesize(f)
                    assert result.num_gates == 0
                    assert result.chains[0].simulate_output() == f

    def test_vacuous_variables_reattached(self):
        f = from_function(lambda a, b, c, d: b and d, 4)
        result = synthesize(f, timeout=60)
        assert result.num_gates == 1
        chain = result.chains[0]
        assert chain.num_inputs == 4
        assert chain.simulate_output() == f


class TestAgainstBaselines:
    @given(st.integers(0, 0xFF))
    @settings(max_examples=15, deadline=None)
    def test_optimum_matches_bms_3var(self, bits):
        from repro.baselines import bms_synthesize

        f = TruthTable(bits, 3)
        stp = synthesize(f, timeout=120)
        bms = bms_synthesize(f, timeout=120)
        assert stp.num_gates == bms.num_gates

    @pytest.mark.parametrize(
        "hex_bits", ["8ff8", "1ee1", "6996", "177e"]
    )
    def test_optimum_matches_fen_4var(self, hex_bits):
        from repro.baselines import fence_synthesize
        from repro.runtime.errors import BudgetExceeded

        f = from_hex(hex_bits, 4)
        try:
            fen = fence_synthesize(f, timeout=60)
        except BudgetExceeded:
            # The pure-Python CNF baseline cannot finish the hardest
            # classes (e.g. 0x177e) in any sane budget; a recorded
            # skip beats wedging the tier-1 suite.
            pytest.skip(f"FEN exceeded its budget on 0x{hex_bits}")
        stp = synthesize(f, timeout=180, max_solutions=8)
        assert stp.num_gates == fen.num_gates


class TestModesAndLimits:
    def test_first_solution_mode(self):
        syn = STPSynthesizer(all_solutions=False)
        result = syn.synthesize(majority(3), timeout=120)
        assert result.num_solutions == 1
        assert result.chains[0].simulate_output() == majority(3)

    def test_max_solutions_cap(self):
        syn = STPSynthesizer(max_solutions=5)
        result = syn.synthesize(majority(3), timeout=120)
        assert result.num_solutions <= 5

    def test_timeout_raises(self):
        with pytest.raises(TimeoutError):
            synthesize(from_hex("cafe", 4), timeout=0.05)

    def test_gate_cap_raises(self):
        syn = STPSynthesizer(max_gates=2, all_solutions=False)
        with pytest.raises(RuntimeError):
            syn.synthesize(majority(3), timeout=120)

    def test_stats_populated(self):
        result = synthesize(parity(3), timeout=60)
        assert result.stats.dags_examined >= 1
        assert result.stats.fences_examined >= 1
        # Verification runs on normal-form candidates; the solution set
        # is their polarity expansion, so it can only be larger.
        assert 1 <= result.stats.candidates_verified <= result.num_solutions
        assert result.stats.verification_failures == 0

    def test_no_verify_mode(self):
        syn = STPSynthesizer(verify=False)
        result = syn.synthesize(parity(3), timeout=60)
        assert all(
            c.simulate_output() == parity(3) for c in result.chains
        )

    def test_mean_time_per_solution(self):
        result = synthesize(parity(3), timeout=60)
        assert result.mean_time_per_solution() <= result.runtime

    def test_best_accessor(self):
        result = synthesize(parity(3), timeout=60)
        assert result.best is result.chains[0]


class TestPolarityExpansion:
    def test_counts_are_polarity_multiples(self):
        """maj3's 360 solutions = 45 normal chains × 2^3 flips."""
        result = synthesize(majority(3), timeout=120)
        assert result.num_solutions == 360
        normal = [
            c
            for c in result.chains
            if all(
                t.value(0) == 0
                for t in c.simulate_signals()[c.num_inputs:]
            )
        ]
        assert len(normal) * (1 << 3) == 360

    def test_xor3_six_solutions(self):
        result = synthesize(parity(3), timeout=60)
        assert result.num_solutions == 6

    def test_example7_four_solutions(self):
        result = synthesize(from_hex("8ff8", 4), timeout=60)
        assert result.num_solutions == 4
