"""Suite-wide test configuration: deterministic randomness.

Every non-property test already draws its randomness from an explicit
``random.Random(seed)``.  This profile extends the same hygiene to
Hypothesis: examples are derived from the test body instead of fresh
entropy, so two runs of the suite execute bit-for-bit identical
examples and a failure seen in CI reproduces locally without juggling
``--hypothesis-seed``.  Export ``HYPOTHESIS_PROFILE=explore`` to fuzz
with fresh entropy instead (the nightly job's territory).
"""

import os

from hypothesis import settings

settings.register_profile("deterministic", derandomize=True)
settings.register_profile("explore", derandomize=False)
settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "deterministic")
)
