"""NPN chain-database tests."""

import random

import pytest

from repro.core import NPNDatabase, apply_transform_to_chain, synthesize
from repro.truthtable import (
    NPNTransform,
    TruthTable,
    exact_canonical,
    from_hex,
    majority,
)

from tests.helpers import random_chain


class TestChainTransform:
    def test_identity_transform(self):
        result = synthesize(majority(3), timeout=60, max_solutions=2)
        chain = result.chains[0]
        same = apply_transform_to_chain(
            chain, NPNTransform.identity(3)
        )
        assert same.simulate_output() == chain.simulate_output()

    def test_random_transforms_track_semantics(self):
        rnd = random.Random(3)
        for _ in range(20):
            chain = random_chain(rnd, num_inputs=4, num_gates=4)
            perm = list(range(4))
            rnd.shuffle(perm)
            transform = NPNTransform(
                tuple(perm), rnd.getrandbits(4), bool(rnd.getrandbits(1))
            )
            moved = apply_transform_to_chain(chain, transform)
            want = transform.apply(chain.simulate_output())
            assert moved.simulate_output() == want
            assert moved.num_gates == chain.num_gates

    def test_pi_output_chain(self):
        from repro.chain import BooleanChain

        chain = BooleanChain(3)
        chain.set_output(1)  # f = x1
        transform = NPNTransform((2, 0, 1), 0b010, False)
        moved = apply_transform_to_chain(chain, transform)
        assert moved.simulate_output() == transform.apply(
            chain.simulate_output()
        )

    def test_arity_mismatch(self):
        rnd = random.Random(0)
        chain = random_chain(rnd, num_inputs=4)
        with pytest.raises(ValueError):
            apply_transform_to_chain(chain, NPNTransform.identity(3))


class TestDatabase:
    def test_lookup_returns_valid_chains(self):
        """Population is deadline-aware: easy classes come back with
        verified chains, classes that blow their per-class budget are
        recorded as skips — never an unhandled ``TimeoutError``."""
        db = NPNDatabase(timeout=3.0)
        rnd = random.Random(7)
        solved = 0
        for _ in range(6):
            f = TruthTable(rnd.getrandbits(16), 4)
            chains = db.lookup(f)
            if chains:
                solved += 1
                for chain in chains:
                    assert chain.simulate_output() == f
        # This seed mixes easy classes with ones no pure-Python engine
        # finishes in 3s; both kinds must be handled.
        assert solved >= 3
        assert len(db.skipped) == 6 - solved
        assert all(
            outcome.status == "timeout"
            for outcome in db.skipped.values()
        )

    def test_skipped_class_is_cached_and_typed(self):
        from repro.runtime.errors import BudgetExceeded

        db = NPNDatabase(timeout=0.05)
        hard = from_hex("52e6", 4)  # no engine solves this in 50 ms
        assert db.lookup(hard) == []
        assert len(db.skipped) == 1
        # The skip is cached: a second lookup must not re-burn budget.
        import time

        start = time.perf_counter()
        assert db.lookup(hard) == []
        assert time.perf_counter() - start < 0.05
        with pytest.raises(BudgetExceeded):
            db.optimal_size(hard)

    def test_orbit_members_share_entry(self):
        db = NPNDatabase(timeout=120)
        f = from_hex("8ff8", 4)
        db.lookup(f)
        size_before = len(db)
        rep, transform = exact_canonical(f)
        mate = NPNTransform((1, 0, 2, 3), 0b0001, True).apply(f)
        chains = db.lookup(mate)
        assert len(db) == size_before  # cache hit, no new class
        assert chains[0].simulate_output() == mate

    def test_optimal_size(self):
        db = NPNDatabase(timeout=120)
        assert db.optimal_size(from_hex("8ff8", 4)) == 3
        assert db.optimal_size(majority(3).extend(3)) == 4

    def test_precompute_with_progress(self):
        db = NPNDatabase(timeout=60)
        seen = []
        classes = [from_hex("6", 2), from_hex("8", 2)]
        db.precompute(classes, progress=lambda i, n: seen.append((i, n)))
        assert seen == [(1, 2), (2, 2)]
