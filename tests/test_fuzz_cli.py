"""Fuzz campaign driver and the ``repro-fuzz`` command line."""

import argparse
import json

import pytest

from repro.verify.cli import (
    EXIT_BAD_INPUT,
    EXIT_DISCREPANCY,
    EXIT_OK,
    main,
    parse_budget,
)
from repro.verify.corpus import load_corpus
from repro.verify.fuzz import FuzzConfig, run_fuzz
from repro.verify.generators import strategy_names


class TestParseBudget:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("120", 120.0),
            ("120s", 120.0),
            ("2m", 120.0),
            ("1h", 3600.0),
            (" 0.5M ", 30.0),
        ],
    )
    def test_accepted_forms(self, text, seconds):
        assert parse_budget(text) == seconds

    @pytest.mark.parametrize("text", ["", "fast", "10d", "0", "-5s"])
    def test_rejected_forms(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_budget(text)


class TestFuzzConfig:
    def test_default_is_one_sweep(self):
        assert FuzzConfig().effective_count() == len(strategy_names())

    def test_count_wins_over_sweep(self):
        assert FuzzConfig(count=3).effective_count() == 3

    def test_budget_alone_is_unbounded_count(self):
        assert FuzzConfig(budget_seconds=1.0).effective_count() is None


class TestRunFuzz:
    def test_clean_sweep_is_deterministic(self, tmp_path):
        config = FuzzConfig(
            seed=11, count=6, engines=("fen",), timeout_per_engine=30.0
        )
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        reports = [
            run_fuzz(config, report_path=path) for path in paths
        ]
        for report in reports:
            assert report.ok
            assert report.instances == 6
            assert report.strategy_counts == {
                name: 1 for name in strategy_names()
            }
        functions = []
        for path in paths:
            lines = [
                json.loads(line)
                for line in path.read_text().splitlines()
            ]
            assert [rec["type"] for rec in lines] == ["instance"] * 6 + [
                "summary"
            ]
            assert [rec["index"] for rec in lines[:-1]] == list(range(6))
            functions.append([rec["function"] for rec in lines[:-1]])
        assert functions[0] == functions[1]

    def test_injected_corrupt_is_found_shrunk_and_checked_in(
        self, tmp_path
    ):
        from repro.runtime.faults import FaultPlan, FaultSpec

        corpus = tmp_path / "corpus"
        config = FuzzConfig(
            seed=0,
            count=1,
            engines=("fen",),
            timeout_per_engine=30.0,
            fault_plan=FaultPlan(
                {FaultPlan.WILDCARD: FaultSpec("corrupt", times=None)}
            ),
            max_shrink_evaluations=50,
        )
        report = run_fuzz(config, corpus_dir=corpus)
        assert not report.ok
        assert report.shrunk
        entries = load_corpus(corpus)
        assert [e.name for e in entries] == ["fuzz-0-0"]
        assert entries[0].kind == "discrepancy"
        assert entries[0].function() == report.shrunk[0].minimized


@pytest.mark.fuzz
@pytest.mark.slow
class TestBudgetedCampaign:
    def test_ten_second_campaign_finds_nothing(self, tmp_path):
        """A short real-time campaign over every engine stays clean.

        The nightly job runs the same campaign for minutes with a
        fresh seed; this marked copy keeps the wiring honest in the
        slow tier without burning CI minutes on every push.
        """
        report_path = tmp_path / "report.jsonl"
        config = FuzzConfig(
            seed=1, budget_seconds=10.0, timeout_per_engine=5.0
        )
        report = run_fuzz(config, report_path=report_path)
        assert report.ok, [d.to_record() for d in report.discrepancies]
        assert report.instances >= 1
        assert report_path.read_text().strip()


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        code = main(
            ["--count", "2", "--engines", "fen", "--quiet",
             "--timeout", "30"]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "2 instance(s)" in out
        assert "0 discrepancy(ies)" in out

    def test_unknown_engine_is_a_usage_error(self, capsys):
        assert main(["--engines", "zchaff"]) == EXIT_BAD_INPUT
        assert "unknown engine" in capsys.readouterr().err

    def test_unknown_strategy_is_a_usage_error(self, capsys):
        assert main(["--strategies", "chaos"]) == EXIT_BAD_INPUT
        assert "unknown strategy" in capsys.readouterr().err

    def test_corrupt_corpus_is_a_usage_error(self, tmp_path, capsys):
        (tmp_path / "bad.json").write_text("{\"version\": 99}")
        code = main(
            ["--count", "1", "--engines", "fen",
             "--corpus", str(tmp_path)]
        )
        assert code == EXIT_BAD_INPUT
        assert "corrupt corpus entry" in capsys.readouterr().err

    def test_injected_fault_exits_one_and_writes_artifacts(
        self, tmp_path, capsys
    ):
        report_path = tmp_path / "report.jsonl"
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        code = main(
            [
                "--count", "1",
                "--engines", "fen",
                "--timeout", "30",
                "--inject-fault", "corrupt",
                "--report", str(report_path),
                "--corpus", str(corpus),
                "--quiet",
            ]
        )
        assert code == EXIT_DISCREPANCY
        assert "reproducer:" in capsys.readouterr().out
        lines = [
            json.loads(line)
            for line in report_path.read_text().splitlines()
        ]
        assert lines[-1]["type"] == "summary"
        assert lines[-1]["num_discrepancies"] >= 1
        assert lines[0]["discrepancies"]
        assert "shrunk" in lines[0]
        assert load_corpus(corpus)
