"""The racing executor: cancellation, stragglers, degradation."""

import os

import pytest

from repro.engine import run_engine
from repro.runtime.executor import FaultTolerantExecutor, format_trail
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.health import EngineHealth
from repro.runtime.racing import RacingExecutor
from repro.store import ChainStore
from repro.truthtable import from_hex


def assert_no_orphans(records):
    """Every cancelled loser must be dead and reaped (bounded join)."""
    for record in records:
        assert record.pid is not None
        assert record.seconds < 5.0  # the bounded-join guarantee
        with pytest.raises((ProcessLookupError, ChildProcessError)):
            # Reaped children are gone from the process table; a pid
            # still probe-able here would be an orphan (or a zombie).
            os.kill(record.pid, 0)
            os.waitpid(record.pid, os.WNOHANG)


class TestWinnerCancelsLosers:
    def test_winner_reaps_all_losers(self):
        executor = RacingExecutor(("stp", "fen", "cegis"))
        outcome = executor.run(from_hex("e8", 3), timeout=30.0)
        assert outcome.solved and outcome.exact
        assert outcome.result.num_gates == 4  # majority-3 optimum
        # Exactly one lane won; the others were cancelled.
        assert len(executor.last_cancellations) == 2
        assert_no_orphans(executor.last_cancellations)
        names = {c.engine for c in executor.last_cancellations}
        assert outcome.engine not in names

    def test_hung_lanes_cannot_stall_the_race(self):
        # Both non-winning lanes hang forever; the winner's return
        # must still reap them promptly.
        plan = FaultPlan(
            {
                FaultPlan.WILDCARD: [
                    FaultSpec(kind="hang", engine="stp", times=None),
                    FaultSpec(kind="hang", engine="cegis", times=None),
                ]
            }
        )
        executor = RacingExecutor(
            ("stp", "fen", "cegis"), fault_plan=plan
        )
        outcome = executor.run(from_hex("e8", 3), timeout=10.0)
        assert outcome.solved
        assert outcome.engine == "fen"
        assert_no_orphans(executor.last_cancellations)

    def test_cancellation_under_wildcard_fault_injection(self):
        # WILDCARD faults hit lanes the plan never named explicitly;
        # the race must still settle and leave no orphan workers.
        plan = FaultPlan(
            {
                FaultPlan.WILDCARD: [
                    FaultSpec(kind="crash", times=1),
                    FaultSpec(kind="hang", times=1),
                ]
            }
        )
        executor = RacingExecutor(
            ("stp", "fen", "cegis"), fault_plan=plan
        )
        outcome = executor.run(from_hex("e8", 3), timeout=10.0)
        assert outcome.solved
        assert_no_orphans(executor.last_cancellations)
        statuses = {r.status for r in outcome.trail}
        assert "ok" in statuses

    def test_corrupt_lane_loses_the_race(self):
        plan = FaultPlan(
            {
                FaultPlan.WILDCARD: FaultSpec(
                    kind="corrupt", engine="stp", times=None
                )
            }
        )
        executor = RacingExecutor(("stp", "fen"), fault_plan=plan)
        outcome = executor.run(from_hex("e8", 3), timeout=30.0)
        assert outcome.solved and outcome.engine == "fen"
        corrupt = [r for r in outcome.trail if r.status == "corrupt"]
        assert corrupt and corrupt[0].engine == "stp"


class TestStragglers:
    @pytest.mark.slow
    @pytest.mark.parametrize("hexval", ["0016", "0017"])
    def test_npn4_stragglers_solve_exactly_under_race(self, hexval):
        # The two NPN4 classes the sequential stp pipeline cannot
        # finish in a tier-1 budget; racing recovers them exactly.
        executor = RacingExecutor(("stp", "fen", "cegis"))
        outcome = executor.run(from_hex(hexval, 4), timeout=60.0)
        assert outcome.solved and outcome.exact
        assert outcome.result.num_gates == 5
        for chain in outcome.result.chains:
            assert chain.simulate_output() == from_hex(hexval, 4)
        assert_no_orphans(executor.last_cancellations)


class TestGracefulDegradation:
    def _store_with_upper_bound(self, tmp_path, function):
        store = ChainStore(str(tmp_path / "chains.db"))
        result = run_engine("fen", function, 60.0)
        assert store.put(function, result, "hier", exact=False)
        return store, result.num_gates

    def test_all_lanes_exhausted_serves_store_upper_bound(
        self, tmp_path
    ):
        function = from_hex("e8", 3)
        store, bound = self._store_with_upper_bound(tmp_path, function)
        plan = FaultPlan(
            {
                FaultPlan.WILDCARD: FaultSpec(
                    kind="timeout", times=None
                )
            }
        )
        with store:
            executor = RacingExecutor(
                ("stp", "fen"), fault_plan=plan, store=store
            )
            outcome = executor.run(function, timeout=5.0)
        assert outcome.status == "degraded"
        assert outcome.degraded and not outcome.solved
        assert outcome.exact is False
        assert outcome.engine == "store"
        assert outcome.result.num_gates == bound
        for chain in outcome.result.chains:
            assert chain.simulate_output() == function

    def test_inexact_lane_result_serves_when_store_is_cold(self):
        # Exact lanes fail, but the heuristic lane's verified answer
        # is held and served as the degraded upper bound.
        plan = FaultPlan(
            {
                FaultPlan.WILDCARD: [
                    FaultSpec(kind="timeout", engine="stp", times=None),
                    FaultSpec(kind="timeout", engine="fen", times=None),
                ]
            }
        )
        executor = RacingExecutor(
            ("stp", "fen", "hier"), fault_plan=plan
        )
        outcome = executor.run(from_hex("e8", 3), timeout=10.0)
        assert outcome.status == "degraded"
        assert outcome.exact is False
        assert outcome.engine == "hier"
        for chain in outcome.result.chains:
            assert chain.simulate_output() == from_hex("e8", 3)

    def test_nothing_to_serve_stays_a_plain_failure(self):
        plan = FaultPlan(
            {
                FaultPlan.WILDCARD: FaultSpec(
                    kind="timeout", times=None
                )
            }
        )
        executor = RacingExecutor(("stp", "fen"), fault_plan=plan)
        outcome = executor.run(from_hex("e8", 3), timeout=5.0)
        assert outcome.status == "timeout"
        assert outcome.result is None

    def test_infeasible_from_an_exact_lane_ends_the_race(self):
        executor = RacingExecutor(
            ("fen", "cegis"),
            engine_kwargs={
                "fen": {"max_gates": 1},
                "cegis": {"max_gates": 1},
            },
        )
        outcome = executor.run(from_hex("8ff8", 4), timeout=30.0)
        assert outcome.status == "infeasible"


class TestStoreIntegration:
    def test_exact_win_is_written_back_and_served(self, tmp_path):
        function = from_hex("e8", 3)
        with ChainStore(str(tmp_path / "chains.db")) as store:
            executor = RacingExecutor(("fen", "cegis"), store=store)
            cold = executor.run(function, timeout=30.0)
            assert cold.solved and store.writes == 1
            warm = executor.run(function, timeout=30.0)
            assert warm.solved and warm.engine == "store"

    def test_quarantined_rows_are_counted_per_run(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "chains.db")
        function = from_hex("e8", 3)
        with ChainStore(path) as store:
            store.put(function, run_engine("fen", function, 30.0), "fen")
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE chains SET solutions = '[{\"v\": 9}]'")
        conn.close()
        with ChainStore(path) as store:
            executor = RacingExecutor(("fen",), store=store)
            outcome = executor.run(function, timeout=30.0)
            # Corrupt row quarantined mid-run, then solved fresh.
            assert outcome.solved
            assert outcome.store_quarantined == 1
            assert store.quarantined == 1
            # The fresh write-back replaced the quarantined row, so a
            # second run is served from the store again.
            again = executor.run(function, timeout=30.0)
            assert again.solved and again.engine == "store"
            assert again.store_quarantined == 0


class TestHealthIntegration:
    def test_open_breaker_drops_a_lane_from_the_race(self):
        health = EngineHealth(min_samples=2, failure_threshold=0.5)
        for _ in range(4):
            health.record("stp", "crash")
        executor = RacingExecutor(
            ("stp", "fen"), health=health, width=2
        )
        outcome = executor.run(from_hex("e8", 3), timeout=30.0)
        assert outcome.solved
        assert all(r.engine != "stp" for r in outcome.trail)

    def test_race_outcomes_feed_the_breaker(self):
        plan = FaultPlan(
            {
                FaultPlan.WILDCARD: FaultSpec(
                    kind="crash", engine="stp", times=None
                )
            }
        )
        health = EngineHealth(min_samples=2, failure_threshold=0.5)
        executor = RacingExecutor(
            ("stp", "fen"), health=health, fault_plan=plan
        )
        for _ in range(3):
            outcome = executor.run(from_hex("e8", 3), timeout=30.0)
            assert outcome.solved
        assert health.state("stp") == "open"
        assert health.state("fen") == "closed"

    def test_adaptive_deadline_only_shrinks_budgets(self):
        # A solved class seeds the history; the next race on the same
        # class still wins within the shortened first round.
        health = EngineHealth()
        executor = RacingExecutor(("stp", "fen", "cegis"), health=health)
        function = from_hex("e8", 3)
        first = executor.run(function, timeout=30.0)
        assert first.solved
        assert health.suggest_timeout(function, 30.0) is not None
        # Fresh executor, warm health: adaptive round must still solve.
        second = RacingExecutor(
            ("stp", "fen", "cegis"), health=health
        ).run(function, timeout=30.0)
        assert second.solved


class TestTrailFormatting:
    def test_trail_names_engine_error_class_and_seconds(self):
        plan = FaultPlan(
            {"e8": FaultSpec(kind="crash", engine="stp", times=None)}
        )
        executor = FaultTolerantExecutor(
            ("stp", "fen"), fault_plan=plan, max_retries=0
        )
        outcome = executor.run(from_hex("e8", 3), timeout=30.0)
        assert outcome.solved and outcome.engine == "fen"
        lines = format_trail(outcome.trail)
        assert len(lines) == len(outcome.trail)
        failed = [
            line
            for line, record in zip(lines, outcome.trail)
            if record.status != "ok"
        ]
        assert failed
        for line in failed:
            assert "engine stp" in line
            assert "[RuntimeError]" in line  # the error class
            assert "s (" in line and "after" in line  # the seconds

    def test_attempt_records_carry_the_error_class(self):
        plan = FaultPlan(
            {"e8": FaultSpec(kind="timeout", engine="stp", times=None)}
        )
        executor = FaultTolerantExecutor(
            ("stp", "fen"),
            fault_plan=plan,
            max_retries=0,
            fallback_on_timeout=True,
        )
        outcome = executor.run(from_hex("e8", 3), timeout=30.0)
        record = outcome.trail[0]
        assert record.error_class == "BudgetExceeded"
        assert record.to_record()["error_class"] == "BudgetExceeded"
