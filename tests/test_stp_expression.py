"""Expression AST, parser and canonical-form tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stp import (
    BinOp,
    Const,
    Not,
    Var,
    canonical_form,
    expression_to_truth_table,
    is_logic_matrix,
    parse,
)


def random_expression(draw, depth, names=("a", "b", "c")):
    if depth == 0:
        return Var(draw(st.sampled_from(names)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Var(draw(st.sampled_from(names)))
    if kind == 1:
        return Not(random_expression(draw, depth - 1, names))
    op = draw(
        st.sampled_from(
            ["and", "or", "xor", "xnor", "nand", "nor", "implies", "equiv"]
        )
    )
    left = random_expression(draw, depth - 1, names)
    right = random_expression(draw, depth - 1, names)
    return BinOp(op, left, right)


expressions = st.composite(lambda draw: random_expression(draw, 3))()


class TestAST:
    def test_variables_order(self):
        expr = parse("b & (a | c) & b")
        assert expr.variables() == ("b", "a", "c")

    def test_operator_sugar(self):
        a, b = Var("a"), Var("b")
        assert str(a & b) == "a & b"
        assert str(a | ~b) == "a | ~b"
        assert str(a ^ b) == "a ^ b"
        assert str(a.implies(b)) == "a -> b"
        assert str(a.equiv(b)) == "a <-> b"

    def test_bad_operator(self):
        with pytest.raises(ValueError):
            BinOp("frob", Var("a"), Var("b"))

    def test_evaluate(self):
        expr = parse("(a -> b) & ~c")
        assert expr.evaluate({"a": 0, "b": 0, "c": 0}) == 1
        assert expr.evaluate({"a": 1, "b": 0, "c": 0}) == 0
        assert expr.evaluate({"a": 1, "b": 1, "c": 1}) == 0

    def test_evaluate_missing_var(self):
        with pytest.raises(KeyError):
            Var("a").evaluate({})

    def test_const(self):
        assert Const(True).evaluate({}) == 1
        assert parse("1 & a").evaluate({"a": 1}) == 1
        assert parse("0 | a").evaluate({"a": 0}) == 0


class TestParser:
    def test_precedence(self):
        expr = parse("a | b & c")
        assert str(expr) == "a | (b & c)"

    def test_implication_right_assoc(self):
        expr = parse("a -> b -> c")
        assert str(expr) == "a -> (b -> c)"

    def test_equiv_loosest(self):
        expr = parse("a <-> b | c")
        assert str(expr) == "a <-> (b | c)"

    def test_alternative_tokens(self):
        assert str(parse("!a => b <=> c")) == str(parse("~a -> b <-> c"))

    def test_parentheses(self):
        assert str(parse("(a | b) & c")) == "(a | b) & c"

    def test_errors(self):
        for bad in ["a &", "(a", "a b", "a & & b", "@"]:
            with pytest.raises(ValueError):
                parse(bad)

    @given(expressions)
    @settings(max_examples=40, deadline=None)
    def test_print_parse_roundtrip(self, expr):
        reparsed = parse(str(expr))
        order = expr.variables()
        assert np.array_equal(
            expr.canonical_form(order), reparsed.canonical_form(order)
        )


class TestCanonicalForm:
    @given(expressions)
    @settings(max_examples=50, deadline=None)
    def test_matches_direct_evaluation(self, expr):
        """STP algebra agrees with brute-force tabulation."""
        assert expr.to_truth_table() == expression_to_truth_table(expr)

    @given(expressions)
    @settings(max_examples=30, deadline=None)
    def test_is_logic_matrix(self, expr):
        assert is_logic_matrix(expr.canonical_form())

    def test_example4_canonical_form(self):
        """The paper's liar-puzzle canonical form, digit for digit."""
        expr = parse("(a <-> ~b) & (b <-> ~c) & (c <-> (~a & ~b))")
        expected = np.array(
            [[0, 0, 0, 0, 0, 1, 0, 0], [1, 1, 1, 1, 1, 0, 1, 1]]
        )
        assert np.array_equal(expr.canonical_form(), expected)

    def test_explicit_variable_order(self):
        expr = parse("a & ~b")
        m_ab = expr.canonical_form(["a", "b"])
        m_ba = expr.canonical_form(["b", "a"])
        assert not np.array_equal(m_ab, m_ba)

    def test_missing_variable_in_order(self):
        with pytest.raises(ValueError):
            parse("a & b").canonical_form(["a"])

    def test_module_level_alias(self):
        expr = parse("a | b")
        assert np.array_equal(canonical_form(expr), expr.canonical_form())
