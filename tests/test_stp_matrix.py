"""STP matrix algebra tests (Definition 1, Properties 1–2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stp import (
    FALSE,
    M_R,
    M_W,
    TRUE,
    assignment_to_column,
    bool_vector,
    canonical_to_truth_table,
    column_index,
    column_to_assignment,
    front_retrieval_matrix,
    identity,
    is_logic_matrix,
    is_unit_column,
    khatri_rao,
    power_reduce_matrix,
    stp,
    stp_chain,
    swap_matrix,
    truth_table_to_canonical,
    unit_vector,
)
from repro.truthtable import TruthTable

small_matrix = st.integers(1, 4).flatmap(
    lambda r: st.integers(1, 4).flatmap(
        lambda c: st.lists(
            st.lists(st.integers(-3, 3), min_size=c, max_size=c),
            min_size=r,
            max_size=r,
        ).map(np.array)
    )
)


class TestDefinition1:
    def test_reduces_to_matmul(self):
        a = np.array([[1, 2], [3, 4]])
        b = np.array([[5, 6], [7, 8]])
        assert np.array_equal(stp(a, b), a @ b)

    def test_dimensions(self):
        a = np.ones((2, 4), dtype=int)
        b = np.ones((2, 3), dtype=int)
        assert stp(a, b).shape == (2, 6)

    @given(small_matrix, small_matrix, small_matrix)
    @settings(max_examples=40, deadline=None)
    def test_associativity(self, x, y, z):
        left = stp(stp(x, y), z)
        right = stp(x, stp(y, z))
        assert np.array_equal(left, right)

    def test_column_vector_is_kron(self):
        for i in range(2):
            for j in range(2):
                u, v = unit_vector(i, 2), unit_vector(j, 2)
                assert np.array_equal(stp(u, v), np.kron(u, v))

    def test_stp_chain(self):
        mats = [identity(2), M_W, M_R]
        assert np.array_equal(
            stp_chain(mats), stp(stp(identity(2), M_W), M_R)
        )
        with pytest.raises(ValueError):
            stp_chain([])

    def test_1d_inputs_promoted(self):
        v = np.array([1, 0])
        assert stp(identity(2), v).shape == (2, 1)


class TestProperty1:
    @given(small_matrix, st.lists(st.integers(-3, 3), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_row_vector_swap(self, x, z_list):
        z = np.array([z_list])
        t = z.shape[1]
        lhs = stp(x, z)
        rhs = stp(z, np.kron(identity(t), x))
        assert np.array_equal(lhs, rhs)

    @given(small_matrix, st.lists(st.integers(-3, 3), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_column_vector_swap(self, x, z_list):
        z = np.array(z_list).reshape(-1, 1)
        t = z.shape[0]
        lhs = stp(z, x)
        rhs = stp(np.kron(identity(t), x), z)
        assert np.array_equal(lhs, rhs)


class TestLogicMatrices:
    def test_true_false(self):
        assert np.array_equal(TRUE, [[1], [0]])
        assert np.array_equal(FALSE, [[0], [1]])
        assert np.array_equal(bool_vector(1), TRUE)
        assert np.array_equal(bool_vector(False), FALSE)

    def test_unit_columns(self):
        assert is_unit_column(unit_vector(2, 4))
        assert not is_unit_column(np.array([1, 1, 0]))
        assert column_index(unit_vector(2, 4)) == 2
        with pytest.raises(ValueError):
            column_index(np.array([1, 1]))
        with pytest.raises(IndexError):
            unit_vector(4, 4)

    def test_is_logic_matrix(self):
        assert is_logic_matrix(M_W)
        assert is_logic_matrix(M_R)
        assert not is_logic_matrix(np.array([[2, 0], [0, 1]]))
        assert not is_logic_matrix(np.array([[1, 1], [1, 0]]))

    def test_paper_constants(self):
        assert np.array_equal(
            M_R, [[1, 0], [0, 0], [0, 0], [0, 1]]
        )
        assert np.array_equal(
            M_W, [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]
        )


class TestSwapAndPowerReduce:
    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_swap_matrix_action(self, m, n):
        w = swap_matrix(m, n)
        for i in range(m):
            for j in range(n):
                u, v = unit_vector(i, m), unit_vector(j, n)
                assert np.array_equal(w @ np.kron(u, v), np.kron(v, u))

    @given(st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_power_reduce_action(self, dim):
        pr = power_reduce_matrix(dim)
        for j in range(dim):
            u = unit_vector(j, dim)
            assert np.array_equal(pr @ u, stp(u, u))

    def test_mw_swaps_variables(self):
        for a in (0, 1):
            for b in (0, 1):
                va, vb = bool_vector(a), bool_vector(b)
                assert np.array_equal(
                    stp_chain([M_W, vb, va]), stp(va, vb)
                )

    def test_mr_power_reduces(self):
        for a in (0, 1):
            v = bool_vector(a)
            assert np.array_equal(M_R @ v, stp(v, v))


class TestKhatriRao:
    @given(st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_equals_kron_times_pr(self, n):
        rng = np.random.default_rng(n)
        a = rng.integers(0, 2, size=(2, 1 << n))
        b = rng.integers(0, 2, size=(2, 1 << n))
        direct = khatri_rao(a, b)
        via_pr = np.kron(a, b) @ power_reduce_matrix(1 << n)
        # (A ⊗ B)(x ⋉ x): kron acts on doubled index; PR selects the
        # diagonal — equal column-by-column.
        assert np.array_equal(direct, via_pr)

    def test_column_mismatch(self):
        with pytest.raises(ValueError):
            khatri_rao(np.ones((2, 3)), np.ones((2, 4)))


class TestCanonicalConversion:
    @given(st.integers(0, 0xFFFF))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, bits):
        t = TruthTable(bits, 4)
        m = truth_table_to_canonical(t)
        assert is_logic_matrix(m)
        assert canonical_to_truth_table(m) == t

    @given(st.integers(0, 0xFF), st.integers(0, 7))
    @settings(max_examples=50, deadline=None)
    def test_evaluation_consistency(self, bits, column):
        """M_Φ ⋉ x_1 ⋉ … ⋉ x_n lands on the truth-table value."""
        t = TruthTable(bits, 3)
        m = truth_table_to_canonical(t)
        values = column_to_assignment(column, 3)
        vec = stp_chain([m] + [bool_vector(v) for v in values])
        # Paper variable x_k is table variable n-k.
        row = 0
        for i, v in enumerate(values):
            if v:
                row |= 1 << (3 - 1 - i)
        assert vec[0, 0] == t.value(row)

    def test_column_assignment_roundtrip(self):
        for j in range(16):
            values = column_to_assignment(j, 4)
            assert assignment_to_column(values, 4) == j

    def test_assignment_errors(self):
        with pytest.raises(ValueError):
            assignment_to_column([0, 1], 3)
        with pytest.raises(IndexError):
            column_to_assignment(8, 3)

    def test_front_retrieval(self):
        for n in (2, 3):
            for var in range(1, n + 1):
                m = front_retrieval_matrix(var, n)
                for j in range(1 << n):
                    values = column_to_assignment(j, n)
                    vec = m @ unit_vector(j, 1 << n)
                    assert vec[0, 0] == values[var - 1]

    def test_front_retrieval_bad_var(self):
        with pytest.raises(ValueError):
            front_retrieval_matrix(0, 3)

    def test_bad_canonical_inputs(self):
        with pytest.raises(ValueError):
            canonical_to_truth_table(np.ones((3, 4), dtype=int))
        with pytest.raises(ValueError):
            canonical_to_truth_table(np.array([[1, 1, 1], [0, 0, 0]]))
