"""Persistent chain-store tests.

The acceptance path: store → lookup → inverse-NPN re-simulation for
every 3-input NPN class; a cold miss falls through to the engine and
writes back so the next request is served without any synthesis; a
warm store serves a repeated suite with zero new synthesis calls.
"""

import json
import sqlite3
import threading

import pytest

from repro.bench.runner import default_algorithms, run_suite
from repro.bench.suites import get_suite
from repro.engine import run_engine
from repro.runtime.executor import FaultTolerantExecutor
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.store import ChainStore, chain_from_record, chain_to_record
from repro.truthtable import from_hex
from repro.truthtable.npn import NPNTransform, npn_classes

from tests.helpers import assert_chain_realizes


class TestSerialization:
    def test_roundtrip_preserves_behaviour(self):
        result = run_engine("fen", from_hex("e8", 3), 30.0)
        for chain in result.chains:
            rebuilt = chain_from_record(chain_to_record(chain))
            assert rebuilt.simulate_output() == chain.simulate_output()
            assert rebuilt.signature() == chain.signature()

    def test_record_is_json_safe(self):
        result = run_engine("fen", from_hex("e8", 3), 30.0)
        record = chain_to_record(result.chains[0])
        assert chain_from_record(
            json.loads(json.dumps(record))
        ).simulate_output() == result.chains[0].simulate_output()

    def test_malformed_records_raise(self):
        with pytest.raises(ValueError):
            chain_from_record("not a dict")
        with pytest.raises(ValueError):
            chain_from_record({"v": 999})
        with pytest.raises(ValueError):
            chain_from_record({"v": 1, "inputs": 2, "gates": "x"})


class TestRoundTripAllThreeInputClasses:
    def test_every_class_serves_its_orbit(self, tmp_path):
        """store → lookup → inverse-NPN re-simulation for all 3-input
        NPN classes, probing a non-trivial orbit member of each."""
        probe = NPNTransform(
            perm=(2, 0, 1), input_flips=0b101, output_flip=True
        )
        with ChainStore(tmp_path / "chains.db") as store:
            for rep in npn_classes(3):
                result = run_engine("fen", rep, 30.0)
                assert result.chains, f"0x{rep.to_hex()} unsolved"
                assert store.put(rep, result, engine="fen")

                member = probe.apply(rep)
                served = store.lookup(member)
                assert served is not None, f"0x{member.to_hex()} missed"
                assert served.num_gates == result.num_gates
                for chain in served.chains:
                    assert_chain_realizes(member, chain)
            assert store.hits == len(npn_classes(3))
            assert len(store) >= 1

    def test_lookup_times_are_recorded(self, tmp_path):
        with ChainStore(tmp_path / "chains.db") as store:
            function = from_hex("e8", 3)
            store.put(function, run_engine("fen", function, 30.0), "fen")
            served = store.lookup(function)
            assert served is not None and served.runtime >= 0.0


class TestExecutorIntegration:
    def test_cold_miss_falls_through_and_writes_back(self, tmp_path):
        path = str(tmp_path / "chains.db")
        function = from_hex("8ff8", 4)

        with ChainStore(path) as store:
            executor = FaultTolerantExecutor(("fen",), store=store)
            cold = executor.run(function, 60.0)
            assert cold.solved and cold.engine == "fen"
            assert store.writes >= 1

        # Second run: the primary engine is scripted to crash on every
        # attempt, so a solved outcome proves zero synthesis happened.
        plan = FaultPlan(
            {
                function.to_hex(): FaultSpec(
                    "crash", engine="fen", times=None
                )
            }
        )
        with ChainStore(path) as store:
            executor = FaultTolerantExecutor(
                ("fen",), store=store, fault_plan=plan
            )
            warm = executor.run(function, 60.0)
            assert warm.solved
            assert warm.engine == "store"
            assert store.hits == 1
            for chain in warm.result.chains:
                assert_chain_realizes(function, chain)

    def test_store_failure_degrades_to_synthesis(self, tmp_path):
        path = str(tmp_path / "chains.db")
        function = from_hex("e8", 3)
        store = ChainStore(path)
        store.close()  # every store call now fails internally
        executor = FaultTolerantExecutor(("fen",), store=store)
        outcome = executor.run(function, 30.0)
        assert outcome.solved and outcome.engine == "fen"

    def test_inexact_engines_only_write_upper_bounds(self, tmp_path):
        # A heuristic engine's result lands as an upper-bound row:
        # the plain (optimal) lookup must refuse to serve it, while
        # the degradation path may.
        from repro.engine import engine_capabilities

        assert not engine_capabilities("hier").exact
        function = from_hex("e8", 3)
        with ChainStore(tmp_path / "chains.db") as store:
            executor = FaultTolerantExecutor(("hier",), store=store)
            outcome = executor.run(function, 30.0)
            assert outcome.solved
            assert store.writes == 1 and len(store) == 1
            assert store.lookup(function) is None
            served = store.lookup_upper_bound(function)
            assert served is not None
            result, exact = served
            assert exact is False
            for chain in result.chains:
                assert_chain_realizes(function, chain)


class TestCorruptionAndConcurrency:
    def test_corrupt_row_degrades_to_miss(self, tmp_path):
        path = str(tmp_path / "chains.db")
        function = from_hex("e8", 3)
        with ChainStore(path) as store:
            store.put(function, run_engine("fen", function, 30.0), "fen")
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE chains SET solutions = '[{\"v\": 9}]'")
        conn.close()
        with ChainStore(path) as store:
            assert store.lookup(function) is None
            assert store.misses == 1

    def test_merge_dedupes_and_unions_solutions(self, tmp_path):
        function = from_hex("e8", 3)
        result = run_engine("fen", function, 30.0, max_solutions=8)
        with ChainStore(tmp_path / "chains.db") as store:
            assert store.put(function, result, "fen")
            assert store.put(function, result, "fen")  # same set again
            served = store.lookup(function)
            signatures = [c.signature() for c in served.chains]
            assert len(signatures) == len(set(signatures))
            assert len(signatures) == len(result.chains)

    def test_concurrent_writers_share_one_file(self, tmp_path):
        path = str(tmp_path / "chains.db")
        reps = npn_classes(3)[:6]
        results = {r: run_engine("fen", r, 30.0) for r in reps}
        errors = []

        def writer(rep):
            try:
                with ChainStore(path) as store:
                    store.put(rep, results[rep], "fen")
                    assert store.lookup(rep) is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(rep,)) for rep in reps
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        with ChainStore(path) as store:
            for rep in reps:
                assert store.lookup(rep) is not None

    def test_one_instance_hammered_from_many_threads(self, tmp_path):
        """One shared ChainStore must survive concurrent lookup/put
        from many threads (the serving layer's access pattern): every
        thread reads through its own SQLite connection, writes
        serialize internally, and no operation raises or serves a
        wrong chain."""
        reps = npn_classes(3)[:6]
        results = {r: run_engine("fen", r, 30.0) for r in reps}
        errors = []
        barrier = threading.Barrier(8)

        with ChainStore(tmp_path / "chains.db") as store:
            # Pre-seed half the classes so lookups mix hits and misses.
            for rep in reps[:3]:
                store.put(rep, results[rep], "fen")

            def hammer(worker):
                try:
                    barrier.wait(timeout=30)
                    for round_ in range(12):
                        rep = reps[(worker + round_) % len(reps)]
                        served = store.lookup(rep)
                        if served is not None:
                            assert_chain_realizes(rep, served.chains[0])
                        store.put(rep, results[rep], "fen")
                        served = store.lookup(rep)
                        assert served is not None
                        assert (
                            served.num_gates
                            == results[rep].num_gates
                        )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert store.quarantined == 0
            for rep in reps:
                assert store.lookup(rep) is not None


class TestSuiteWarmStore:
    def test_warm_store_serves_suite_with_zero_synthesis(self, tmp_path):
        """Acceptance: a repeated suite against a warm store performs
        no new synthesis calls — proven by crashing every engine."""
        path = str(tmp_path / "chains.db")
        functions = get_suite("npn4", 4)
        fen = [
            a
            for a in default_algorithms(max_solutions=16)
            if a.name == "FEN"
        ]
        cold = run_suite(
            "npn4", functions, fen, 60.0, store_path=path
        )
        assert cold[0].num_ok == 4
        assert cold[0].num_store_hits == 0

        plan = FaultPlan(
            {
                f.to_hex(): FaultSpec("crash", engine="fen", times=None)
                for f in functions
            }
        )
        warm = run_suite(
            "npn4",
            functions,
            fen,
            60.0,
            store_path=path,
            fault_plan=plan,
        )
        assert warm[0].num_ok == 4
        assert warm[0].num_store_hits == 4
        assert all(o.engine == "store" for o in warm[0].outcomes)
        assert [o.num_gates for o in warm[0].outcomes] == [
            o.num_gates for o in cold[0].outcomes
        ]


class TestSynthCli:
    def test_repro_synth_store_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "chains.db")
        argv = ["e8", "--vars", "3", "--engine", "fen", "--store", path]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[store]" in out


class TestNegativeCache:
    """The ``infeasible`` table: proven-empty gate counts per NPN class."""

    def test_round_trip_and_monotone_upsert(self, tmp_path):
        with ChainStore(tmp_path / "chains.db") as store:
            t = from_hex("0016", 4)
            assert store.min_feasible_gates(t) == 0
            store.mark_infeasible(t, 3)
            assert store.min_feasible_gates(t) == 4
            store.mark_infeasible(t, 2)  # never downgrades
            assert store.min_feasible_gates(t) == 4
            store.mark_infeasible(t, 4)
            assert store.min_feasible_gates(t) == 5
            store.mark_infeasible(t, 0)  # no-op below 1
            assert store.min_feasible_gates(t) == 5

    def test_marks_are_npn_invariant(self, tmp_path):
        """Gate counts are NPN-invariant, so a mark on one orbit member
        must be visible from every other member of the class."""
        probe = NPNTransform(
            perm=(2, 0, 1, 3), input_flips=0b0101, output_flip=True
        )
        t = from_hex("0016", 4)
        with ChainStore(tmp_path / "chains.db") as store:
            store.mark_infeasible(t, 4)
            assert store.min_feasible_gates(probe.apply(t)) == 5

    def test_executor_marks_after_exact_solve(self, tmp_path):
        t = from_hex("0007", 4)
        with ChainStore(tmp_path / "chains.db") as store:
            ex = FaultTolerantExecutor(engines=["stp"], store=store)
            out = ex.run(t, timeout=60)
            assert out.status == "ok"
            n = out.result.num_gates
            assert n > 0
            # exact search at n proves sizes < n empty
            assert store.min_feasible_gates(t) == n

    def test_floored_run_returns_same_optimum(self, tmp_path):
        """A pre-seeded floor skips the empty sizes without changing
        the answer — and the chains still verify."""
        t = from_hex("0007", 4)
        baseline = run_engine("stp", t, 60.0)
        with ChainStore(tmp_path / "chains.db") as store:
            store.mark_infeasible(t, baseline.num_gates - 1)
            ex = FaultTolerantExecutor(engines=["stp"], store=store)
            out = ex.run(t, timeout=60)
            assert out.status == "ok"
            assert out.result.num_gates == baseline.num_gates
            assert_chain_realizes(t, out.result.best)

    def test_run_engine_min_gates_is_a_spec_override(self):
        t = from_hex("0007", 4)
        baseline = run_engine("stp", t, 60.0)
        floored = run_engine(
            "stp", t, 60.0, min_gates=baseline.num_gates
        )
        assert floored.num_gates == baseline.num_gates
        assert len(floored.chains) == len(baseline.chains)
