"""Hierarchical (DSD-first) synthesizer tests."""

import pytest

from repro.core import (
    HierarchicalSynthesizer,
    hierarchical_synthesize,
    synthesize,
)
from repro.truthtable import (
    constant,
    fdsd_suite,
    from_function,
    from_hex,
    majority,
    parity,
    pdsd_suite,
    projection,
)


class TestFullyDSD:
    def test_fdsd_gate_count_is_support_minus_one(self):
        for f in fdsd_suite(6, 6, seed=13):
            result = hierarchical_synthesize(
                f, timeout=60, max_solutions=8
            )
            assert result.num_gates == f.support_size() - 1
            for chain in result.chains:
                assert chain.simulate_output() == f

    def test_fdsd8(self):
        for f in fdsd_suite(8, 2, seed=13):
            result = hierarchical_synthesize(
                f, timeout=60, max_solutions=4
            )
            assert result.num_gates == 7
            assert result.chains[0].simulate_output() == f

    def test_agrees_with_flat_engine(self):
        f = from_hex("8ff8", 4)
        hier = hierarchical_synthesize(f, timeout=60, max_solutions=4)
        flat = synthesize(f, timeout=60, max_solutions=4)
        assert hier.num_gates == flat.num_gates == 3


class TestPartialDSD:
    def test_pdsd_instances(self):
        for f in pdsd_suite(6, 3, seed=13):
            result = hierarchical_synthesize(
                f, timeout=120, max_solutions=8
            )
            for chain in result.chains:
                assert chain.simulate_output() == f

    def test_prime_function_falls_back_to_flat(self):
        result = hierarchical_synthesize(
            majority(3), timeout=120, max_solutions=64
        )
        flat = synthesize(majority(3), timeout=120, max_solutions=64)
        assert result.num_gates == flat.num_gates == 4
        for chain in result.chains:
            assert chain.simulate_output() == majority(3)

    def test_nested_structure(self):
        f = from_function(
            lambda a, b, c, d, e: int((a + b + c >= 2)) ^ (d and e), 5
        )
        result = hierarchical_synthesize(f, timeout=120, max_solutions=8)
        assert result.chains[0].simulate_output() == f
        # maj3 (4 gates) + and (1) + xor (1) = 6 gates
        assert result.num_gates == 6


class TestModes:
    def test_trivial_functions(self):
        assert hierarchical_synthesize(constant(0, 3)).num_gates == 0
        assert hierarchical_synthesize(projection(1, 4)).num_gates == 0

    def test_vacuous_variables(self):
        f = from_function(lambda a, b, c, d: b ^ d, 4)
        result = hierarchical_synthesize(f, timeout=60)
        assert result.num_gates == 1
        assert result.chains[0].simulate_output() == f

    def test_first_solution_mode(self):
        syn = HierarchicalSynthesizer(all_solutions=False)
        result = syn.synthesize(parity(4), timeout=60)
        assert result.num_solutions == 1

    def test_max_solutions_cap(self):
        syn = HierarchicalSynthesizer(max_solutions=6)
        result = syn.synthesize(parity(4), timeout=60)
        assert result.num_solutions <= 6

    def test_solution_set_distinct_and_valid(self):
        f = parity(4)
        result = hierarchical_synthesize(f, timeout=60, max_solutions=32)
        signatures = {c.signature() for c in result.chains}
        assert len(signatures) == result.num_solutions
        for chain in result.chains:
            assert chain.simulate_output() == f
            assert chain.num_gates == result.num_gates

    def test_timeout_propagates(self):
        with pytest.raises(TimeoutError):
            hierarchical_synthesize(
                pdsd_suite(6, 1, seed=99)[0], timeout=0.01
            )
