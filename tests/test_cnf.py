"""CNF container tests."""

import pytest

from repro.sat import CNF


class TestConstruction:
    def test_new_vars(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_vars(3) == [2, 3, 4]
        assert cnf.num_vars == 4

    def test_add_clause(self):
        cnf = CNF(3)
        cnf.add_clause([1, -2])
        cnf.add_clause((3,))
        assert cnf.num_clauses == 2
        assert cnf.clauses == ((1, -2), (3,))

    def test_rejects_bad_literals(self):
        cnf = CNF(2)
        with pytest.raises(ValueError):
            cnf.add_clause([0])
        with pytest.raises(ValueError):
            cnf.add_clause([3])

    def test_extend_and_iter(self):
        cnf = CNF(2)
        cnf.extend([[1], [-2], [1, 2]])
        assert list(cnf) == [(1,), (-2,), (1, 2)]

    def test_negative_vars_rejected(self):
        with pytest.raises(ValueError):
            CNF(-1)


class TestEvaluate:
    def test_mapping_and_sequence(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        assert cnf.evaluate({1: False, 2: True})
        assert cnf.evaluate([False, True])
        assert not cnf.evaluate([True, True])
        assert not cnf.evaluate([False, False])

    def test_empty_cnf_is_true(self):
        assert CNF(2).evaluate([False, False])


class TestDimacs:
    def test_roundtrip(self):
        cnf = CNF(3)
        cnf.add_clause([1, -2])
        cnf.add_clause([2, 3, -1])
        text = cnf.to_dimacs()
        back = CNF.from_dimacs(text)
        assert back.num_vars == 3
        assert back.clauses == cnf.clauses

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 2\n1 -2 0\n2 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.num_clauses == 2

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("1 2 0\n")
        with pytest.raises(ValueError):
            CNF.from_dimacs("p wrong 2 1\n1 0\n")
        with pytest.raises(ValueError):
            CNF.from_dimacs("")

    def test_trailing_clause_without_zero(self):
        cnf = CNF.from_dimacs("p cnf 2 1\n1 -2\n")
        assert cnf.clauses == ((1, -2),)

    def test_repr(self):
        assert "vars=2" in repr(CNF(2))
