"""Tests for the named-operator catalogues."""

import pytest

from repro.truthtable import (
    BINARY_OP_NAMES,
    NONTRIVIAL_BINARY_OPS,
    NORMAL_BINARY_OPS,
    apply_binary_op,
    binary_op_name,
    binary_op_table,
    is_trivial_binary_op,
    majority,
    mux,
    parity,
    threshold,
)


class TestCatalogue:
    def test_all_sixteen_named(self):
        assert sorted(BINARY_OP_NAMES) == list(range(16))

    def test_nontrivial_depend_on_both(self):
        for code in NONTRIVIAL_BINARY_OPS:
            table = binary_op_table(code)
            assert table.depends_on(0) and table.depends_on(1)

    def test_trivial_ops_complement(self):
        trivial = [c for c in range(16) if is_trivial_binary_op(c)]
        assert len(trivial) + len(NONTRIVIAL_BINARY_OPS) == 16
        for code in trivial:
            table = binary_op_table(code)
            assert not (table.depends_on(0) and table.depends_on(1))

    def test_normal_ops_are_normal(self):
        for code in NORMAL_BINARY_OPS:
            assert code & 1 == 0  # output 0 on the all-zero row
            assert code in NONTRIVIAL_BINARY_OPS

    def test_apply_matches_table(self):
        for code in range(16):
            table = binary_op_table(code)
            for a in (0, 1):
                for b in (0, 1):
                    assert apply_binary_op(code, a, b) == table(a, b)

    def test_bad_codes(self):
        with pytest.raises(ValueError):
            binary_op_table(16)
        with pytest.raises(ValueError):
            binary_op_name(-1)

    def test_names_spot_check(self):
        assert binary_op_name(0x8) == "and"
        assert binary_op_name(0x6) == "xor"
        assert binary_op_name(0xE) == "or"
        assert binary_op_name(0x7) == "nand"


class TestNamedFunctions:
    def test_majority3(self):
        assert majority(3).bits == 0xE8

    def test_majority5_counts(self):
        m = majority(5)
        assert m.count_ones() == 16

    def test_majority_rejects_even(self):
        with pytest.raises(ValueError):
            majority(4)

    def test_parity(self):
        assert parity(2).bits == 0x6
        assert parity(3).bits == 0x96
        for n in (2, 3, 4):
            p = parity(n)
            assert p.count_ones() == p.num_rows // 2

    def test_mux(self):
        m = mux(1)  # sel, d0, d1
        for s in (0, 1):
            for d0 in (0, 1):
                for d1 in (0, 1):
                    assert m(s, d0, d1) == (d1 if s else d0)

    def test_threshold(self):
        t = threshold(4, 2)
        for m in range(16):
            assert t.value(m) == (1 if bin(m).count("1") >= 2 else 0)

    def test_threshold_extremes(self):
        assert threshold(3, 0).bits == 0xFF
        assert threshold(3, 4).bits == 0x00
