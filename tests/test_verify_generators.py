"""Stratified fuzz-function generators: determinism and coverage."""

import pytest

from repro.truthtable import TruthTable, constant, projection
from repro.verify.generators import (
    DEFAULT_SEED_FUNCTIONS,
    FunctionGenerator,
    STRATEGIES,
    strategy_names,
)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = FunctionGenerator(seed=42)
        b = FunctionGenerator(seed=42)
        for _ in range(30):
            sa, fa = a.generate()
            sb, fb = b.generate()
            assert sa == sb
            assert fa == fb

    def test_different_seeds_diverge(self):
        a = FunctionGenerator(seed=1)
        b = FunctionGenerator(seed=2)
        draws_a = [f for _, f in (a.generate() for _ in range(30))]
        draws_b = [f for _, f in (b.generate() for _ in range(30))]
        assert draws_a != draws_b

    def test_seed_functions_change_mutation_stream_only(self):
        extra = (TruthTable(0x1234, 4),)
        a = FunctionGenerator(seed=3, strategies=("mutation",))
        b = FunctionGenerator(
            seed=3, strategies=("mutation",), seed_functions=extra
        )
        draws_a = [f for _, f in (a.generate() for _ in range(20))]
        draws_b = [f for _, f in (b.generate() for _ in range(20))]
        assert draws_a != draws_b


class TestCoverage:
    def test_round_robin_covers_every_strategy(self):
        generator = FunctionGenerator(seed=0)
        names = strategy_names()
        seen = [generator.generate()[0] for _ in range(len(names))]
        assert seen == list(names)

    def test_arity_stays_in_requested_range(self):
        generator = FunctionGenerator(seed=7, num_vars=(2, 3))
        for _ in range(60):
            strategy, table = generator.generate()
            if strategy == "mutation":
                # Mutation arity follows the seed pool, not num_vars.
                assert table.num_vars in {
                    s.num_vars for s in DEFAULT_SEED_FUNCTIONS
                }
            else:
                assert table.num_vars in (2, 3)

    def test_strategy_subset_is_respected(self):
        generator = FunctionGenerator(
            seed=0, strategies=("degenerate", "uniform")
        )
        seen = {generator.generate()[0] for _ in range(10)}
        assert seen == {"degenerate", "uniform"}

    def test_degenerate_stays_near_constant(self):
        generator = FunctionGenerator(
            seed=5, num_vars=(3,), strategies=("degenerate",)
        )
        for _ in range(40):
            _, table = generator.generate()
            ones = table.count_ones()
            near_pole = min(ones, table.num_rows - ones) <= 2
            literal = any(
                table in (projection(v, 3), projection(v, 3, True))
                for v in range(3)
            )
            assert near_pole or literal


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            FunctionGenerator(strategies=("nope",))

    def test_empty_arities_rejected(self):
        with pytest.raises(ValueError, match="arity"):
            FunctionGenerator(num_vars=())

    def test_registry_and_names_agree(self):
        assert set(strategy_names()) == set(STRATEGIES)
        assert "mutation" in strategy_names()

    def test_default_seed_functions_are_valid(self):
        assert constant(0, 3) in DEFAULT_SEED_FUNCTIONS
        for table in DEFAULT_SEED_FUNCTIONS:
            assert isinstance(table, TruthTable)
            assert 0 <= table.bits < (1 << table.num_rows)


class TestIteration:
    def test_iterator_protocol(self):
        generator = FunctionGenerator(seed=0)
        stream = iter(generator)
        strategy, table = next(stream)
        assert strategy == strategy_names()[0]
        assert isinstance(table, TruthTable)
