"""The first-class Engine protocol: registry, adapters, dispatch."""

import pytest

from repro.core import SynthesisContext, SynthesisSpec
from repro.engine import (
    Engine,
    EngineCapabilities,
    create_engine,
    engine_capabilities,
    engine_names,
    run_engine,
)
from repro.runtime.errors import EngineUnavailable
from repro.truthtable import from_hex, majority, parity

EXAMPLE7 = from_hex("8ff8", 4)  # the paper's example, optimum 3 gates


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert engine_names() == (
            "bms",
            "cegis",
            "fen",
            "hier",
            "lutexact",
            "stp",
        )

    def test_unknown_engine_raises(self):
        with pytest.raises(EngineUnavailable):
            create_engine("nope")
        with pytest.raises(EngineUnavailable):
            engine_capabilities("nope")

    def test_instances_satisfy_protocol(self):
        for name in engine_names():
            engine = create_engine(name)
            assert isinstance(engine, Engine)
            assert engine.name == name
            assert isinstance(engine.capabilities, EngineCapabilities)

    def test_capabilities(self):
        assert engine_capabilities("stp").all_solutions
        assert engine_capabilities("hier").all_solutions
        assert not engine_capabilities("fen").all_solutions
        assert not engine_capabilities("bms").all_solutions
        assert engine_capabilities("stp").custom_operators
        assert engine_capabilities("cegis").exact
        assert not engine_capabilities("cegis").all_solutions


class TestSynthesizeDispatch:
    @pytest.mark.parametrize(
        "name", ["stp", "hier", "fen", "bms", "lutexact", "cegis"]
    )
    def test_spec_dispatch(self, name):
        engine = create_engine(name)
        spec = SynthesisSpec(function=EXAMPLE7, timeout=120)
        result = engine.synthesize(spec)
        assert result.num_gates == 3
        for chain in result.chains:
            assert chain.simulate_output() == EXAMPLE7

    @pytest.mark.parametrize(
        "name", ["stp", "hier", "fen", "bms", "lutexact", "cegis"]
    )
    def test_run_engine(self, name):
        result = run_engine(name, parity(3), timeout=120)
        assert result.num_gates == 2

    def test_context_threads_through(self):
        ctx = SynthesisContext.create(timeout=120)
        spec = SynthesisSpec(function=EXAMPLE7)
        result = create_engine("stp").synthesize(spec, ctx)
        assert result.stats is ctx.stats
        assert ctx.stats.stage_seconds  # stages were timed

    def test_constructor_kwargs_override_spec(self):
        engine = create_engine("stp", max_solutions=2)
        spec = SynthesisSpec(function=majority(3), timeout=120)
        result = engine.synthesize(spec)
        assert result.num_solutions <= 2

    def test_unknown_kwargs_ignored(self):
        # The fallback-chain contract: one shared kwargs dict must
        # configure heterogeneous engines without blowing up.
        engine = create_engine("fen", max_solutions=64, bogus_knob=1)
        result = engine.synthesize(
            SynthesisSpec(function=parity(3), timeout=120)
        )
        assert result.num_gates == 2


class TestRuntimeShim:
    def test_get_engine_resolves_names(self):
        from repro.runtime.engines import ENGINE_NAMES, get_engine

        assert set(ENGINE_NAMES) == set(engine_names())
        fn = get_engine("stp")
        result = fn(parity(3), 120, max_solutions=8)
        assert result.num_gates == 2
        assert result.num_solutions <= 8

    def test_get_engine_unknown(self):
        from repro.runtime.engines import get_engine

        with pytest.raises(EngineUnavailable):
            get_engine("missing")

    def test_get_engine_is_picklable(self):
        import pickle

        from repro.runtime.engines import get_engine

        fn = pickle.loads(pickle.dumps(get_engine("fen")))
        assert fn(parity(3), 120).num_gates == 2
