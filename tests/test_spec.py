"""Spec, stats and deadline tests."""

import time

import pytest

from repro.core.spec import Deadline, SynthesisSpec, SynthesisStats
from repro.runtime.errors import BudgetExceeded, SynthesisError
from repro.truthtable import parity


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline(None)
        assert not d.expired()
        d.check()  # no raise

    def test_expires(self):
        d = Deadline(0.0)
        assert d.expired()
        with pytest.raises(TimeoutError):
            d.check()

    def test_expiry_is_structured(self):
        d = Deadline(0.0)
        with pytest.raises(BudgetExceeded) as info:
            d.check()
        assert isinstance(info.value, SynthesisError)
        assert isinstance(info.value, TimeoutError)
        assert info.value.budget == 0.0
        assert info.value.elapsed >= 0.0

    def test_elapsed_grows(self):
        d = Deadline(None)
        first = d.elapsed
        time.sleep(0.01)
        assert d.elapsed > first

    def test_remaining(self):
        assert Deadline(None).remaining() is None
        d = Deadline(60.0)
        remaining = d.remaining()
        assert 0.0 < remaining <= 60.0
        assert Deadline(0.0).remaining() == 0.0

    def test_subdeadline_inherits_tighter_bound(self):
        parent = Deadline(60.0)
        child = parent.subdeadline(5.0)
        assert child.remaining() <= 5.0
        # the parent bound wins when it is tighter
        tight = Deadline(0.0)
        assert tight.subdeadline(10.0).expired()
        # unlimited parent passes the child limit through
        free = Deadline(None)
        assert free.subdeadline(2.0).remaining() <= 2.0
        assert free.subdeadline(None).remaining() is None

    def test_subdeadline_nests(self):
        parent = Deadline(60.0)
        grandchild = parent.subdeadline(10.0).subdeadline(None)
        assert grandchild.remaining() <= 10.0
        with pytest.raises(BudgetExceeded):
            parent.subdeadline(0.0).check()

    def test_check_stride_skips_clock_polls(self):
        d = Deadline(0.0)
        assert d.expired()
        # With a stride of 8 the first seven polls are free even
        # though the budget is long gone ...
        for _ in range(7):
            d.check(every=8)
        # ... and the eighth call samples the clock and raises.
        with pytest.raises(BudgetExceeded):
            d.check(every=8)

    def test_check_stride_one_always_polls(self):
        d = Deadline(0.0)
        with pytest.raises(BudgetExceeded):
            d.check(every=1)


class TestSpec:
    def test_defaults(self):
        spec = SynthesisSpec(function=parity(3))
        assert spec.all_solutions
        assert spec.verify
        assert spec.effective_max_gates() >= 7

    def test_explicit_max_gates(self):
        spec = SynthesisSpec(function=parity(3), max_gates=5)
        assert spec.effective_max_gates() == 5

    def test_rejects_bad_operator(self):
        with pytest.raises(ValueError):
            SynthesisSpec(function=parity(3), operators=(0x8, 16))


class TestStats:
    def test_merge(self):
        a = SynthesisStats(fences_examined=1, dags_examined=2)
        b = SynthesisStats(fences_examined=3, candidates_generated=4)
        a.merge(b)
        assert a.fences_examined == 4
        assert a.dags_examined == 2
        assert a.candidates_generated == 4
