"""Spec, stats and deadline tests."""

import time

import pytest

from repro.core.spec import Deadline, SynthesisSpec, SynthesisStats
from repro.truthtable import from_hex, parity


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline(None)
        assert not d.expired()
        d.check()  # no raise

    def test_expires(self):
        d = Deadline(0.0)
        assert d.expired()
        with pytest.raises(TimeoutError):
            d.check()

    def test_elapsed_grows(self):
        d = Deadline(None)
        first = d.elapsed
        time.sleep(0.01)
        assert d.elapsed > first


class TestSpec:
    def test_defaults(self):
        spec = SynthesisSpec(function=parity(3))
        assert spec.all_solutions
        assert spec.verify
        assert spec.effective_max_gates() >= 7

    def test_explicit_max_gates(self):
        spec = SynthesisSpec(function=parity(3), max_gates=5)
        assert spec.effective_max_gates() == 5

    def test_rejects_bad_operator(self):
        with pytest.raises(ValueError):
            SynthesisSpec(function=parity(3), operators=(0x8, 16))


class TestStats:
    def test_merge(self):
        a = SynthesisStats(fences_examined=1, dags_examined=2)
        b = SynthesisStats(fences_examined=3, candidates_generated=4)
        a.merge(b)
        assert a.fences_examined == 4
        assert a.dags_examined == 2
        assert a.candidates_generated == 4
