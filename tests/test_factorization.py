"""STP matrix-factorization engine tests (Section III-B)."""


from hypothesis import given, settings, strategies as st

from repro.core.factorization import (
    FactorizationEngine,
    is_complement_closed,
)
from repro.truthtable import (
    NONTRIVIAL_BINARY_OPS,
    TruthTable,
    apply_binary_op,
    from_function,
    from_hex,
    majority,
    parity,
    projection,
)


def make_engine(num_vars, **kwargs):
    return FactorizationEngine(
        num_vars, NONTRIVIAL_BINARY_OPS, **kwargs
    )


def check_factorization(fac, g_v, num_vars):
    """φ(g_a, g_b) must reproduce g_v on every assignment."""
    for m in range(1 << num_vars):
        a = fac.g_a.value(m)
        b = fac.g_b.value(m)
        assert apply_binary_op(fac.op, a, b) == g_v.value(m)


class TestComplementClosure:
    def test_nontrivial_set_is_closed(self):
        assert is_complement_closed(NONTRIVIAL_BINARY_OPS)

    def test_and_or_only_not_closed(self):
        assert not is_complement_closed((0x8, 0xE))

    def test_xor_xnor_closed(self):
        assert is_complement_closed((0x6, 0x9))


class TestDisjointFactorization:
    def test_example7_top_factorization(self):
        """0x8ff8 over cones {a,b} and {c,d} factors (Example 7)."""
        f = from_hex("8ff8", 4)
        engine = make_engine(4)
        facs = engine.decompositions(
            f, (2, 3), (0, 1), canonical=False
        )
        assert facs
        for fac in facs:
            check_factorization(fac, f, 4)
        # the paper's first candidate: top OR of and(a,b) and xor(c,d)
        shapes = {
            (fac.op, fac.g_a.bits, fac.g_b.bits) for fac in facs
        }
        and_ab = from_function(lambda a, b, c, d: a and b, 4).bits
        xor_cd = from_function(lambda a, b, c, d: c ^ d, 4).bits
        assert any(
            a == xor_cd and b == and_ab for (_, a, b) in shapes
        )

    def test_non_factorable_three_blocks(self):
        """Example 5.2: three distinct quartering parts — no factors."""
        # f(a,b,c,d) with three distinct cofactor blocks over (c,d).
        f = from_function(
            lambda a, b, c, d: (
                (a and b) if (c, d) == (0, 0)
                else (a or b) if (c, d) == (1, 0)
                else (a ^ b)
            ),
            4,
        )
        engine = make_engine(4)
        assert engine.decompositions(f, (2, 3), (0, 1)) == ()

    def test_support_leak_rejected(self):
        f = from_hex("8ff8", 4)
        engine = make_engine(4)
        assert engine.decompositions(f, (0, 1), (1, 2)) == ()

    @given(st.integers(0, 0xF), st.integers(0, 0xF), st.integers(0, 9))
    @settings(max_examples=40, deadline=None)
    def test_composed_functions_factor(self, ga_bits, gb_bits, op_index):
        """φ(g_a(x0,x1), g_b(x2,x3)) must always factor back."""
        code = NONTRIVIAL_BINARY_OPS[op_index]
        g_a = TruthTable(ga_bits, 2)
        g_b = TruthTable(gb_bits, 2)
        if not (g_a.depends_on(0) and g_a.depends_on(1)):
            return
        if not (g_b.depends_on(0) and g_b.depends_on(1)):
            return
        f_bits = 0
        for m in range(16):
            a = g_a.value(m & 3)
            b = g_b.value(m >> 2)
            if apply_binary_op(code, a, b):
                f_bits |= 1 << m
        f = TruthTable(f_bits, 4)
        engine = make_engine(4)
        facs = engine.decompositions(f, (0, 1), (2, 3), canonical=False)
        assert facs
        for fac in facs:
            check_factorization(fac, f, 4)
        # The original pair must be among the factorizations.
        assert any(
            fac.op == code
            and fac.g_a.bits == g_a.extend(4).bits
            and fac.g_b
            == TruthTable(
                sum(
                    1 << m
                    for m in range(16)
                    if g_b.value(m >> 2)
                ),
                4,
            )
            for fac in facs
        )


class TestSharedFactorization:
    def test_maj3_shared_cones(self):
        """MAJ3 = and-or over overlapping cones (power-reduce case)."""
        m = majority(3)
        engine = make_engine(3)
        facs = engine.decompositions(m, (0, 1), (1, 2), canonical=False)
        for fac in facs:
            check_factorization(fac, m, 3)

    def test_xor_with_shared_variable(self):
        f = from_function(lambda a, b, c: (a and b) ^ (a and c), 3)
        engine = make_engine(3)
        facs = engine.decompositions(f, (0, 1), (0, 2), canonical=False)
        assert facs
        for fac in facs:
            check_factorization(fac, f, 3)

    def test_pinned_both_sides(self):
        f = from_function(lambda a, b: a and b, 2)
        engine = make_engine(2)
        facs = engine.decompositions(
            f, (0,), (1,),
            fixed_a=projection(0, 2),
            fixed_b=projection(1, 2),
        )
        assert any(fac.op == 0x8 for fac in facs)

    def test_pinned_one_side(self):
        f = parity(3)
        engine = make_engine(3)
        facs = engine.decompositions(
            f, (0,), (1, 2), fixed_a=projection(0, 3)
        )
        assert facs
        for fac in facs:
            check_factorization(fac, f, 3)

    def test_pinned_inconsistent(self):
        f = from_function(lambda a, b: a and b, 2)
        engine = make_engine(2)
        # A fixed child outside its cone is rejected.
        assert (
            engine.decompositions(
                f, (0,), (1,), fixed_a=projection(1, 2)
            )
            == ()
        )


class TestCanonicalMode:
    def test_canonical_children_are_normal(self):
        f = from_hex("8ff8", 4)
        engine = make_engine(4)
        for fac in engine.decompositions(f, (0, 1), (2, 3)):
            assert fac.g_a.value(0) == 0
            assert fac.g_b.value(0) == 0

    def test_canonical_subset_of_full(self):
        f = from_hex("8ff8", 4)
        engine = make_engine(4)
        canonical = set(
            (fac.op, fac.g_a.bits, fac.g_b.bits)
            for fac in engine.decompositions(f, (0, 1), (2, 3))
        )
        full = set(
            (fac.op, fac.g_a.bits, fac.g_b.bits)
            for fac in engine.decompositions(
                f, (0, 1), (2, 3), canonical=False
            )
        )
        assert canonical <= full
        assert len(full) >= 2 * len(canonical)

    @given(st.integers(0, 0xFF))
    @settings(max_examples=30, deadline=None)
    def test_feasibility_agrees(self, bits):
        """Canonical mode is feasibility-equivalent to full mode."""
        f = TruthTable(bits, 3)
        engine = make_engine(3)
        canonical = engine.decompositions(f, (0, 1), (1, 2))
        full = engine.decompositions(
            f, (0, 1), (1, 2), canonical=False
        )
        assert bool(canonical) == bool(full)


class TestPrunes:
    def test_constant_children_pruned(self):
        engine = make_engine(3)
        assert engine.prunes_enabled
        f = parity(3)
        for fac in engine.decompositions(
            f, (0, 1), (1, 2), canonical=False
        ):
            assert not fac.g_a.is_constant()
            assert not fac.g_b.is_constant()
            assert fac.g_a.support_size() > 1
            assert fac.g_b.support_size() > 1

    def test_caching_returns_same_object(self):
        engine = make_engine(3)
        f = parity(3)
        first = engine.decompositions(f, (0, 1), (1, 2))
        second = engine.decompositions(f, (0, 1), (1, 2))
        assert first is second
