"""Chain export tests: expressions and Verilog."""

import random
import re

import pytest

from repro.chain import BooleanChain, chain_to_expression, chain_to_verilog
from repro.stp.expression import expression_to_truth_table

from tests.helpers import random_chain


def expression_equals_chain(chain):
    expr = chain_to_expression(chain)
    n = chain.num_inputs
    order = [f"x{i}" for i in range(n)]
    # expression_to_truth_table maps table var i to order[n-1-i];
    # request the reversed order so table var i == x_i.
    table = expression_to_truth_table(expr, list(reversed(order)))
    return table == chain.simulate_output()


class TestExpressionExport:
    def test_example7(self):
        chain = BooleanChain(4)
        s_and = chain.add_gate(0x8, (0, 1))
        s_xor = chain.add_gate(0x6, (2, 3))
        chain.set_output(chain.add_gate(0xE, (s_and, s_xor)))
        assert expression_equals_chain(chain)
        text = str(chain_to_expression(chain))
        assert "x0" in text and "^" in text

    def test_random_chains(self):
        rnd = random.Random(11)
        for _ in range(25):
            chain = random_chain(rnd, num_inputs=4, num_gates=4)
            assert expression_equals_chain(chain)

    def test_const_output(self):
        chain = BooleanChain(2)
        chain.set_output(BooleanChain.CONST0, True)
        expr = chain_to_expression(chain)
        assert expr.evaluate({}) == 1

    def test_rejects_wide_gates(self):
        chain = BooleanChain(3)
        chain.add_gate(0xE8, (0, 1, 2))
        chain.set_output(3)
        with pytest.raises(ValueError):
            chain_to_expression(chain)


class TestVerilogExport:
    def _eval_verilog(self, text, chain):
        """Poor man's Verilog interpreter for assign netlists."""
        assigns = {}
        for line in text.splitlines():
            match = re.match(r"\s*assign (\w+) = (.+?);", line)
            if match:
                assigns[match.group(1)] = match.group(2)

        def evaluate(name, env):
            if name in env:
                return env[name]
            expr = assigns[name]
            expr = expr.split("//")[0]
            expr = expr.replace("1'b0", "0").replace("1'b1", "1")
            expr = re.sub(
                r"[wxy]\d+", lambda m: str(evaluate(m.group(0), env)), expr
            )
            # Python's bitwise operators share Verilog's semantics once
            # the result is masked to one bit.
            return eval(expr) & 1

        n = chain.num_inputs
        for m in range(1 << n):
            env = {f"x{i}": (m >> i) & 1 for i in range(n)}
            got = evaluate("y0", dict(env))
            assert got == chain.simulate_output().value(m), (m, text)

    def test_example7_verilog(self):
        chain = BooleanChain(4)
        s_and = chain.add_gate(0x8, (0, 1))
        s_xor = chain.add_gate(0x6, (2, 3))
        chain.set_output(chain.add_gate(0xE, (s_and, s_xor)))
        text = chain_to_verilog(chain, "ex7")
        assert "module ex7" in text and "endmodule" in text
        self._eval_verilog(text, chain)

    def test_random_chains_verilog(self):
        rnd = random.Random(13)
        for _ in range(10):
            chain = random_chain(rnd, num_inputs=3, num_gates=4)
            self._eval_verilog(chain_to_verilog(chain), chain)

    def test_complemented_and_const_outputs(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x8, (0, 1))
        chain.set_output(s, True)
        text = chain_to_verilog(chain)
        assert "~w2" in text
