"""NPN classification tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.truthtable import (
    NPNTransform,
    NUM_NPN4_CLASSES,
    TruthTable,
    canonicalize,
    exact_canonical,
    npn_classes,
    semi_canonical,
)

table4 = st.builds(TruthTable, st.integers(0, 0xFFFF), st.just(4))
table3 = st.builds(TruthTable, st.integers(0, 0xFF), st.just(3))


def random_transform(rnd, n):
    perm = list(range(n))
    rnd.shuffle(perm)
    return NPNTransform(
        tuple(perm), rnd.getrandbits(n), bool(rnd.getrandbits(1))
    )


class TestTransform:
    def test_identity(self):
        t = TruthTable(0xCAFE, 4)
        assert NPNTransform.identity(4).apply(t) == t

    @given(table4, st.randoms())
    @settings(max_examples=40)
    def test_inverse_roundtrip(self, t, rnd):
        transform = random_transform(rnd, 4)
        assert transform.inverse().apply(transform.apply(t)) == t

    def test_output_flip(self):
        t = TruthTable(0xCAFE, 4)
        flip = NPNTransform(tuple(range(4)), 0, True)
        assert flip.apply(t) == ~t

    def test_input_flip(self):
        t = TruthTable(0xCAFE, 4)
        flip = NPNTransform(tuple(range(4)), 0b0001, False)
        assert flip.apply(t) == t.flip_var(0)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            NPNTransform.identity(3).apply(TruthTable(0xCAFE, 4))


class TestExactCanonical:
    @given(table4, st.randoms())
    @settings(max_examples=25, deadline=None)
    def test_orbit_invariance(self, t, rnd):
        """All orbit members share the canonical representative."""
        rep, _ = exact_canonical(t)
        mate = random_transform(rnd, 4).apply(t)
        rep2, _ = exact_canonical(mate)
        assert rep == rep2

    @given(table3)
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, t):
        rep, _ = exact_canonical(t)
        rep2, _ = exact_canonical(rep)
        assert rep == rep2

    @given(table4)
    @settings(max_examples=25, deadline=None)
    def test_transform_witness(self, t):
        rep, transform = exact_canonical(t)
        assert transform.apply(t) == rep
        assert transform.inverse().apply(rep) == t

    @given(table4)
    @settings(max_examples=25, deadline=None)
    def test_minimality(self, t):
        rep, _ = exact_canonical(t)
        assert rep.bits <= t.bits
        assert rep.bits <= (~t).bits

    def test_rejects_large(self):
        with pytest.raises(ValueError):
            exact_canonical(TruthTable(0, 5))


class TestSemiCanonical:
    @given(st.integers(0, (1 << 64) - 1), st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_npn_equivalent(self, bits, rnd):
        t = TruthTable(bits, 6)
        rep, transform = semi_canonical(t)
        assert transform.apply(t) == rep

    def test_canonicalize_dispatch(self):
        small = TruthTable(0xCAFE, 4)
        rep_small, _ = canonicalize(small)
        assert rep_small == exact_canonical(small)[0]
        big = TruthTable(0xDEADBEEF, 5)
        rep_big, tr = canonicalize(big)
        assert tr.apply(big) == rep_big


class TestClassEnumeration:
    def test_npn2_classes(self):
        reps = npn_classes(2)
        assert len(reps) == 4  # const, one-var, and-type, xor

    def test_npn3_classes(self):
        assert len(npn_classes(3)) == 14

    def test_rejects_large(self):
        with pytest.raises(ValueError):
            npn_classes(5)

    def test_npn4_embedded_list_is_canonical_sample(self):
        """Spot-check the embedded NPN4 list in bench.suites: every
        entry must be its own exact canonical representative."""
        from repro.bench.suites import npn4_suite

        suite = npn4_suite()
        assert len(suite) == NUM_NPN4_CLASSES
        rnd = random.Random(1)
        for t in rnd.sample(suite, 12):
            rep, _ = exact_canonical(t)
            assert rep == t

    @pytest.mark.slow
    def test_npn4_full_enumeration(self):
        """Full recomputation of the 222 classes (a few seconds)."""
        from repro.bench.suites import npn4_suite

        reps = npn_classes(4)
        assert len(reps) == NUM_NPN4_CLASSES
        assert reps == npn4_suite()
