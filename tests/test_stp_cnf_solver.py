"""STP-on-CNF AllSAT solver tests (the paper's reference [14] lineage)."""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.sat import CNF, all_models
from repro.stp import STPCnfSolver, stp_all_sat_cnf


def brute(cnf):
    out = set()
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        if cnf.evaluate(bits):
            out.add(bits)
    return out


def random_cnf(rnd, n, m):
    cnf = CNF(n)
    for _ in range(m):
        width = rnd.randint(1, 3)
        cnf.add_clause(
            [
                (v if rnd.random() < 0.5 else -v)
                for v in (rnd.randint(1, n) for _ in range(width))
            ]
        )
    return cnf


class TestBasics:
    def test_simple_sat(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        solver = STPCnfSolver(cnf)
        assert solver.is_satisfiable()
        models = solver.all_solutions()
        assert {(m[1], m[2]) for m in models} == {(False, True)}

    def test_unsat(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        solver = STPCnfSolver(cnf)
        assert not solver.is_satisfiable()
        assert solver.all_solutions() == []
        assert solver.count_solutions() == 0

    def test_empty_cnf_vacuously_true(self):
        cnf = CNF(2)
        solver = STPCnfSolver(cnf)
        assert solver.is_satisfiable()
        assert solver.count_solutions() == 4  # both vars free

    def test_free_variables_enumerated(self):
        cnf = CNF(3)
        cnf.add_clause([2])  # vars 1 and 3 unconstrained
        solver = STPCnfSolver(cnf)
        assert solver.count_solutions() == 4
        models = solver.all_solutions()
        assert len(models) == 4
        assert all(m[2] for m in models)


class TestAgainstOracles:
    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(2, 7)
        cnf = random_cnf(rnd, n, rnd.randint(1, 3 * n))
        got = {
            tuple(m[v] for v in range(1, n + 1))
            for m in stp_all_sat_cnf(cnf)
        }
        assert got == brute(cnf)

    @given(st.integers(0, 10**9))
    @settings(max_examples=15, deadline=None)
    def test_matches_cdcl_allsat(self, seed):
        """Two independent AllSAT engines must agree."""
        rnd = random.Random(seed)
        n = rnd.randint(2, 6)
        cnf = random_cnf(rnd, n, rnd.randint(1, 3 * n))
        stp_models = {
            tuple(m[v] for v in range(1, n + 1))
            for m in stp_all_sat_cnf(cnf)
        }
        cdcl_models = {
            tuple(m[v] for v in range(1, n + 1))
            for m in all_models(cnf)
        }
        assert stp_models == cdcl_models

    def test_count_matches_enumeration(self):
        rnd = random.Random(5)
        cnf = random_cnf(rnd, 6, 10)
        solver = STPCnfSolver(cnf)
        assert solver.count_solutions() == len(solver.all_solutions())
