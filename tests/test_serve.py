"""Tests for the synthesis-as-a-service layer (:mod:`repro.serve`).

Covers the ISSUE-mandated serving behaviours end to end:

* request parsing and validation;
* token-bucket rate limiting (unit level and HTTP 429);
* **coalescing correctness** — K concurrent requests for distinct
  orbit members of one NPN class cost exactly one engine run, and
  every caller still receives a chain realizing *its own* function;
* the degraded path — every exact lane faulted via a wildcard crash
  plan, a pre-seeded upper-bound store row served with
  ``exact: false`` and HTTP 203 (distinct from hard failures);
* graceful drain — in-flight requests finish, new synthesis work is
  rejected 503, and a real ``repro-serve`` process exits 0 on
  SIGTERM.

No pytest-asyncio in the environment, so async scenarios run under
``asyncio.run`` inside plain test functions.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys

import pytest

import repro
from repro.core.circuit_sat import verify_chain_outputs
from repro.engine import run_engine
from repro.parallel.scheduler import BatchScheduler
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.serve.metrics import LatencyWindow, ServingMetrics
from repro.serve.ratelimit import RateLimiter, TokenBucket
from repro.serve.server import STATUS_HTTP, SynthesisServer
from repro.serve.service import SynthesisRequest, SynthesisService
from repro.store import ChainStore
from repro.store.serialize import chain_from_record
from repro.truthtable import from_hex
from repro.truthtable.npn import NPNTransform

from .helpers import assert_chain_realizes

# Four orbit members of 0xe8's NPN class (majority-of-3): input
# permutations/negations and an output negation of one function.
_CLASS_REP = from_hex("e8", 3)
_ORBIT = [
    _CLASS_REP,
    NPNTransform((1, 2, 0), 0b010, False).apply(_CLASS_REP),
    NPNTransform((2, 0, 1), 0b101, True).apply(_CLASS_REP),
    NPNTransform((0, 2, 1), 0b111, True).apply(_CLASS_REP),
]


def _service_stack(
    *,
    jobs=2,
    engines=("fen",),
    fault_plan=None,
    store=None,
    **kwargs,
):
    """A started scheduler + service; caller must shut the pool down."""
    scheduler = BatchScheduler({}, jobs, queue_depth=0).start()
    service = SynthesisService(
        scheduler,
        store=store,
        engines=engines,
        fault_plan=fault_plan,
        default_timeout=30.0,
        **kwargs,
    )
    return scheduler, service


async def _post(host, port, path, payload, headers=None):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode()
        head = (
            f"POST {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n"
        )
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), 60.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), json.loads(body), head


async def _get(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: t\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), 30.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return int(raw.split(b" ", 2)[1]), json.loads(
        raw.partition(b"\r\n\r\n")[2]
    )


class TestRequestParsing:
    def test_single_output_roundtrip(self):
        request = SynthesisRequest.from_payload(
            {"function": "e8", "vars": 3, "timeout": 5, "max_chains": 2}
        )
        assert request.functions == (from_hex("e8", 3),)
        assert request.timeout == 5.0
        assert request.max_chains == 2
        assert not request.is_multi

    def test_multi_output(self):
        request = SynthesisRequest.from_payload(
            {"functions": ["e8", "96"], "vars": 3}
        )
        assert request.is_multi
        assert len(request.functions) == 2

    @pytest.mark.parametrize(
        "payload",
        [
            {"vars": 3},
            {"function": "e8"},
            {"function": "zz", "vars": 3},
            {"function": "e8", "vars": 0},
            {"function": "e8", "vars": 99},
            {"function": "e8", "vars": 3, "timeout": -1},
            {"function": "e8", "vars": 3, "timeout": "fast"},
            {"function": "e8", "vars": 3, "max_chains": 0},
            {"functions": [], "vars": 3},
            {"functions": "e8", "vars": 3},
            {"functions": [5], "vars": 3},
            {"function": "e8", "vars": True},
            "not an object",
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            SynthesisRequest.from_payload(payload)


class TestRateLimiting:
    def test_token_bucket_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, now=clock[0])
        assert bucket.allow(clock[0])
        assert bucket.allow(clock[0])
        assert not bucket.allow(clock[0])
        assert bucket.retry_after(clock[0]) == pytest.approx(1.0)
        clock[0] = 1.5
        assert bucket.allow(clock[0])
        assert not bucket.allow(clock[0])

    def test_limiter_tracks_clients_independently(self):
        clock = [0.0]
        limiter = RateLimiter(1.0, 1.0, clock=lambda: clock[0])
        assert limiter.allow("a")
        assert not limiter.allow("a")
        assert limiter.allow("b")
        clock[0] += 2.0
        assert limiter.allow("a")

    def test_disabled_limiter_always_allows(self):
        limiter = RateLimiter(None)
        assert all(limiter.allow("x") for _ in range(1000))

    def test_reap_bounds_client_table(self):
        clock = [0.0]
        limiter = RateLimiter(
            10.0, 5.0, max_clients=4, clock=lambda: clock[0]
        )
        for index in range(4):
            assert limiter.allow(f"c{index}")
        clock[0] += 10.0  # every bucket is full again -> reapable
        assert limiter.allow("fresh")
        assert len(limiter._buckets) <= 4


class TestServingMetrics:
    def test_latency_percentiles(self):
        window = LatencyWindow(maxlen=100)
        for ms in range(1, 101):
            window.observe(ms / 1000.0)
        assert window.percentile(50) == pytest.approx(0.050)
        assert window.percentile(99) == pytest.approx(0.099)
        assert window.count == 100

    def test_coalesce_and_hit_ratio(self):
        metrics = ServingMetrics()
        metrics.requests = 10
        metrics.coalesced = 4
        metrics.store_hits = 3
        record = metrics.to_record(queue_depth=2, inflight_classes=1)
        assert record["coalesce_ratio"] == pytest.approx(0.4)
        assert record["hit_ratio"] == pytest.approx(0.3)
        assert record["queue_depth"] == 2
        assert record["inflight_classes"] == 1


class TestCoalescing:
    def test_concurrent_orbit_requests_cost_one_engine_run(self):
        """K concurrent same-class requests -> 1 synthesis, K correct
        per-caller chains (each through its own inverse transform)."""
        scheduler, service = _service_stack(engines=("fen",))
        members = [_ORBIT[i % len(_ORBIT)] for i in range(8)]

        async def drive():
            return await asyncio.gather(
                *(
                    service.synthesize(
                        SynthesisRequest(functions=(member,))
                    )
                    for member in members
                )
            )

        try:
            responses = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)

        assert service.metrics.engine_runs == 1
        assert service.metrics.coalesced == len(members) - 1
        assert sum(1 for r in responses if r.coalesced) == len(members) - 1
        for member, response in zip(members, responses):
            assert response.status == "ok"
            assert response.exact is True
            assert response.chains
            assert_chain_realizes(member, response.chains[0])

    def test_distinct_classes_do_not_coalesce(self):
        scheduler, service = _service_stack(engines=("fen",))
        tables = [from_hex("e8", 3), from_hex("16", 3)]

        async def drive():
            return await asyncio.gather(
                *(
                    service.synthesize(SynthesisRequest(functions=(t,)))
                    for t in tables
                )
            )

        try:
            responses = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert service.metrics.engine_runs == 2
        assert service.metrics.coalesced == 0
        for table, response in zip(tables, responses):
            assert response.status == "ok"
            assert_chain_realizes(table, response.chains[0])

    def test_multi_output_request_verified_jointly(self):
        scheduler, service = _service_stack(engines=("fen",))
        functions = (from_hex("e8", 3), from_hex("96", 3))

        async def drive():
            return await service.synthesize(
                SynthesisRequest(functions=functions)
            )

        try:
            response = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert response.status == "ok"
        assert response.chains
        assert verify_chain_outputs(response.chains[0], functions)

    def test_warm_store_hit_skips_the_pool(self, tmp_path):
        store = ChainStore(str(tmp_path / "chains.db"))
        result = run_engine("fen", _CLASS_REP, 30.0)
        store.put(_CLASS_REP, result, engine="fen")
        scheduler, service = _service_stack(store=store)
        member = _ORBIT[2]

        async def drive():
            return await service.synthesize(
                SynthesisRequest(functions=(member,))
            )

        try:
            response = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
            store.close()
        assert response.status == "ok"
        assert response.source == "store"
        assert service.metrics.store_hits == 1
        assert service.metrics.engine_runs == 0
        assert_chain_realizes(member, response.chains[0])


class TestDegradedPath:
    def _faulted_service(self, tmp_path):
        """Every exact lane crashes; the store holds an upper bound."""
        store = ChainStore(str(tmp_path / "chains.db"))
        result = run_engine("fen", _CLASS_REP, 30.0)
        assert store.put(
            _CLASS_REP, result, engine="bms", exact=False
        )
        plan = FaultPlan(
            {
                FaultPlan.WILDCARD: FaultSpec(
                    kind="crash", times=None
                )
            }
        )
        scheduler, service = _service_stack(
            engines=("stp", "fen"), fault_plan=plan, store=store
        )
        return scheduler, service, store

    def test_degraded_serves_upper_bound_not_exact(self, tmp_path):
        scheduler, service, store = self._faulted_service(tmp_path)
        member = _ORBIT[1]

        async def drive():
            return await service.synthesize(
                SynthesisRequest(functions=(member,))
            )

        try:
            response = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
            store.close()
        assert response.status == "degraded"
        assert response.exact is False
        assert response.chains
        assert_chain_realizes(member, response.chains[0])
        assert service.metrics.degraded == 1

    def test_degraded_http_status_distinct_from_failures(self, tmp_path):
        assert STATUS_HTTP["degraded"] == 203
        assert STATUS_HTTP["degraded"] not in (
            STATUS_HTTP["crash"],
            STATUS_HTTP["timeout"],
            STATUS_HTTP["unavailable"],
        )
        scheduler, service, store = self._faulted_service(tmp_path)
        server = SynthesisServer(service)

        async def drive():
            await server.start()
            host, port = server.address
            status, body, _ = await _post(
                host,
                port,
                "/synthesize",
                {"function": _ORBIT[1].to_hex(), "vars": 3},
            )
            await server.shutdown(drain_timeout=10.0)
            return status, body

        try:
            status, body = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
            store.close()
        assert status == 203
        assert body["exact"] is False
        assert body["status"] == "degraded"
        chain = chain_from_record(body["chains"][0])
        assert_chain_realizes(_ORBIT[1], chain)

    def test_hard_failure_without_stored_bound(self):
        plan = FaultPlan(
            {FaultPlan.WILDCARD: FaultSpec(kind="crash", times=None)}
        )
        scheduler, service = _service_stack(
            engines=("fen",), fault_plan=plan
        )

        async def drive():
            return await service.synthesize(
                SynthesisRequest(functions=(_CLASS_REP,))
            )

        try:
            response = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert response.status == "crash"
        assert not response.answered
        assert service.metrics.failures == 1


class TestHTTPServer:
    def test_rate_limit_429_with_retry_after(self):
        scheduler, service = _service_stack()
        limiter = RateLimiter(0.001, 2.0)
        server = SynthesisServer(service, rate_limiter=limiter)

        async def drive():
            await server.start()
            host, port = server.address
            results = []
            for _ in range(4):
                results.append(
                    await _post(
                        host,
                        port,
                        "/synthesize",
                        {"function": "e8", "vars": 3},
                        headers={"X-Client": "hammer"},
                    )
                )
            await server.shutdown(drain_timeout=10.0)
            return results

        try:
            results = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        codes = [status for status, _, _ in results]
        assert codes[:2] == [200, 200]
        assert codes[2:] == [429, 429]
        assert service.metrics.rate_limited == 2
        assert b"retry-after" in results[2][2].lower()

    def test_metrics_endpoint_merges_all_counter_families(self):
        scheduler, service = _service_stack()
        server = SynthesisServer(service)

        async def drive():
            await server.start()
            host, port = server.address
            await _post(
                host, port, "/synthesize", {"function": "e8", "vars": 3}
            )
            status, snapshot = await _get(host, port, "/metrics")
            await server.shutdown(drain_timeout=10.0)
            return status, snapshot

        try:
            status, snapshot = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert status == 200
        assert snapshot["serving"]["requests"] == 1
        assert snapshot["serving"]["latency_ms"]["p50"] >= 0
        assert "kernels" in snapshot
        assert "synthesis" in snapshot  # aggregated engine-run stats
        assert "scheduler" in snapshot
        assert snapshot["scheduler"]["jobs"] == 2
        assert "health" in snapshot

    def test_malformed_http_and_unknown_routes(self):
        scheduler, service = _service_stack()
        server = SynthesisServer(service)

        async def drive():
            await server.start()
            host, port = server.address
            status404, _ = await _get(host, port, "/nope")
            status405, _, _ = await _post(host, port, "/metrics", {})
            status400, body, _ = await _post(
                host, port, "/synthesize", {"function": 3, "vars": 3}
            )
            await server.shutdown(drain_timeout=10.0)
            return status404, status405, status400, body

        try:
            status404, status405, status400, body = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert status404 == 404
        assert status405 == 405
        assert status400 == 400
        assert service.metrics.bad_requests == 1


class TestGracefulDrain:
    def test_drain_rejects_new_work_but_finishes_inflight(self):
        scheduler, service = _service_stack(engines=("fen",))
        server = SynthesisServer(service)

        async def drive():
            await server.start()
            host, port = server.address
            inflight = asyncio.ensure_future(
                _post(
                    host,
                    port,
                    "/synthesize",
                    {"function": "8ff8", "vars": 4},
                )
            )
            # Let the in-flight request reach the service before
            # flipping the drain flag.
            await asyncio.sleep(0.05)
            server.begin_drain()
            status503, body503, _ = await _post(
                host, port, "/synthesize", {"function": "e8", "vars": 3}
            )
            health_status, health = await _get(host, port, "/healthz")
            status_inflight, body_inflight, _ = await inflight
            await server.shutdown(drain_timeout=30.0)
            return (
                status503,
                body503,
                health,
                status_inflight,
                body_inflight,
            )

        try:
            (
                status503,
                body503,
                health,
                status_inflight,
                body_inflight,
            ) = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert status503 == 503
        assert body503["error"] == "draining"
        assert health["status"] == "draining"
        assert status_inflight == 200
        chain = chain_from_record(body_inflight["chains"][0])
        assert_chain_realizes(from_hex("8ff8", 4), chain)
        assert service.metrics.draining_rejected == 1

    def test_drain_with_accept_pause_closes_listener(self):
        """pause_accept drain ejects the listener: new connections are
        refused (reuseport siblings would absorb them) instead of
        being answered 503."""
        scheduler, service = _service_stack()
        server = SynthesisServer(service, pause_accept_on_drain=True)

        async def drive():
            await server.start()
            host, port = server.address
            server.begin_drain()
            await asyncio.sleep(0.05)
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except ConnectionError:
                refused = True
            else:
                # Accept may race the close; either refusal or an
                # immediate EOF counts as "not serving".
                refused = (await reader.read()) == b""
                writer.close()
            await server.shutdown(drain_timeout=5.0)
            return refused

        try:
            refused = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert refused

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """A real repro-serve process exits 0 on SIGTERM."""
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve.cli",
                "--port",
                "0",
                "--jobs",
                "1",
                "--store",
                str(tmp_path / "chains.db"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("listening on ")
            host, port = banner.rsplit(" ", 1)[1].rsplit(":", 1)

            async def one_request():
                status, body, _ = await _post(
                    host, int(port), "/synthesize",
                    {"function": "e8", "vars": 3},
                )
                return status

            assert asyncio.run(one_request()) == 200
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert rc == 0
        stderr = proc.stderr.read()
        assert "draining" in stderr
        assert "stopped" in stderr


class TestPriorityAndDeadlines:
    def test_priority_and_deadline_parsing(self):
        request = SynthesisRequest.from_payload(
            {
                "function": "e8",
                "vars": 3,
                "priority": "high",
                "deadline_ms": 5000,
            }
        )
        assert request.priority == 0
        assert request.priority_label == "high"
        assert request.expire_at is not None
        assert 0.0 < (request.remaining() or 0.0) <= 5.0
        assert not request.expired()

    @pytest.mark.parametrize(
        "payload",
        [
            {"function": "e8", "vars": 3, "priority": "urgent"},
            {"function": "e8", "vars": 3, "priority": 12},
            {"function": "e8", "vars": 3, "deadline_ms": 0},
            {"function": "e8", "vars": 3, "deadline_ms": -5},
            {"function": "e8", "vars": 3, "deadline_ms": "soon"},
        ],
    )
    def test_bad_priority_or_deadline_rejected(self, payload):
        with pytest.raises(ValueError):
            SynthesisRequest.from_payload(payload)

    def test_expired_at_admission_is_504_without_engine_run(self):
        """A request whose deadline already lapsed never reaches the
        pool: HTTP 504, status "expired", zero engine runs."""
        assert STATUS_HTTP["expired"] == 504
        scheduler, service = _service_stack(engines=("fen",))
        server = SynthesisServer(service)

        async def drive():
            await server.start()
            host, port = server.address
            status, body, _ = await _post(
                host,
                port,
                "/synthesize",
                {"function": "e8", "vars": 3, "deadline_ms": 0.001},
            )
            await server.shutdown(drain_timeout=5.0)
            return status, body

        try:
            status, body = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert status == 504
        assert body["status"] == "expired"
        assert service.metrics.expired == 1
        assert service.metrics.engine_runs == 0

    def test_deadline_lapses_in_queue_never_occupies_worker(self):
        """With the single worker pinned, a queued request whose
        deadline lapses is answered expired at pop time — the engine
        never runs for it."""
        import threading
        import time

        scheduler, service = _service_stack(jobs=1, engines=("fen",))
        release = threading.Event()
        pinned = threading.Event()

        def pin():
            pinned.set()
            release.wait(10.0)

        blocker = scheduler.submit_call("pin", pin)
        assert pinned.wait(5.0)  # the worker is genuinely occupied
        request = SynthesisRequest(
            functions=(_CLASS_REP,),
            expire_at=time.monotonic() + 0.15,
        )

        async def drive():
            task = asyncio.ensure_future(service.synthesize(request))
            await asyncio.sleep(0.4)  # deadline lapses while queued
            release.set()
            return await task

        try:
            response = asyncio.run(drive())
            blocker.result(timeout=10.0)
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert response.status == "expired"
        assert service.metrics.expired == 1
        # The job was launched (queued) but never executed: the pop
        # flagged it lapsed and the dispatcher answered in O(1).
        expired_in_queue = sum(
            stats.expired for stats in scheduler.worker_stats
        )
        assert expired_in_queue == 1

    def test_high_band_dispatches_before_low(self):
        """With the worker pinned, queued jobs drain high-before-low
        regardless of submission order."""
        import threading

        from repro.parallel import PRIORITY_BANDS

        scheduler = BatchScheduler({}, 1, queue_depth=0).start()
        release = threading.Event()
        pinned = threading.Event()
        order = []

        def pin():
            pinned.set()
            release.wait(10.0)

        try:
            scheduler.submit_call("pin", pin)
            assert pinned.wait(5.0)
            futures = [
                scheduler.submit_call(
                    "low",
                    lambda: order.append("low"),
                    priority=PRIORITY_BANDS["low"],
                ),
                scheduler.submit_call(
                    "normal",
                    lambda: order.append("normal"),
                    priority=PRIORITY_BANDS["normal"],
                ),
                scheduler.submit_call(
                    "high",
                    lambda: order.append("high"),
                    priority=PRIORITY_BANDS["high"],
                ),
            ]
            release.set()
            for future in futures:
                future.result(timeout=10.0)
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert order == ["high", "normal", "low"]

    def test_request_ids_monotone_and_priority_echoed(self):
        scheduler, service = _service_stack(engines=("fen",))

        async def drive():
            responses = []
            for priority in ("high", "normal", "low"):
                responses.append(
                    await service.synthesize(
                        SynthesisRequest.from_payload(
                            {
                                "function": "e8",
                                "vars": 3,
                                "priority": priority,
                            }
                        )
                    )
                )
            return responses

        try:
            responses = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        ids = [response.request_id for response in responses]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
        assert [r.priority for r in responses] == [
            "high",
            "normal",
            "low",
        ]
        by_priority = service.metrics.to_record()[
            "latency_by_priority_ms"
        ]
        assert set(by_priority) == {"high", "normal", "low"}


async def _raw_get(host, port, path, headers=None):
    """GET returning (status, raw body bytes, header block)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = f"GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        writer.write(head.encode() + b"\r\n")
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), 30.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body, head


class TestBackpressure:
    def test_connection_cap_sheds_immediately_503(self):
        """Connections past the cap get one fast 503 and a close; the
        accounting recovers once the holders leave."""
        scheduler, service = _service_stack()
        server = SynthesisServer(service, max_connections=2)

        async def drive():
            await server.start()
            host, port = server.address
            holders = [
                await asyncio.open_connection(host, port)
                for _ in range(2)
            ]
            await asyncio.sleep(0.05)  # handlers reach their read loop
            shed_status, shed_body, shed_head = await _post(
                host, port, "/synthesize", {"function": "e8", "vars": 3}
            )
            for _reader, writer in holders:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            await asyncio.sleep(0.05)
            ok_status, _, _ = await _post(
                host, port, "/synthesize", {"function": "e8", "vars": 3}
            )
            await server.shutdown(drain_timeout=10.0)
            return shed_status, shed_body, shed_head, ok_status

        try:
            shed_status, shed_body, shed_head, ok_status = asyncio.run(
                drive()
            )
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert shed_status == 503
        assert shed_body["status"] == "overloaded"
        assert b"connection: close" in shed_head.lower()
        assert ok_status == 200
        assert service.metrics.connections_shed == 1
        assert service.metrics.connections_active == 0
        assert service.metrics.connections_peak == 2

    def test_per_connection_request_cap_forces_close(self):
        scheduler, service = _service_stack()
        server = SynthesisServer(service, max_requests_per_conn=2)

        async def drive():
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            heads = []
            try:
                for _ in range(2):
                    writer.write(
                        b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                    )
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    length = int(
                        [
                            line.split(b":")[1]
                            for line in head.split(b"\r\n")
                            if line.lower().startswith(b"content-length")
                        ][0]
                    )
                    await reader.readexactly(length)
                    heads.append(head.lower())
                trailing = await asyncio.wait_for(reader.read(), 5.0)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            await server.shutdown(drain_timeout=5.0)
            return heads, trailing

        try:
            heads, trailing = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert b"connection: keep-alive" in heads[0]
        assert b"connection: close" in heads[1]
        assert trailing == b""  # server closed after the capped response
        assert service.metrics.pipeline_closed == 1

    def test_client_disconnect_mid_coalesce_survives(self):
        """Regression: the launcher of a shared synthesis hangs up
        mid-flight; the coalesced waiter still gets a correct chain,
        one engine run total, and the connection gauge returns to zero
        (no double-decrement, no leaked in-flight entry)."""
        import threading

        scheduler, service = _service_stack(jobs=1, engines=("fen",))
        server = SynthesisServer(service)
        table = from_hex("8ff8", 4)
        release = threading.Event()
        pinned = threading.Event()

        def pin():
            pinned.set()
            release.wait(10.0)

        async def drive():
            await server.start()
            host, port = server.address
            # Pin the only worker so the launched synthesis stays
            # in flight while the launcher disconnects.
            scheduler.submit_call("pin", pin)
            assert pinned.wait(5.0)
            # Launcher: send the request, then slam the socket shut
            # without reading the response.
            reader, writer = await asyncio.open_connection(host, port)
            body = json.dumps({"function": "8ff8", "vars": 4}).encode()
            writer.write(
                (
                    "POST /synthesize HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
            await asyncio.sleep(0.1)  # launch reaches the pool
            writer.transport.abort()  # hard RST, not FIN
            waiter = asyncio.ensure_future(
                _post(
                    host,
                    port,
                    "/synthesize",
                    {"function": "8ff8", "vars": 4},
                )
            )
            await asyncio.sleep(0.2)  # waiter coalesces onto the job
            release.set()
            status, payload, _ = await waiter
            await server.shutdown(drain_timeout=30.0)
            return status, payload

        try:
            status, payload = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert status == 200
        assert_chain_realizes(
            table, chain_from_record(payload["chains"][0])
        )
        assert service.metrics.engine_runs == 1
        assert service.metrics.coalesced == 1
        assert not service._inflight
        assert service.metrics.connections_active == 0


class TestPrometheusExposition:
    _SAMPLE = __import__("re").compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]* "
        r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|NaN|[+-]Inf)$"
    )
    _HELP = __import__("re").compile(
        r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$"
    )
    _TYPE = __import__("re").compile(
        r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge)$"
    )

    def test_metrics_text_negotiation_golden(self):
        """Every exposition line parses under the 0.0.4 grammar, and
        the exposed name set matches the flattened JSON snapshot
        exactly — one snapshot, two encodings, no drift."""
        from repro.serve.prometheus import CONTENT_TYPE, metric_name
        from repro.stats import flatten_numeric

        scheduler, service = _service_stack(engines=("fen",))
        server = SynthesisServer(service)

        async def drive():
            await server.start()
            host, port = server.address
            await _post(
                host,
                port,
                "/synthesize",
                {
                    "function": "e8",
                    "vars": 3,
                    "priority": "high",
                    "deadline_ms": 60000,
                },
            )
            status_text, text_body, text_head = await _raw_get(
                host, port, "/metrics", headers={"Accept": "text/plain"}
            )
            status_json, json_snapshot = await _get(
                host, port, "/metrics"
            )
            await server.shutdown(drain_timeout=10.0)
            return (
                status_text,
                text_body,
                text_head,
                status_json,
                json_snapshot,
            )

        try:
            (
                status_text,
                text_body,
                text_head,
                status_json,
                json_snapshot,
            ) = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)

        assert status_text == 200 and status_json == 200
        assert CONTENT_TYPE.encode() in text_head.lower() or (
            b"text/plain" in text_head.lower()
        )
        exposed = set()
        lines = text_body.decode().splitlines()
        assert lines, "empty exposition"
        for line in lines:
            if line.startswith("# HELP"):
                assert self._HELP.match(line), line
            elif line.startswith("# TYPE"):
                assert self._TYPE.match(line), line
            else:
                assert self._SAMPLE.match(line), line
                exposed.add(line.split(" ", 1)[0])
        expected = {
            metric_name(key)
            for key in flatten_numeric(json_snapshot)
        }
        assert exposed == expected
        # The new backpressure/deadline series are present by name.
        for needle in (
            "repro_serving_expired",
            "repro_serving_connections_shed",
            "repro_serving_pipeline_closed",
            "repro_serving_connections_active",
            "repro_ratelimit_clients_tracked",
        ):
            assert needle in exposed, needle

    def test_json_remains_default(self):
        scheduler, service = _service_stack()
        server = SynthesisServer(service)

        async def drive():
            await server.start()
            host, port = server.address
            status, body, head = await _raw_get(host, port, "/metrics")
            await server.shutdown(drain_timeout=5.0)
            return status, body, head

        try:
            status, body, head = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert status == 200
        assert b"application/json" in head.lower()
        assert "serving" in json.loads(body)

    def test_metrics_all_single_process(self):
        """/metrics/all degenerates to a one-entry aggregate without a
        sibling registry."""
        scheduler, service = _service_stack()
        server = SynthesisServer(service)

        async def drive():
            await server.start()
            host, port = server.address
            await _post(
                host, port, "/synthesize", {"function": "e8", "vars": 3}
            )
            status, body = await _get(host, port, "/metrics/all")
            await server.shutdown(drain_timeout=10.0)
            return status, body

        try:
            status, body = asyncio.run(drive())
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert status == 200
        assert body["procs"] == 1
        assert body["unreachable"] == []
        assert body["merged"]["serving"]["requests"] == 1
        assert set(body["per_proc"]) == {"0"}
