"""Multi-output specs, joint canonicalization, and shared synthesis."""

import random

import pytest

from repro.chain import (
    extract_output_cone,
    merge_chains_shared,
    npn_transform_chain_multi,
)
from repro.core import synthesize_all, verify_chain_outputs
from repro.core.spec import SynthesisSpec
from repro.engine import create_engine
from repro.kernels import chain_output_onsets
from repro.runtime.errors import SynthesisInfeasible
from repro.truthtable import TruthTable, from_hex
from repro.truthtable.npn import (
    MultiNPNTransform,
    canonicalize_multi,
)

XOR = from_hex("6", 2)
AND = from_hex("8", 2)
OR = from_hex("e", 2)
MAJ = from_hex("e8", 3)
FA_SUM = from_hex("96", 3)


def random_transform(rng, num_vars, num_outputs):
    perm = list(range(num_vars))
    rng.shuffle(perm)
    return MultiNPNTransform(
        tuple(perm),
        rng.getrandbits(num_vars),
        tuple(bool(rng.getrandbits(1)) for _ in range(num_outputs)),
    )


class TestSpec:
    def test_single_output_round_trip(self):
        spec = SynthesisSpec(function=XOR)
        assert spec.functions == (XOR,)
        assert not spec.is_multi_output
        assert spec.num_outputs == 1

    def test_functions_only(self):
        spec = SynthesisSpec(functions=(XOR, AND))
        assert spec.function == XOR
        assert spec.is_multi_output
        assert spec.num_outputs == 2

    def test_output_spec_projects(self):
        spec = SynthesisSpec(functions=(XOR, AND))
        single = spec.output_spec(1)
        assert single.function == AND
        assert not single.is_multi_output

    def test_mismatched_arity_rejected(self):
        with pytest.raises(ValueError):
            SynthesisSpec(functions=(XOR, MAJ))

    def test_inconsistent_function_rejected(self):
        with pytest.raises(ValueError):
            SynthesisSpec(function=AND, functions=(XOR, AND))


class TestCanonicalizeMulti:
    def test_orbit_invariance(self):
        rng = random.Random(11)
        base = (MAJ, FA_SUM)
        canon, _ = canonicalize_multi(base)
        for _ in range(20):
            t = random_transform(rng, 3, 2)
            member = t.apply(base)
            canon2, tr2 = canonicalize_multi(member)
            assert [c.bits for c in canon2] == [c.bits for c in canon]
            # transform maps the member onto its canonical form
            assert tuple(tr2.apply(member)) == tuple(canon2)

    def test_inverse_round_trips(self):
        rng = random.Random(5)
        for _ in range(10):
            tables = tuple(
                TruthTable(rng.getrandbits(16), 4) for _ in range(3)
            )
            canon, transform = canonicalize_multi(tables)
            back = transform.inverse().apply(canon)
            assert tuple(back) == tuple(tables)

    def test_single_output_matches_npn_canonical(self):
        from repro.truthtable.npn import canonicalize

        canon, transform = canonicalize_multi((MAJ,))
        expected, single = canonicalize(MAJ)
        assert canon[0] == expected
        assert transform.component(0).apply(MAJ) == expected
        assert single.apply(MAJ) == expected


class TestTransformChainMulti:
    def test_transform_preserves_gate_count_and_semantics(self):
        rng = random.Random(7)
        chains = [synthesize_all(MAJ)[0], synthesize_all(FA_SUM)[0]]
        merged = merge_chains_shared(chains)
        for _ in range(10):
            t = random_transform(rng, 3, 2)
            rewritten = npn_transform_chain_multi(merged, t)
            assert rewritten.num_gates == merged.num_gates
            expect = t.apply((MAJ, FA_SUM))
            assert verify_chain_outputs(rewritten, expect)


class TestSharedSynthesis:
    @pytest.mark.parametrize("engine", ["stp", "cegis", "fen"])
    def test_engines_synthesize_vectors(self, engine):
        spec = SynthesisSpec(
            functions=(FA_SUM, MAJ), all_solutions=True
        )
        result = create_engine(engine).synthesize(spec)
        chain = result.chains[0]
        assert len(chain.outputs) == 2
        assert verify_chain_outputs(chain, (FA_SUM, MAJ))

    def test_duplicate_outputs_share_everything(self):
        spec = SynthesisSpec(functions=(MAJ, MAJ, MAJ))
        result = create_engine("stp").synthesize(spec)
        chain = result.chains[0]
        single = create_engine("stp").synthesize(
            SynthesisSpec(function=MAJ)
        )
        assert chain.num_gates == single.num_gates
        assert verify_chain_outputs(chain, (MAJ, MAJ, MAJ))

    def test_complement_outputs_share_interior(self):
        spec = SynthesisSpec(functions=(MAJ, ~MAJ), all_solutions=True)
        chain = create_engine("stp").synthesize(spec).chains[0]
        single = create_engine("stp").synthesize(
            SynthesisSpec(function=MAJ)
        )
        # The complement's chains re-use MAJ's interior; only the
        # final gate differs (output negation lives in the gate code,
        # not the output flag), so at most one extra gate is needed.
        assert chain.num_gates <= single.num_gates + 1
        assert verify_chain_outputs(chain, (MAJ, ~MAJ))

    def test_gate_cap_enforced_jointly(self):
        spec = SynthesisSpec(functions=(FA_SUM, MAJ), max_gates=1)
        with pytest.raises(SynthesisInfeasible):
            create_engine("stp").synthesize(spec)

    def test_cone_extraction_recovers_per_output_optimum(self):
        spec = SynthesisSpec(
            functions=(FA_SUM, MAJ), all_solutions=True
        )
        chain = create_engine("stp").synthesize(spec).chains[0]
        for index, target in enumerate((FA_SUM, MAJ)):
            cone = extract_output_cone(chain, index)
            assert cone.simulate_output() == target
            optimum = create_engine("stp").synthesize(
                SynthesisSpec(function=target)
            )
            assert cone.num_gates == optimum.num_gates


class TestSharedKernel:
    def test_output_onsets_match_simulation(self):
        chains = [synthesize_all(f)[0] for f in (MAJ, FA_SUM, ~MAJ)]
        merged = merge_chains_shared(chains)
        onsets = chain_output_onsets(merged)
        simulated = merged.simulate()
        assert onsets == [t.bits for t in simulated]

    def test_const0_outputs(self):
        from repro.chain import BooleanChain

        chain = BooleanChain(2)
        chain.set_output(BooleanChain.CONST0, complemented=False)
        chain.set_output(BooleanChain.CONST0, complemented=True)
        onsets = chain_output_onsets(chain)
        assert onsets == [0, 0b1111]
        assert verify_chain_outputs(
            chain, (TruthTable(0, 2), TruthTable(0b1111, 2))
        )
