"""Baseline synthesizer tests: BMS, FEN, lutexact-style CEGAR."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BMSSynthesizer,
    FenceSynthesizer,
    LutExactSynthesizer,
    bms_synthesize,
    fence_synthesize,
    lutexact_synthesize,
)
from repro.truthtable import (
    TruthTable,
    constant,
    from_function,
    from_hex,
    majority,
    parity,
    projection,
)

ENGINES = [bms_synthesize, fence_synthesize, lutexact_synthesize]
ENGINE_IDS = ["bms", "fen", "lutexact"]


class TestKnownOptima:
    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_and2(self, engine):
        result = engine(from_hex("8", 2), timeout=60)
        assert result.num_gates == 1

    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_xor3(self, engine):
        result = engine(parity(3), timeout=60)
        assert result.num_gates == 2
        assert result.chains[0].simulate_output() == parity(3)

    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_maj3(self, engine):
        result = engine(majority(3), timeout=120)
        assert result.num_gates == 4
        assert result.chains[0].simulate_output() == majority(3)

    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_example7(self, engine):
        f = from_hex("8ff8", 4)
        result = engine(f, timeout=120)
        assert result.num_gates == 3
        assert result.chains[0].simulate_output() == f

    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_trivial(self, engine):
        assert engine(constant(1, 3), timeout=10).num_gates == 0
        assert engine(projection(0, 3), timeout=10).num_gates == 0
        assert engine(~projection(2, 3), timeout=10).num_gates == 0

    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_vacuous_variables(self, engine):
        f = from_function(lambda a, b, c, d: a and c, 4)
        result = engine(f, timeout=60)
        assert result.num_gates == 1
        assert result.chains[0].simulate_output() == f


class TestCrossAgreement:
    @given(st.integers(0, 0xFF))
    @settings(max_examples=10, deadline=None)
    def test_engines_agree_on_3var(self, bits):
        f = TruthTable(bits, 3)
        sizes = {
            engine(f, timeout=120).num_gates for engine in ENGINES
        }
        assert len(sizes) == 1

    def test_single_solution_semantics(self):
        for engine in ENGINES:
            result = engine(majority(3), timeout=120)
            assert result.num_solutions == 1


class TestLimits:
    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_timeout(self, engine):
        with pytest.raises(TimeoutError):
            engine(from_hex("cafe", 4), timeout=0.05)

    def test_gate_cap(self):
        with pytest.raises(RuntimeError):
            BMSSynthesizer(max_gates=2).synthesize(
                majority(3), timeout=60
            )
        with pytest.raises(RuntimeError):
            FenceSynthesizer(max_gates=1).synthesize(
                parity(3), timeout=60
            )
        with pytest.raises(RuntimeError):
            LutExactSynthesizer(max_gates=2).synthesize(
                majority(3), timeout=60
            )

    def test_cegar_seed_rows(self):
        result = LutExactSynthesizer(seed_rows=1).synthesize(
            parity(3), timeout=60
        )
        assert result.num_gates == 2
