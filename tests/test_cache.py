"""The cross-call caching layer: NPN memo, topology families,
factorization pool, persistence, and the global-cache plumbing."""

import os

import pytest

from repro.cache import (
    SynthesisCache,
    get_cache,
    reset_cache,
    set_cache,
)
from repro.core import SynthesisContext, SynthesisSpec, run_pipeline
from repro.core.spec import SynthesisStats
from repro.topology.dag import enumerate_dags
from repro.topology.fence import valid_fences
from repro.truthtable import from_hex
from repro.truthtable.npn import canonicalize

EXAMPLE7 = from_hex("8ff8", 4)


@pytest.fixture(autouse=True)
def fresh_global_cache():
    """Isolate every test from the process-global cache."""
    reset_cache()
    yield
    reset_cache()


class TestNPNCache:
    def test_memoizes(self):
        cache = SynthesisCache()
        stats = SynthesisStats()
        table = from_hex("cafe", 4)
        first = cache.npn_canonical(table, stats=stats)
        second = cache.npn_canonical(table, stats=stats)
        assert first == second
        assert first == canonicalize(table)
        assert stats.cache_hits["npn"] == 1
        assert stats.cache_misses["npn"] == 1

    def test_disabled_bypasses_store(self):
        cache = SynthesisCache(enabled=False)
        table = from_hex("cafe", 4)
        cache.npn_canonical(table)
        cache.npn_canonical(table)
        assert cache.npn.hits == 0 and cache.npn.misses == 0


class TestTopologyCache:
    def test_families_match_streaming_enumeration(self):
        cache = SynthesisCache()
        for r, s in [(1, 2), (2, 3), (3, 3), (3, 4)]:
            families = cache.topology_families(r, s)
            streamed = [
                (fence, tuple(enumerate_dags(fence, s, True)))
                for fence in valid_fences(r)
            ]
            assert list(families) == streamed

    def test_hit_on_second_call(self):
        cache = SynthesisCache()
        stats = SynthesisStats()
        cache.topology_families(3, 4, stats=stats)
        first = cache.topology_families(3, 4, stats=stats)
        second = cache.topology_families(3, 4, stats=stats)
        assert first is second
        assert stats.cache_hits["topology"] == 2
        assert stats.cache_misses["topology"] == 1

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "topo.cache")
        cache = SynthesisCache()
        built = cache.topology_families(3, 4)
        cache.save(path)

        restored = SynthesisCache()
        assert restored.load(path) == 1
        assert list(restored.topology_families(3, 4)) == list(built)
        # The restored family counts as a hit, not a rebuild.
        assert restored.topology.hits == 1

    def test_load_missing_or_corrupt(self, tmp_path):
        cache = SynthesisCache()
        assert cache.load(str(tmp_path / "absent.cache")) == 0
        garbage = tmp_path / "garbage.cache"
        garbage.write_bytes(b"not a pickle at all")
        assert cache.load(str(garbage)) == 0

    def test_save_is_atomic(self, tmp_path):
        path = str(tmp_path / "topo.cache")
        cache = SynthesisCache()
        cache.topology_families(2, 3)
        cache.save(path)
        assert os.path.exists(path)
        assert not [
            name
            for name in os.listdir(tmp_path)
            if name.endswith(".tmp")
        ]


class TestFactorizationPool:
    def test_engine_reused_across_calls(self):
        cache = SynthesisCache()
        a = cache.factorization_engine(4, (6, 8), 64)
        b = cache.factorization_engine(4, (6, 8), 64)
        c = cache.factorization_engine(3, (6, 8), 64)
        assert a is b
        assert a is not c
        assert cache.factorization.hits == 1
        assert cache.factorization.misses == 2

    def test_disabled_returns_fresh(self):
        cache = SynthesisCache(enabled=False)
        a = cache.factorization_engine(4, (6, 8), 64)
        b = cache.factorization_engine(4, (6, 8), 64)
        assert a is not b


class TestGlobalCache:
    def test_get_set_reset(self):
        original = get_cache()
        assert get_cache() is original
        replacement = SynthesisCache()
        previous = set_cache(replacement)
        assert previous is original
        assert get_cache() is replacement
        reset_cache()
        assert get_cache() is not replacement

    def test_pipeline_uses_global_cache(self):
        spec = SynthesisSpec(function=EXAMPLE7, timeout=120)
        run_pipeline(spec)
        assert get_cache().topology.misses >= 1
        before = get_cache().topology.hits
        run_pipeline(spec)
        assert get_cache().topology.hits > before

    def test_results_identical_with_cache_on_off(self):
        spec = SynthesisSpec(function=EXAMPLE7, timeout=120)
        warm_ctx = SynthesisContext.create(timeout=120)
        warm_ctx.cache.topology_families(3, 4)  # pre-warm
        cached = run_pipeline(spec, warm_ctx)

        cold_ctx = SynthesisContext.create(
            timeout=120, cache=SynthesisCache(enabled=False)
        )
        uncached = run_pipeline(spec, cold_ctx)

        assert cached.num_gates == uncached.num_gates
        assert [c.signature() for c in cached.chains] == [
            c.signature() for c in uncached.chains
        ]
        # Identical search effort either way — caching is transparent.
        assert (
            cached.stats.fences_examined == uncached.stats.fences_examined
        )
        assert cached.stats.dags_examined == uncached.stats.dags_examined


class TestConcurrentPersistence:
    def test_save_merges_with_families_already_on_disk(self, tmp_path):
        """Two writers sharing one path lose nothing: the second save
        re-reads the file under the lock and merges before replacing."""
        path = str(tmp_path / "topo.cache")
        first = SynthesisCache()
        first.topology_families(2, 3)
        second = SynthesisCache()
        second.topology_families(3, 3)
        first.save(path)
        second.save(path)

        merged = SynthesisCache()
        assert merged.load(path) == 2
        merged.topology_families(2, 3)
        merged.topology_families(3, 3)
        assert merged.topology.hits == 2
        assert merged.topology.misses == 0

    def test_repeated_saves_do_not_duplicate(self, tmp_path):
        path = str(tmp_path / "topo.cache")
        cache = SynthesisCache()
        cache.topology_families(3, 4)
        cache.save(path)
        cache.save(path)
        assert SynthesisCache().load(path) == 1

    def test_save_over_corrupt_file_still_succeeds(self, tmp_path):
        path = tmp_path / "topo.cache"
        path.write_bytes(b"\x00garbage that is not a pickle")
        cache = SynthesisCache()
        cache.topology_families(2, 3)
        cache.save(str(path))
        assert SynthesisCache().load(str(path)) == 1

    def test_parallel_saves_from_threads(self, tmp_path):
        import threading

        path = str(tmp_path / "topo.cache")
        pairs = [(1, 2), (2, 2), (2, 3), (3, 3), (3, 4)]
        errors = []

        def saver(r, s):
            try:
                cache = SynthesisCache()
                cache.topology_families(r, s)
                cache.save(path)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=saver, args=pair) for pair in pairs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert SynthesisCache().load(path) == len(pairs)

    def test_sanitize_state_drops_malformed_entries(self):
        from repro.cache.topology import TopologyCache

        good = SynthesisCache()
        good.topology_families(2, 3)
        state = good.topology.export_state()
        state["bogus-key"] = "bogus-family"
        state[(1, 2)] = None  # wrong key arity
        clean = TopologyCache.sanitize_state(state)
        assert set(clean) == {(2, 3, True)}
        assert TopologyCache.sanitize_state("not a dict") == {}
