"""Cross-module integration tests: the substrates must agree with each
other on shared questions."""

import random

from hypothesis import given, settings, strategies as st

from repro.chain import select_best
from repro.core import hierarchical_synthesize, synthesize, verify_chain
from repro.sat import CNF, all_models
from repro.stp import STPSolver, parse
from repro.truthtable import TruthTable, from_function, majority


class TestSolverAgreement:
    """The STP AllSAT solver and the CDCL AllSAT must enumerate the
    same model sets for the same formula."""

    def _cnf_of_formula(self, clauses, num_vars):
        cnf = CNF(num_vars)
        cnf.extend(clauses)
        return cnf

    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_random_cnf_agreement(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(2, 5)
        clauses = []
        for _ in range(rnd.randint(1, 3 * n)):
            width = rnd.randint(1, 3)
            clauses.append(
                [
                    (v if rnd.random() < 0.5 else -v)
                    for v in (rnd.randint(1, n) for _ in range(width))
                ]
            )
        cnf = self._cnf_of_formula(clauses, n)

        # Tabulate the CNF into a truth table for the STP solver.
        def value(*xs):
            return int(cnf.evaluate(list(map(bool, xs))))

        table = from_function(value, n)

        cdcl_models = {
            tuple(int(m[v]) for v in range(1, n + 1))
            for m in all_models(cnf)
        }
        # STP solution (x_1..x_n) has x_k = table var n-k.
        stp_models = {
            tuple(reversed(sol))
            for sol in STPSolver(table).all_solutions()
        }
        assert stp_models == cdcl_models

    def test_liar_puzzle_via_both_engines(self):
        expr = parse("(a <-> ~b) & (b <-> ~c) & (c <-> (~a & ~b))")
        table = expr.to_truth_table()
        stp_count = len(STPSolver(expr).all_solutions())
        assert stp_count == table.count_ones() == 1


class TestSynthesisPipeline:
    def test_synthesize_verify_select(self):
        """End-to-end: synthesize → circuit-AllSAT verify → cost pick."""
        f = from_function(lambda a, b, c, d: (a ^ b) or (c and d), 4)
        result = synthesize(f, timeout=120, max_solutions=64)
        assert result.num_solutions >= 1
        for chain in result.chains:
            assert verify_chain(chain, f)
        best = select_best(result.chains, "depth")
        assert best.simulate_output() == f

    def test_flat_and_hierarchical_same_optimum(self):
        f = from_function(lambda a, b, c, d: (a ^ b) or (c and d), 4)
        flat = synthesize(f, timeout=120, max_solutions=4)
        hier = hierarchical_synthesize(f, timeout=120, max_solutions=4)
        assert flat.num_gates == hier.num_gates

    def test_maj3_solutions_all_verified_by_circuit_solver(self):
        result = synthesize(majority(3), timeout=120, max_solutions=100)
        for chain in result.chains:
            assert verify_chain(chain, majority(3))

    @given(st.integers(0, 0xFF))
    @settings(max_examples=8, deadline=None)
    def test_random_3var_pipeline(self, bits):
        f = TruthTable(bits, 3)
        result = synthesize(f, timeout=120, max_solutions=16)
        for chain in result.chains:
            assert chain.simulate_output() == f
            assert chain.num_gates == result.num_gates
