"""Every concrete artefact the paper prints, reproduced exactly.

One test per example/figure so regressions in any layer are traced
straight back to the corresponding claim in the paper.
"""

import numpy as np

from repro.chain import BooleanChain
from repro.core import chain_all_sat, cubes_to_onset, synthesize, verify_chain
from repro.stp import (
    M_D,
    M_I,
    M_N,
    M_R,
    M_W,
    STPSolver,
    bool_vector,
    parse,
    stp,
    stp_chain,
)
from repro.topology import all_fences, enumerate_dags, valid_fences
from repro.truthtable import from_hex


class TestSectionII:
    def test_example1_negation_matrix(self):
        """M_n a computes ~a."""
        for a in (0, 1):
            out = M_N @ bool_vector(a)
            assert out[0, 0] == 1 - a

    def test_example2_implication_identity(self):
        """M_d ⋉ M_n == M_i proves a->b == ~a|b."""
        assert np.array_equal(stp(M_D, M_N), M_I)

    def test_equation3_power_reduce(self):
        """M_r of equation (3) and a² = M_r a (Example 3)."""
        assert np.array_equal(
            M_R, [[1, 0], [0, 0], [0, 0], [0, 1]]
        )
        for a in (0, 1):
            v = bool_vector(a)
            assert np.array_equal(M_R @ v, stp(v, v))

    def test_equation4_swap(self):
        """M_w of equation (4) and M_w b a = a b (Example 3)."""
        assert np.array_equal(
            M_W,
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
        )
        for a in (0, 1):
            for b in (0, 1):
                va, vb = bool_vector(a), bool_vector(b)
                assert np.array_equal(
                    stp_chain([M_W, vb, va]), stp(va, vb)
                )

    def test_example4_liar_puzzle(self):
        """Canonical form and unique solution of the liar puzzle."""
        phi = parse("(a <-> ~b) & (b <-> ~c) & (c <-> (~a & ~b))")
        expected = np.array(
            [[0, 0, 0, 0, 0, 1, 0, 0], [1, 1, 1, 1, 1, 0, 1, 1]]
        )
        assert np.array_equal(phi.canonical_form(), expected)
        solver = STPSolver(phi)
        assert solver.solutions_as_dicts() == [{"a": 0, "b": 1, "c": 0}]


class TestSectionIIIA:
    def test_fig2a_f3_fences(self):
        assert len(all_fences(3)) == 4

    def test_fig2b_pruned_fences(self):
        assert sorted(valid_fences(3)) == [(1, 1, 1), (2, 1)]

    def test_fig3_example7_dag(self):
        """The 4-input DAG of Example 7 exists in fence (2,1)."""
        fanins = {d.fanins for d in enumerate_dags((2, 1), 4)}
        assert ((0, 1), (2, 3), (4, 5)) in fanins


class TestSectionIIIB:
    def test_example7_candidate_chains(self):
        """Both of Example 7's Boolean chains for 0x8ff8 are valid and
        found among the synthesizer's solutions."""
        target = from_hex("8ff8", 4)

        # First candidate: x7 = 0xe(x5,x6), x6 = 0x8(a,b), x5 = 0x6(c,d)
        chain1 = BooleanChain(4)
        s_and = chain1.add_gate(0x8, (0, 1))
        s_xor = chain1.add_gate(0x6, (2, 3))
        chain1.set_output(chain1.add_gate(0xE, (s_and, s_xor)))
        assert chain1.simulate_output() == target

        # Second candidate: x7 = 0x7(...), x6 = 0x7(a,b), x5 = 0x9(c,d)
        chain2 = BooleanChain(4)
        s_nand = chain2.add_gate(0x7, (0, 1))
        s_xnor = chain2.add_gate(0x9, (2, 3))
        chain2.set_output(chain2.add_gate(0x7, (s_nand, s_xnor)))
        assert chain2.simulate_output() == target

        result = synthesize(target, timeout=120)
        assert result.num_gates == 3
        # Gate order may differ (xor-first vs and-first); compare up to
        # the per-node functions.
        def semantic(chain):
            tables = chain.simulate_signals()
            return frozenset(t.bits for t in tables[4:])

        semantics = {semantic(c) for c in result.chains}
        assert semantic(chain1) in semantics
        assert semantic(chain2) in semantics


class TestSectionIIIC:
    def test_example8_all_sat(self):
        """Ten satisfying assignments; simulation gives 0x8ff8."""
        chain = BooleanChain(4)
        s_and = chain.add_gate(0x8, (0, 1))
        s_xor = chain.add_gate(0x6, (2, 3))
        chain.set_output(chain.add_gate(0xE, (s_and, s_xor)))
        cubes = chain_all_sat(chain)
        onset = cubes_to_onset(cubes, 4)
        assert bin(onset).count("1") == 10
        assert onset == from_hex("8ff8", 4).bits
        assert verify_chain(chain, from_hex("8ff8", 4))


class TestHeadline:
    def test_all_solutions_in_one_pass(self):
        """'It can also obtain all optimal solutions in one pass' —
        multiple distinct optimal chains per run, all 2-LUTs."""
        result = synthesize(from_hex("8ff8", 4), timeout=120)
        assert result.num_solutions >= 2
        for chain in result.chains:
            for gate in chain.gates:
                assert gate.arity == 2  # 2-LUT representation
