"""Bit-parallel kernel layer: randomized old-vs-new equivalence.

Every kernel is compared against the original pure-Python
implementation it replaced (relocated verbatim into
``repro.kernels.reference``): the tuple-cube AllSAT solver, the
loop-based quartering construction, the per-row truth-table
manipulations, and the recursive STP descent.
"""

import itertools
import random

import pytest

from repro.bench.runner import InstanceOutcome, SuiteReport
from repro.chain import BooleanChain
from repro.core import (
    SynthesisSpec,
    chain_all_sat,
    cubes_to_onset,
    merge_cube_sets,
    run_pipeline,
    verify_chain,
)
from repro.kernels import (
    KERNEL_STATS,
    KernelCounters,
    array_to_bits,
    cofactor_bits,
    index_maps,
    npn_apply_bits,
    npn_minimum,
    pack_cube,
    pack_cubes,
    packed_onset,
    permute_bits,
    quartering_blocks,
    stp_assignments,
    support_bits,
    unpack_cube,
    unpack_cubes,
)
from repro.kernels.reference import (
    chain_all_sat_ref,
    cofactor_bits_ref,
    cubes_to_onset_ref,
    merge_cube_sets_ref,
    npn_apply_ref,
    permute_bits_ref,
    quartering_blocks_ref,
    stp_assignments_ref,
    support_bits_ref,
    verify_chain_ref,
)
from repro.truthtable import TruthTable, from_hex

from tests.helpers import assert_chain_realizes, random_chain


def random_cube(rnd, n):
    return tuple(rnd.choice((None, 0, 1)) for _ in range(n))


class TestPackedCubeRoundTrip:
    def test_pack_unpack_all_3ary_cubes(self):
        for cube in itertools.product((None, 0, 1), repeat=3):
            assert unpack_cube(pack_cube(cube), 3) == cube

    def test_pack_cubes_set_round_trip(self):
        rnd = random.Random(7)
        cubes = {random_cube(rnd, 5) for _ in range(40)}
        assert unpack_cubes(pack_cubes(cubes), 5) == cubes


class TestMergeEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_merge_sets_match_reference(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 6)
        s1 = {random_cube(rnd, n) for _ in range(rnd.randint(1, 25))}
        s2 = {random_cube(rnd, n) for _ in range(rnd.randint(1, 25))}
        assert merge_cube_sets(s1, s2) == merge_cube_sets_ref(s1, s2)

    def test_large_sets_cross_vector_threshold(self):
        # 80 × 80 = 6400 pairs exceeds the NumPy dispatch threshold, so
        # this exercises the vectorized branch against the reference.
        rnd = random.Random(11)
        n = 8
        s1 = {random_cube(rnd, n) for _ in range(80)}
        s2 = {random_cube(rnd, n) for _ in range(80)}
        assert merge_cube_sets(s1, s2) == merge_cube_sets_ref(s1, s2)


class TestAllSatEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_chains_match_reference(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(2, 5)
        chain = random_chain(rnd, num_inputs=n, num_gates=rnd.randint(1, 7))
        for targets in ([0], [1], None):
            assert chain_all_sat(chain, targets) == chain_all_sat_ref(
                chain, targets
            ), f"seed={seed} targets={targets}"

    @pytest.mark.parametrize("seed", range(10))
    def test_verify_chain_matches_reference(self, seed):
        rnd = random.Random(100 + seed)
        chain = random_chain(rnd, num_inputs=4, num_gates=5)
        truth = chain.simulate_output()
        wrong = TruthTable(truth.bits ^ 1, truth.num_vars)
        assert verify_chain(chain, truth) is verify_chain_ref(chain, truth)
        assert verify_chain(chain, wrong) is verify_chain_ref(chain, wrong)
        assert_chain_realizes(truth, chain)

    def test_multi_output_targets(self):
        chain = BooleanChain(2)
        g_and = chain.add_gate(0b1000, (0, 1))
        g_xor = chain.add_gate(0b0110, (0, 1))
        chain.set_output(g_and, False)
        chain.set_output(g_xor, True)
        for targets in itertools.product((0, 1), repeat=2):
            assert chain_all_sat(chain, targets) == chain_all_sat_ref(
                chain, targets
            )


class TestOnsetEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_cube_sets(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 7)
        cubes = [random_cube(rnd, n) for _ in range(rnd.randint(1, 20))]
        assert cubes_to_onset(cubes, n) == cubes_to_onset_ref(cubes, n)

    def test_all_free_cube_covers_everything(self):
        # The free-variable expansion (the old exponential loop) is one
        # shift-or cascade; the all-free cube is its worst case.
        n = 10
        cube = (None,) * n
        onset = cubes_to_onset([cube], n)
        assert onset == (1 << (1 << n)) - 1

    def test_packed_onset_matches_tuple_path(self):
        rnd = random.Random(3)
        n = 6
        cubes = [random_cube(rnd, n) for _ in range(12)]
        assert packed_onset(pack_cubes(cubes), n) == cubes_to_onset_ref(
            cubes, n
        )


class TestQuarteringEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_blocks_match_loop_reference(self, seed):
        rnd = random.Random(seed)
        nu = rnd.randint(2, 5)
        positions = list(range(nu))
        rnd.shuffle(positions)
        split = rnd.randint(1, nu - 1)
        a_pos = tuple(sorted(positions[:split]))
        b_pos = tuple(sorted(positions[split:]))
        amap, bmap, disjoint, gamma_of = index_maps(nu, a_pos, b_pos)
        assert disjoint
        gv_bits = rnd.getrandbits(1 << nu)
        blocks = quartering_blocks(gv_bits, nu, gamma_of)
        ref = quartering_blocks_ref(
            gv_bits, gamma_of.tolist(), 1 << len(b_pos)
        )
        assert [array_to_bits(row) for row in blocks] == ref


class TestTruthTableKernels:
    @pytest.mark.parametrize("seed", range(10))
    def test_cofactor_support_permute(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 6)
        bits = rnd.getrandbits(1 << n)
        for var in range(n):
            for value in (0, 1):
                assert cofactor_bits(bits, n, var, value) == (
                    cofactor_bits_ref(bits, n, var, value)
                )
        assert support_bits(bits, n) == support_bits_ref(bits, n)
        perm = list(range(n))
        rnd.shuffle(perm)
        assert permute_bits(bits, n, tuple(perm)) == permute_bits_ref(
            bits, n, perm
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_npn_apply(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 5)
        bits = rnd.getrandbits(1 << n)
        perm = list(range(n))
        rnd.shuffle(perm)
        flips = rnd.getrandbits(n)
        out = bool(rnd.getrandbits(1))
        assert npn_apply_bits(bits, n, tuple(perm), flips, out) == (
            npn_apply_ref(bits, n, perm, flips, out)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_npn_minimum_matches_sequential_scan(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 3)
        bits = rnd.getrandbits(1 << n)
        best = None
        for perm in itertools.permutations(range(n)):
            for flips in range(1 << n):
                for out in (False, True):
                    cand = npn_apply_ref(bits, n, perm, flips, out)
                    if best is None or cand < best[0]:
                        best = (cand, perm, flips, out)
        got = npn_minimum(bits, n)
        assert got == best
        # The returned transform really maps bits onto the minimum.
        min_bits, perm, flips, out = got
        assert npn_apply_bits(bits, n, perm, flips, out) == min_bits

    def test_npn_minimum_example_8ff8(self):
        table = from_hex("8ff8", 4)
        min_bits, perm, flips, out = npn_minimum(table.bits, 4)
        assert npn_apply_bits(table.bits, 4, perm, flips, out) == min_bits
        assert min_bits <= table.bits


class TestStpAssignments:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_recursive_descent(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 8)
        top = [rnd.randint(0, 1) for _ in range(1 << n)]
        assert stp_assignments(top, n) == stp_assignments_ref(top, n)

    def test_empty_and_full_rows(self):
        assert stp_assignments([0, 0, 0, 0], 2) == []
        assert len(stp_assignments([1] * 8, 3)) == 8


class TestKernelStats:
    def test_snapshot_since_delta(self):
        counters = KernelCounters()
        counters.count("cube_merge", 3)
        snap = counters.snapshot()
        counters.count("cube_merge", 2)
        counters.add("chain_allsat", 0.5)
        calls, seconds = counters.since(snap)
        assert calls == {"cube_merge": 2, "chain_allsat": 1}
        assert seconds == {"chain_allsat": 0.5}

    def test_pipeline_folds_kernel_counters(self):
        result = run_pipeline(
            SynthesisSpec(function=from_hex("8ff8", 4), timeout=120)
        )
        record = result.stats.to_record()
        assert record["kernel_calls"].get("chain_allsat", 0) > 0
        assert "chain_allsat" in record["kernel_seconds"]

    def test_global_registry_counts_allsat(self):
        snap = KERNEL_STATS.snapshot()
        chain = random_chain(random.Random(0))
        chain_all_sat(chain)
        calls, _ = KERNEL_STATS.since(snap)
        assert calls.get("chain_allsat", 0) >= 1


class TestWorkerSummaryStoreHits:
    def test_store_hit_latency_keys(self):
        report = SuiteReport(algorithm="STP", suite="unit")
        report.outcomes = [
            InstanceOutcome(
                "8ff8", True, 0.25, engine="store", worker=0
            ),
            InstanceOutcome(
                "1ee1", True, 1.5, engine="hier", worker=0
            ),
            InstanceOutcome(
                "0001", True, 0.75, engine="store", worker=1
            ),
        ]
        summary = report.worker_summary()
        assert summary[0]["store_hits"] == 1
        assert summary[0]["store_hit_seconds"] == pytest.approx(0.25)
        assert summary[1]["store_hits"] == 1
        assert summary[1]["store_hit_seconds"] == pytest.approx(0.75)
        assert report.num_store_hits == 2


class TestSolveDisjointBatchEquivalence:
    """The batched disjoint-cone solver against its scalar oracle."""

    @staticmethod
    def _random_shape(rnd):
        nu = rnd.randint(2, 5)
        positions = list(range(nu))
        rnd.shuffle(positions)
        split = rnd.randint(1, nu - 1)
        a_pos = tuple(sorted(positions[:split]))
        b_pos = tuple(sorted(positions[split:]))
        _, _, disjoint, gamma_of = index_maps(nu, a_pos, b_pos)
        assert disjoint
        return nu, a_pos, b_pos, gamma_of

    @pytest.mark.parametrize("seed", range(10))
    def test_free_children_match_reference(self, seed):
        from repro.kernels import solve_disjoint_batch
        from repro.kernels.reference import solve_disjoint_ref
        from repro.truthtable.operations import NONTRIVIAL_BINARY_OPS

        rnd = random.Random(seed)
        nu, _, _, gamma_of = self._random_shape(rnd)
        demands = [rnd.getrandbits(1 << nu) for _ in range(12)]
        for canonical in (True, False):
            got = solve_disjoint_batch(
                demands,
                nu,
                gamma_of,
                NONTRIVIAL_BINARY_OPS,
                canonical=canonical,
            )
            for k, gv in enumerate(demands):
                assert got[k] == solve_disjoint_ref(
                    gv,
                    gamma_of.tolist(),
                    NONTRIVIAL_BINARY_OPS,
                    canonical=canonical,
                ), f"seed={seed} k={k} canonical={canonical}"

    @pytest.mark.parametrize("seed", range(10))
    def test_pinned_children_match_reference(self, seed):
        """Pinned-A and pinned-B queries (the PI-projection case)."""
        from repro.kernels import solve_disjoint_batch
        from repro.kernels.reference import solve_disjoint_ref
        from repro.truthtable.operations import NONTRIVIAL_BINARY_OPS

        rnd = random.Random(1000 + seed)
        nu, a_pos, b_pos, gamma_of = self._random_shape(rnd)
        K = 12
        demands = [rnd.getrandbits(1 << nu) for _ in range(K)]
        fixed_a = [rnd.getrandbits(1 << len(a_pos)) for _ in range(K)]
        fixed_b = [rnd.getrandbits(1 << len(b_pos)) for _ in range(K)]

        got_a = solve_disjoint_batch(
            demands, nu, gamma_of, NONTRIVIAL_BINARY_OPS,
            fixed_a_seq=fixed_a,
        )
        got_b = solve_disjoint_batch(
            demands, nu, gamma_of, NONTRIVIAL_BINARY_OPS,
            fixed_b_seq=fixed_b,
        )
        for k, gv in enumerate(demands):
            assert got_a[k] == solve_disjoint_ref(
                gv, gamma_of.tolist(), NONTRIVIAL_BINARY_OPS,
                fixed_a=fixed_a[k],
            ), f"seed={seed} k={k} pinned=A"
            assert got_b[k] == solve_disjoint_ref(
                gv, gamma_of.tolist(), NONTRIVIAL_BINARY_OPS,
                fixed_b=fixed_b[k],
            ), f"seed={seed} k={k} pinned=B"

    @pytest.mark.parametrize("seed", range(5))
    def test_prefetch_matches_unprefetched_engine(self, seed):
        """Shared-cone fallback: a prefetch over mixed disjoint and
        overlapping-cone queries must leave every later
        ``decompositions_pairs`` answer identical to a cold engine's —
        the non-batchable queries are skipped, not mis-solved."""
        from repro.core.factorization import FactorizationEngine
        from repro.truthtable.operations import NONTRIVIAL_BINARY_OPS

        rnd = random.Random(2000 + seed)
        num_vars = 4
        warm = FactorizationEngine(num_vars, NONTRIVIAL_BINARY_OPS)
        cold = FactorizationEngine(num_vars, NONTRIVIAL_BINARY_OPS)
        cones = [
            ((0, 1), (2, 3)),       # disjoint, full cover
            ((0, 1, 2), (3,)),      # disjoint, full cover
            ((0, 1, 2), (1, 2, 3)), # shared — scalar fallback
            ((0, 2), (1, 2)),       # shared — scalar fallback
        ]
        queries = []
        for cone_a, cone_b in cones:
            pair_w = warm.pair_info(cone_a, cone_b)
            for _ in range(6):
                gv = rnd.getrandbits(1 << num_vars)
                fa = None
                if rnd.random() < 0.3:
                    fa = rnd.getrandbits(1 << len(cone_a))
                    fa = warm._expand_bits(fa, pair_w.a_vars)
                queries.append((gv, cone_a, cone_b, fa))
        warm.prefetch_pairs(
            [
                (gv, warm.pair_info(ca, cb), fa, None)
                for gv, ca, cb, fa in queries
            ]
        )
        for gv, cone_a, cone_b, fa in queries:
            got = warm.decompositions_pairs(
                gv, warm.pair_info(cone_a, cone_b), fa, None
            )
            want = cold.decompositions_pairs(
                gv, cold.pair_info(cone_a, cone_b), fa, None
            )
            assert got == want, (gv, cone_a, cone_b, fa)
