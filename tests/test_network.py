"""Logic-network layer tests: structure, simulation, cuts, MFFC."""

import random

import pytest

from repro.chain import BooleanChain
from repro.network import (
    Cut,
    LogicNetwork,
    cut_function,
    enumerate_cuts,
)
from repro.truthtable import (
    TruthTable,
    binary_op_table,
    from_hex,
)


def example7_network():
    net = LogicNetwork("ex7")
    pa, pb, pc, pd = [net.add_pi() for _ in range(4)]
    n_and = net.add_node(binary_op_table(0x8), (pa, pb))
    n_xor = net.add_node(binary_op_table(0x6), (pc, pd))
    n_or = net.add_node(binary_op_table(0xE), (n_and, n_xor))
    net.add_po(n_or)
    return net, (pa, pb, pc, pd, n_and, n_xor, n_or)


def random_network(rnd, num_pis=5, num_nodes=10):
    net = LogicNetwork()
    nodes = [net.add_pi() for _ in range(num_pis)]
    for _ in range(num_nodes):
        k = rnd.choice([1, 2, 2, 3])
        fanins = [rnd.choice(nodes) for _ in range(k)]
        table = TruthTable(rnd.getrandbits(1 << k), k)
        nodes.append(net.add_node(table, fanins))
    net.add_po(nodes[-1])
    return net


class TestStructure:
    def test_basic_construction(self):
        net, sig = example7_network()
        assert net.num_gates() == 3
        assert net.depth() == 2
        assert len(net.pis) == 4

    def test_arity_validation(self):
        net = LogicNetwork()
        p = net.add_pi()
        with pytest.raises(ValueError):
            net.add_node(binary_op_table(0x8), (p,))

    def test_missing_fanin(self):
        net = LogicNetwork()
        with pytest.raises(ValueError):
            net.add_node(binary_op_table(0x8), (0, 1))

    def test_po_validation(self):
        net = LogicNetwork()
        with pytest.raises(ValueError):
            net.add_po(7)

    def test_topological_order(self):
        rnd = random.Random(1)
        net = random_network(rnd)
        order = net.topological_order()
        position = {uid: i for i, uid in enumerate(order)}
        for node in net.live_nodes():
            for f in node.fanins:
                assert position[f] < position[node.uid]

    def test_fanout_map(self):
        net, (pa, pb, pc, pd, n_and, n_xor, n_or) = example7_network()
        fanouts = net.fanout_map()
        assert fanouts[n_and] == [n_or]
        assert fanouts[n_or] == []

    def test_copy_independent(self):
        net, sig = example7_network()
        dup = net.copy()
        dup.add_pi()
        assert len(net.pis) == 4
        assert len(dup.pis) == 5

    def test_repr(self):
        net, _ = example7_network()
        assert "gates=3" in repr(net)


class TestSemantics:
    def test_example7_simulation(self):
        net, _ = example7_network()
        assert net.simulate()[0] == from_hex("8ff8", 4)

    def test_complemented_po(self):
        net, (pa, pb, pc, pd, n_and, n_xor, n_or) = example7_network()
        net.add_po(n_or, complemented=True)
        outs = net.simulate()
        assert outs[1] == ~outs[0]

    def test_constant_node(self):
        net = LogicNetwork()
        net.add_pi()
        const = net.add_node(TruthTable(1, 0), ())
        net.add_po(const)
        assert net.simulate()[0].bits == 0b11

    def test_from_chain(self):
        chain = BooleanChain(3)
        s = chain.add_gate(0x6, (0, 1))
        chain.set_output(chain.add_gate(0x8, (s, 2)), True)
        net = LogicNetwork.from_chain(chain)
        assert net.simulate()[0] == chain.simulate_output()


class TestRewireAndSweep:
    def test_replace_node(self):
        net, (pa, pb, pc, pd, n_and, n_xor, n_or) = example7_network()
        before = net.simulate()[0]
        # Replace n_and with a nand driving complemented readers.
        n_nand = net.add_node(binary_op_table(0x7), (pa, pb))
        net.replace_node(n_and, n_nand, complemented=True)
        assert net.simulate()[0] == before
        assert net.sweep_dead() == 1  # the old AND node dies

    def test_mffc(self):
        net, (pa, pb, pc, pd, n_and, n_xor, n_or) = example7_network()
        cone = net.mffc(n_or)
        assert cone == {n_or, n_and, n_xor}

    def test_mffc_respects_external_fanout(self):
        net, (pa, pb, pc, pd, n_and, n_xor, n_or) = example7_network()
        extra = net.add_node(binary_op_table(0x9), (n_and, pc))
        net.add_po(extra)
        cone = net.mffc(n_or)
        assert n_and not in cone  # shared with the new reader

    def test_splice_chain(self):
        net = LogicNetwork()
        pis = [net.add_pi() for _ in range(2)]
        chain = BooleanChain(2)
        chain.set_output(chain.add_gate(0x6, (0, 1)))
        node, complemented = net.splice_chain(chain, pis)
        net.add_po(node, complemented)
        assert net.simulate()[0].bits == 0x6

    def test_splice_const_chain(self):
        net = LogicNetwork()
        net.add_pi()
        chain = BooleanChain(1)
        chain.set_output(BooleanChain.CONST0, True)
        node, complemented = net.splice_chain(chain, [net.pis[0]])
        net.add_po(node, complemented)
        assert net.simulate()[0].bits == 0b11


class TestCuts:
    def test_trivial_cut_always_present(self):
        net, sig = example7_network()
        cuts = enumerate_cuts(net)
        for node in net.live_nodes():
            assert Cut(node.uid, (node.uid,)) in cuts[node.uid]

    def test_full_cut_function(self):
        net, (pa, pb, pc, pd, n_and, n_xor, n_or) = example7_network()
        cuts = enumerate_cuts(net, k=4)
        full = [
            cut
            for cut in cuts[n_or]
            if set(cut.leaves) == {pa, pb, pc, pd}
        ]
        assert full
        assert cut_function(net, full[0]) == from_hex("8ff8", 4)

    def test_cut_sizes_bounded(self):
        rnd = random.Random(5)
        net = random_network(rnd)
        cuts = enumerate_cuts(net, k=3)
        for cut_list in cuts.values():
            for cut in cut_list:
                assert cut.size <= 3

    def test_domination_filter(self):
        rnd = random.Random(6)
        net = random_network(rnd)
        cuts = enumerate_cuts(net, k=4)
        for cut_list in cuts.values():
            non_trivial = cut_list[:-1]
            for i, cut in enumerate(non_trivial):
                for other in non_trivial[i + 1:]:
                    assert not cut.dominates(other) or cut == other

    def test_k_validation(self):
        net, _ = example7_network()
        with pytest.raises(ValueError):
            enumerate_cuts(net, k=1)

    def test_cut_function_matches_global(self):
        """Cut functions composed with leaf globals = root global."""
        rnd = random.Random(7)
        net = random_network(rnd, num_pis=4, num_nodes=6)
        patterns = net.simulate_nodes()
        n = len(net.pis)
        cuts = enumerate_cuts(net, k=4)
        for node in net.live_nodes():
            if node.is_pi:
                continue
            for cut in cuts[node.uid][:3]:
                if cut.leaves == (node.uid,):
                    continue
                local = cut_function(net, cut)
                leaf_tables = [
                    TruthTable(patterns[leaf], n) for leaf in cut.leaves
                ]
                composed = local.compose(leaf_tables)
                assert composed.bits == patterns[node.uid]
