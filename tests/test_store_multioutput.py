"""Multi-output chain-store rows and the schema migration path."""

import random
import sqlite3

from repro.core import verify_chain_outputs
from repro.core.spec import SynthesisSpec
from repro.engine import create_engine
from repro.store import ChainStore
from repro.truthtable import from_hex
from repro.truthtable.npn import MultiNPNTransform

MAJ = from_hex("e8", 3)
FA_SUM = from_hex("96", 3)
XOR = from_hex("6", 2)
AND = from_hex("8", 2)

#: The very first shipped schema, before the exact/quarantined/
#: num_outputs migrations — kept verbatim as the migration fixture.
V1_SCHEMA = """
CREATE TABLE chains (
    num_vars    INTEGER NOT NULL,
    canon_hex   TEXT    NOT NULL,
    num_gates   INTEGER NOT NULL,
    engine      TEXT    NOT NULL,
    solutions   TEXT    NOT NULL,
    created     REAL    NOT NULL,
    PRIMARY KEY (num_vars, canon_hex, num_gates)
)
"""


def synth(functions, **kwargs):
    if len(functions) == 1:
        spec = SynthesisSpec(function=functions[0], **kwargs)
    else:
        spec = SynthesisSpec(functions=tuple(functions), **kwargs)
    return create_engine("stp").synthesize(spec)


class TestMultiOutputRows:
    def test_round_trip(self, tmp_path):
        result = synth((FA_SUM, MAJ), all_solutions=True)
        with ChainStore(tmp_path / "store.db") as store:
            assert store.lookup_multi((FA_SUM, MAJ)) is None
            assert store.put_multi((FA_SUM, MAJ), result, "stp")
            served = store.lookup_multi((FA_SUM, MAJ))
            assert served is not None
            assert served.num_gates == result.num_gates
            assert verify_chain_outputs(
                served.chains[0], (FA_SUM, MAJ)
            )

    def test_serves_joint_orbit_member(self, tmp_path):
        rng = random.Random(3)
        result = synth((FA_SUM, MAJ), all_solutions=True)
        with ChainStore(tmp_path / "store.db") as store:
            store.put_multi((FA_SUM, MAJ), result, "stp")
            for _ in range(5):
                perm = list(range(3))
                rng.shuffle(perm)
                t = MultiNPNTransform(
                    tuple(perm),
                    rng.getrandbits(3),
                    (
                        bool(rng.getrandbits(1)),
                        bool(rng.getrandbits(1)),
                    ),
                )
                member = t.apply((FA_SUM, MAJ))
                served = store.lookup_multi(member)
                assert served is not None
                assert verify_chain_outputs(
                    served.chains[0], list(member)
                )

    def test_keys_do_not_collide_with_single_output(self, tmp_path):
        multi = synth((XOR, AND))
        single = synth((XOR,))
        with ChainStore(tmp_path / "store.db") as store:
            store.put_multi((XOR, AND), multi, "stp")
            # only the multi row exists; single lookup must miss
            assert store.lookup(XOR) is None
            store.put(XOR, single, "stp")
            assert store.lookup(XOR) is not None
            assert store.lookup_multi((XOR, AND)) is not None

    def test_single_element_vector_delegates(self, tmp_path):
        result = synth((MAJ,))
        with ChainStore(tmp_path / "store.db") as store:
            assert store.put_multi((MAJ,), result, "stp")
            # written through the single-output path: plain lookup hits
            assert store.lookup(MAJ) is not None
            assert store.lookup_multi((MAJ,)) is not None

    def test_output_count_mismatch_not_stored(self, tmp_path):
        single = synth((MAJ,))
        with ChainStore(tmp_path / "store.db") as store:
            # a single-output chain cannot back a two-output row
            assert not store.put_multi((MAJ, FA_SUM), single, "stp")


class TestSchemaMigration:
    def _make_v1_db(self, path, store_with_row):
        """A database in the original shipped schema, seeded with a
        row copied from a modern store."""
        src = sqlite3.connect(store_with_row)
        row = src.execute(
            "SELECT num_vars, canon_hex, num_gates, engine, "
            "solutions, created FROM chains"
        ).fetchone()
        src.close()
        conn = sqlite3.connect(path)
        conn.execute(V1_SCHEMA)
        conn.execute(
            "INSERT INTO chains VALUES (?, ?, ?, ?, ?, ?)", row
        )
        conn.commit()
        conn.close()

    def test_pre_migration_db_still_serves(self, tmp_path):
        seed = tmp_path / "seed.db"
        result = synth((MAJ,), all_solutions=True)
        with ChainStore(seed) as store:
            store.put(MAJ, result, "stp")
        old = tmp_path / "old.db"
        self._make_v1_db(old, seed)

        with ChainStore(old) as migrated:
            columns = {
                r[1]
                for r in migrated._connection().execute(
                    "PRAGMA table_info(chains)"
                )
            }
            assert {"exact", "quarantined", "num_outputs"} <= columns
            served = migrated.lookup(MAJ)
            assert served is not None
            assert served.num_gates == result.num_gates

    def test_multi_writes_coexist_with_migrated_rows(self, tmp_path):
        seed = tmp_path / "seed.db"
        single = synth((MAJ,), all_solutions=True)
        with ChainStore(seed) as store:
            store.put(MAJ, single, "stp")
        old = tmp_path / "old.db"
        self._make_v1_db(old, seed)

        multi = synth((FA_SUM, MAJ), all_solutions=True)
        with ChainStore(old) as store:
            assert store.put_multi((FA_SUM, MAJ), multi, "stp")
            assert store.lookup(MAJ) is not None
            assert store.lookup_multi((FA_SUM, MAJ)) is not None
            rows = store._connection().execute(
                "SELECT num_outputs, COUNT(*) FROM chains "
                "GROUP BY num_outputs ORDER BY num_outputs"
            ).fetchall()
            assert rows == [(1, 1), (2, 1)]

    def test_migration_is_idempotent(self, tmp_path):
        path = tmp_path / "store.db"
        result = synth((MAJ,))
        with ChainStore(path) as store:
            store.put(MAJ, result, "stp")
        # reopening re-runs _migrate() against the migrated schema
        with ChainStore(path) as store:
            assert store.lookup(MAJ) is not None


class TestMultiQuarantine:
    def test_corrupt_multi_row_quarantined(self, tmp_path):
        result = synth((FA_SUM, MAJ))
        path = tmp_path / "store.db"
        with ChainStore(path) as store:
            store.put_multi((FA_SUM, MAJ), result, "stp")
        conn = sqlite3.connect(path)
        conn.execute("UPDATE chains SET solutions = '[[\"bogus\"]]'")
        conn.commit()
        conn.close()
        with ChainStore(path) as store:
            events = []
            assert store.lookup_multi(
                (FA_SUM, MAJ), events=events
            ) is None
            assert store.quarantined == 1
            assert events and events[0][0] == "quarantined"
            # quarantined rows stay skipped
            assert store.lookup_multi((FA_SUM, MAJ)) is None
