"""SSV exact-synthesis encoding tests."""

import pytest

from repro.sat import CDCLSolver
from repro.sat.encodings import SSVEncoder, normalize_function
from repro.truthtable import from_hex, majority, parity


def synthesize_with_encoder(function, num_steps, fence=None):
    normal, complemented = normalize_function(function)
    encoder = SSVEncoder(normal, num_steps, fence=fence)
    solver = CDCLSolver()
    if not solver.add_cnf(encoder.cnf):
        return None
    if not solver.solve():
        return None
    return encoder.decode(solver.model(), complemented)


class TestNormalize:
    def test_already_normal(self):
        f = from_hex("8", 2)
        g, complemented = normalize_function(f)
        assert g == f and not complemented

    def test_complements(self):
        f = from_hex("7", 2)  # nand: f(0,0)=1
        g, complemented = normalize_function(f)
        assert complemented and g == ~f and g.value(0) == 0


class TestEncoding:
    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError):
            SSVEncoder(from_hex("7", 2), 1)

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            SSVEncoder(from_hex("8", 2), 0)

    def test_fence_size_mismatch(self):
        with pytest.raises(ValueError):
            SSVEncoder(from_hex("8", 2), 2, fence=(1,))

    def test_and_needs_one_gate(self):
        chain = synthesize_with_encoder(from_hex("8", 2), 1)
        assert chain is not None
        assert chain.simulate_output() == from_hex("8", 2)

    def test_xor3_two_gates(self):
        assert synthesize_with_encoder(parity(3), 1) is None
        chain = synthesize_with_encoder(parity(3), 2)
        assert chain is not None
        assert chain.simulate_output() == parity(3)

    def test_maj3_at_sizes(self):
        assert synthesize_with_encoder(majority(3), 3) is None
        chain = synthesize_with_encoder(majority(3), 4)
        assert chain is not None
        assert chain.simulate_output() == majority(3)

    def test_complemented_output_path(self):
        f = ~majority(3)
        chain = synthesize_with_encoder(f, 4)
        assert chain is not None
        assert chain.simulate_output() == f
        assert chain.outputs[0][1] is True  # complemented flag used

    def test_unsat_below_optimum_example7(self):
        f = from_hex("8ff8", 4)
        assert synthesize_with_encoder(f, 2) is None
        chain = synthesize_with_encoder(f, 3)
        assert chain is not None
        assert chain.simulate_output() == f


class TestFenceEncoding:
    def test_fence_restricts_topology(self):
        f = from_hex("8ff8", 4)
        chain = synthesize_with_encoder(f, 3, fence=(2, 1))
        assert chain is not None
        assert chain.simulate_output() == f
        assert chain.depth() == 2

    def test_infeasible_fence(self):
        # parity4 cannot fit a depth-… check an impossible fence: a
        # 3-gate chain of depth 3 cannot realise 0x8ff8's structure
        # requirement? Use (1,1,1) — a path — for a function that
        # needs two independent subtrees at the bottom.
        f = from_hex("8ff8", 4)
        chain = synthesize_with_encoder(f, 3, fence=(1, 1, 1))
        assert chain is None

    def test_fence_levels_respected(self):
        chain = synthesize_with_encoder(parity(4), 3, fence=(2, 1))
        if chain is not None:
            assert chain.depth() <= 2


class TestCegarRows:
    def test_row_subset_relaxation(self):
        """Constraining fewer rows can only make the instance easier."""
        f, complemented = normalize_function(majority(3))
        full = SSVEncoder(f, 4)
        partial = SSVEncoder(f, 4, rows=[1, 2])
        assert partial.cnf.num_clauses < full.cnf.num_clauses
        solver = CDCLSolver()
        solver.add_cnf(partial.cnf)
        assert solver.solve()

    def test_blocking_clause_excludes_model(self):
        f, complemented = normalize_function(from_hex("8", 2))
        encoder = SSVEncoder(f, 1)
        solver = CDCLSolver()
        solver.add_cnf(encoder.cnf)
        assert solver.solve()
        first = encoder.decode(solver.model(), complemented)
        solver.add_clause(encoder.blocking_clause(solver.model()))
        if solver.solve():
            second = encoder.decode(solver.model(), complemented)
            assert second.signature() != first.signature()
