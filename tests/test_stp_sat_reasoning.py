"""STP reasoning (Example 2) and the Fig. 1 AllSAT solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stp import (
    M_D,
    M_I,
    M_N,
    STPSolver,
    all_sat,
    are_equivalent,
    count_solutions,
    is_contradiction,
    is_tautology,
    parse,
    prove_identity,
    solve_one,
    stp,
    swap_property_holds,
)
from repro.truthtable import TruthTable


class TestReasoning:
    def test_example2_matrix_identity(self):
        assert np.array_equal(stp(M_D, M_N), M_I)

    def test_example2_expression_identity(self):
        assert prove_identity(parse("a -> b"), parse("~a | b"))

    def test_classic_identities(self):
        pairs = [
            ("~(a & b)", "~a | ~b"),
            ("~(a | b)", "~a & ~b"),
            ("a ^ b", "(a | b) & ~(a & b)"),
            ("a <-> b", "(a -> b) & (b -> a)"),
            ("a -> (b -> c)", "(a & b) -> c"),
            ("a | (b & c)", "(a | b) & (a | c)"),
        ]
        for lhs, rhs in pairs:
            assert prove_identity(parse(lhs), parse(rhs)), (lhs, rhs)

    def test_non_identities(self):
        assert not prove_identity(parse("a -> b"), parse("b -> a"))
        assert not are_equivalent(parse("a | b"), parse("a & b"))

    def test_tautology_contradiction(self):
        assert is_tautology(parse("a | ~a"))
        assert is_tautology(parse("(a & b) -> a"))
        assert is_contradiction(parse("a & ~a"))
        assert not is_tautology(parse("a"))
        assert not is_contradiction(parse("a"))

    def test_swap_property(self):
        x = np.array([[1, 2], [3, 4]])
        assert swap_property_holds(x, np.array([[1, 0, 2]]))
        with pytest.raises(ValueError):
            swap_property_holds(x, np.ones((2, 2)))


class TestSTPSolver:
    def test_liar_puzzle(self):
        expr = parse("(a <-> ~b) & (b <-> ~c) & (c <-> (~a & ~b))")
        solver = STPSolver(expr)
        assert solver.variable_names == ("a", "b", "c")
        assert solver.is_satisfiable()
        assert solver.all_solutions() == [(0, 1, 0)]
        assert solver.solutions_as_dicts() == [{"a": 0, "b": 1, "c": 0}]

    def test_unsat(self):
        expr = parse("a & ~a")
        solver = STPSolver(expr)
        assert not solver.is_satisfiable()
        assert solver.solve() is None
        assert solver.all_solutions() == []

    @given(st.integers(0, 0xFF))
    @settings(max_examples=60, deadline=None)
    def test_allsat_equals_onset(self, bits):
        """AllSAT solutions map 1:1 onto the truth-table onset."""
        t = TruthTable(bits, 3)
        solutions = all_sat(t)
        assert len(solutions) == t.count_ones()
        for values in solutions:
            # Paper variable x_k corresponds to table variable n-k.
            row = 0
            for i, v in enumerate(values):
                if v:
                    row |= 1 << (3 - 1 - i)
            assert t.value(row) == 1

    @given(st.integers(0, 0xFFFF))
    @settings(max_examples=30, deadline=None)
    def test_count_solutions(self, bits):
        t = TruthTable(bits, 4)
        assert count_solutions(t) == t.count_ones()

    def test_solve_one_finds_model(self):
        expr = parse("(a | b) & (~a | c)")
        model = solve_one(expr)
        assert model is not None
        env = dict(zip(("a", "b", "c"), model))
        assert expr.evaluate(env) == 1

    def test_variable_name_override(self):
        t = TruthTable(0x8, 2)
        solver = STPSolver(t, variables=["p", "q"])
        assert solver.solutions_as_dicts() == [{"p": 1, "q": 1}]
        with pytest.raises(ValueError):
            STPSolver(t, variables=["p"])

    def test_matrix_input_validation(self):
        with pytest.raises(ValueError):
            STPSolver(np.ones((3, 4)))
        with pytest.raises(ValueError):
            STPSolver(np.ones((2, 3)))

    def test_depth_first_order(self):
        """Solutions come out x1-major (TRUE branch first), as in the
        Fig. 1 tree walk."""
        t = TruthTable(0xFF, 3)  # tautology: all 8 assignments
        solutions = all_sat(t)
        assert solutions[0] == (1, 1, 1)
        assert solutions[-1] == (0, 0, 0)
        assert len(solutions) == 8
