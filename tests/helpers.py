"""Shared test helpers."""

from __future__ import annotations

from repro.chain import BooleanChain


def random_chain(rnd, num_inputs: int = 4, num_gates: int = 5) -> BooleanChain:
    """A random (not necessarily meaningful) chain for property tests."""
    chain = BooleanChain(num_inputs)
    for _ in range(num_gates):
        hi = chain.num_signals
        a = rnd.randrange(hi)
        b = rnd.randrange(hi)
        while b == a:
            b = rnd.randrange(hi)
        chain.add_gate(rnd.randrange(16), (a, b))
    chain.set_output(chain.num_signals - 1, bool(rnd.getrandbits(1)))
    return chain
