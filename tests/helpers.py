"""Shared test helpers."""

from __future__ import annotations

from repro.chain import BooleanChain
from repro.core.circuit_sat import verify_chain
from repro.core.spec import SynthesisSpec
from repro.truthtable import TruthTable


def assert_chain_realizes(spec, chain: BooleanChain) -> None:
    """Oracle: ``chain`` realises the target function, checked through
    two independent code paths.

    ``spec`` may be a :class:`SynthesisSpec` or a bare
    :class:`TruthTable`.  Both the structural simulation
    (:meth:`BooleanChain.simulate_output`, which never touches the
    solvers) and the packed-cube AllSAT verifier must agree the chain
    computes the target — a disagreement between the two is reported
    distinctly because it means the *verifier* is broken, not the
    chain.
    """
    target = spec.function if isinstance(spec, SynthesisSpec) else spec
    assert isinstance(target, TruthTable)
    simulated = chain.simulate_output()
    assert simulated == target, (
        f"chain simulates to 0x{simulated.to_hex()}, "
        f"expected 0x{target.to_hex()}"
    )
    assert verify_chain(chain, target), (
        "simulation accepts the chain but the packed AllSAT verifier "
        f"rejects it for 0x{target.to_hex()} — verifier bug"
    )


def random_chain(rnd, num_inputs: int = 4, num_gates: int = 5) -> BooleanChain:
    """A random (not necessarily meaningful) chain for property tests."""
    chain = BooleanChain(num_inputs)
    for _ in range(num_gates):
        hi = chain.num_signals
        a = rnd.randrange(hi)
        b = rnd.randrange(hi)
        while b == a:
            b = rnd.randrange(hi)
        chain.add_gate(rnd.randrange(16), (a, b))
    chain.set_output(chain.num_signals - 1, bool(rnd.getrandbits(1)))
    return chain
