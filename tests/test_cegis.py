"""The CEGIS engine: sample-grown exact synthesis."""

import pytest

from repro.core.cegis import CegisSynthesizer, cegis_synthesize
from repro.engine import run_engine
from repro.runtime.errors import BudgetExceeded, SynthesisInfeasible
from repro.truthtable import from_hex, majority, parity


def assert_realizes(result, function):
    for chain in result.chains:
        assert chain.simulate_output() == function


class TestExactness:
    @pytest.mark.parametrize(
        "hexval,num_vars,optimum",
        [
            ("8ff8", 4, 3),  # the paper's worked example
            ("e8", 3, 4),  # majority-3
            ("96", 3, 2),  # parity-3
            ("6996", 4, 3),  # parity-4
            ("1", 2, 1),
            ("0000", 4, 0),  # constant: trivial chain
            ("aaaa", 4, 0),  # projection: trivial chain
        ],
    )
    def test_matches_known_optima(self, hexval, num_vars, optimum):
        function = from_hex(hexval, num_vars)
        result = cegis_synthesize(function, timeout=120)
        assert result.num_gates == optimum
        assert_realizes(result, function)

    def test_agrees_with_fen_on_random_functions(self):
        import random

        rng = random.Random(7)
        for _ in range(8):
            function = from_hex(f"{rng.randrange(1 << 8):02x}", 3)
            ours = cegis_synthesize(function, timeout=120)
            fen = run_engine("fen", function, timeout=120)
            assert ours.num_gates == fen.num_gates, function.to_hex()
            assert_realizes(ours, function)

    @pytest.mark.slow
    def test_agrees_with_fen_on_random_4var_functions(self):
        # Hard 4-var functions take minutes (CEGIS exists to race, not
        # to win every class; the third seed-7 draw stalls even fen),
        # so the 4-var sweep is slow-tier and stops at two draws.
        import random

        rng = random.Random(7)
        for _ in range(2):
            function = from_hex(f"{rng.randrange(1 << 16):04x}", 4)
            ours = cegis_synthesize(function, timeout=300)
            fen = run_engine("fen", function, timeout=300)
            assert ours.num_gates == fen.num_gates, function.to_hex()
            assert_realizes(ours, function)

    def test_registry_dispatch(self):
        result = run_engine("cegis", majority(3), timeout=120)
        assert result.num_gates == 4
        assert_realizes(result, majority(3))


class TestRefinement:
    def test_sample_stays_a_strict_subset_on_structure(self):
        # On a structured function the whole point of CEGIS is that the
        # final sample is far smaller than the full row set.
        function = parity(4)
        synth = CegisSynthesizer(initial_samples=4, refine_batch=4)
        result = synth.synthesize(function, timeout=120)
        assert result.num_gates == 3
        # candidates_generated counts solver calls: bounded rounds,
        # not one per row.
        assert result.stats.candidates_generated < function.num_rows

    def test_deterministic_across_runs(self):
        function = from_hex("8ff8", 4)
        first = cegis_synthesize(function, timeout=120)
        second = cegis_synthesize(function, timeout=120)
        assert first.num_gates == second.num_gates
        assert [c.signature() for c in first.chains] == [
            c.signature() for c in second.chains
        ]


class TestLimits:
    def test_gate_cap_raises_infeasible(self):
        synth = CegisSynthesizer(max_gates=1)
        with pytest.raises(SynthesisInfeasible):
            synth.synthesize(from_hex("8ff8", 4), timeout=120)

    def test_timeout_raises_budget_exceeded(self):
        with pytest.raises(BudgetExceeded):
            cegis_synthesize(from_hex("0016", 4), timeout=0.02)
