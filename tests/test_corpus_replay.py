"""Corpus round-trip tests and the tier-1 replay gate.

Every function in ``tests/corpus/`` — hand-picked seeds and minimized
fuzz failures alike — is replayed through the differential harness on
every ordinary test run, so a discrepancy that was ever found (and
fixed) can never silently return.
"""

import json

import pytest

from repro.verify.corpus import (
    CORPUS_VERSION,
    CorpusEntry,
    default_corpus_dir,
    load_corpus,
    save_entry,
)
from repro.verify.oracle import DifferentialHarness

CORPUS = load_corpus(default_corpus_dir())


class TestReplay:
    def test_corpus_is_not_empty(self):
        assert len(CORPUS) >= 4
        assert {e.name for e in CORPUS} >= {
            "seed-8ff8",
            "seed-e8",
            "seed-const0",
            "seed-x0",
        }

    @pytest.mark.parametrize(
        "entry", CORPUS, ids=[e.name for e in CORPUS]
    )
    def test_replay_through_differential_harness(self, entry):
        with DifferentialHarness(
            ("stp", "fen"), timeout=30.0
        ) as harness:
            report = harness.check(entry.function())
        assert report.ok, [d.to_record() for d in report.discrepancies]


class TestRoundTrip:
    def test_save_load_preserves_entry(self, tmp_path):
        entry = CorpusEntry(
            name="fuzz-7-3",
            hex="1e",
            num_vars=3,
            kind="discrepancy",
            description="packed and reference verifiers disagree",
            engines=("stp",),
            origin="repro-fuzz seed=7 instance=3 original=0x16e8/4",
            trail=("restrict x3=0 -> 0x1e/3",),
        )
        save_entry(tmp_path, entry)
        assert load_corpus(tmp_path) == [entry]

    def test_entries_sorted_by_file_name(self, tmp_path):
        for name in ("b-entry", "a-entry"):
            save_entry(
                tmp_path, CorpusEntry(name=name, hex="e8", num_vars=3)
            )
        assert [e.name for e in load_corpus(tmp_path)] == [
            "a-entry",
            "b-entry",
        ]

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []


class TestValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            CorpusEntry(name="x", hex="e8", num_vars=3, kind="exploit")

    def test_nameless_entry_rejected(self):
        with pytest.raises(ValueError, match="name"):
            CorpusEntry(name="", hex="e8", num_vars=3)

    def test_hex_must_match_arity(self):
        with pytest.raises(ValueError):
            CorpusEntry(name="x", hex="8ff8", num_vars=2)

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            CorpusEntry.from_record(
                {"version": CORPUS_VERSION + 1, "name": "x"}
            )

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            CorpusEntry.from_record(
                {"version": CORPUS_VERSION, "name": "x", "hex": "e8"}
            )

    def test_corrupt_file_fails_loudly(self, tmp_path):
        (tmp_path / "bad.json").write_text(
            json.dumps({"version": CORPUS_VERSION, "name": "bad"})
        )
        with pytest.raises(ValueError, match="corrupt corpus entry"):
            load_corpus(tmp_path)

    def test_default_dir_is_the_repo_corpus(self):
        directory = default_corpus_dir()
        assert directory.name == "corpus"
        assert (directory / "seed-8ff8.json").is_file()
