"""Cost-model and selection tests."""

import pytest

from repro.chain import (
    BooleanChain,
    COST_MODELS,
    depth,
    fanout_cost,
    gate_count,
    inverter_free_cost,
    rank_solutions,
    select_best,
    weighted_op_cost,
)


def balanced_chain():
    chain = BooleanChain(4)
    s4 = chain.add_gate(0x8, (0, 1))
    s5 = chain.add_gate(0x6, (2, 3))
    chain.set_output(chain.add_gate(0xE, (s4, s5)))
    return chain


def linear_chain():
    chain = BooleanChain(4)
    s = chain.add_gate(0x8, (0, 1))
    s = chain.add_gate(0x8, (2, s))
    chain.set_output(chain.add_gate(0x8, (3, s)))
    return chain


class TestCostModels:
    def test_gate_count(self):
        assert gate_count(balanced_chain()) == 3

    def test_depth(self):
        assert depth(balanced_chain()) == 2
        assert depth(linear_chain()) == 3

    def test_inverter_free(self):
        chain = balanced_chain()
        assert inverter_free_cost(chain) == 3
        chain2 = BooleanChain(2)
        chain2.set_output(chain2.add_gate(0x8, (0, 1)), True)
        assert inverter_free_cost(chain2) == 2

    def test_weighted(self):
        chain = balanced_chain()  # and + xor + or
        assert weighted_op_cost(chain) == pytest.approx(1 + 2 + 1)
        assert weighted_op_cost(chain, {0x8: 5.0}, default=0.0) == 5.0

    def test_fanout(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x8, (0, 1))
        chain.add_gate(0x6, (0, s))
        s3 = chain.add_gate(0xE, (s, 3))
        chain.set_output(s3)
        assert fanout_cost(chain) == 2  # s feeds two gates

    def test_registry(self):
        assert set(COST_MODELS) == {
            "gates", "depth", "inverters", "weighted", "fanout"
        }


class TestSelection:
    def test_select_best_by_depth(self):
        best = select_best([linear_chain(), balanced_chain()], "depth")
        assert best.signature() == balanced_chain().signature()

    def test_select_best_custom_callable(self):
        # prefer more gates, artificially
        best = select_best(
            [linear_chain(), balanced_chain()],
            lambda c: -c.num_gates,
        )
        assert best.num_gates == 3

    def test_rank_is_sorted_and_stable(self):
        ranked = rank_solutions(
            [linear_chain(), balanced_chain()], "depth"
        )
        costs = [cost for cost, _ in ranked]
        assert costs == sorted(costs)

    def test_empty_selection(self):
        with pytest.raises(ValueError):
            select_best([], "gates")
