"""Unit and property tests for the bit-packed truth-table substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.truthtable import (
    TruthTable,
    all_tables,
    constant,
    from_bits,
    from_function,
    from_hex,
    projection,
)


def random_table(max_vars=6):
    return st.integers(1, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable,
            st.integers(0, (1 << (1 << n)) - 1),
            st.just(n),
        )
    )


class TestConstruction:
    def test_rejects_negative_vars(self):
        with pytest.raises(ValueError):
            TruthTable(0, -1)

    def test_rejects_oversized_bits(self):
        with pytest.raises(ValueError):
            TruthTable(1 << 4, 2)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            TruthTable(-1, 2)

    def test_zero_vars(self):
        t = TruthTable(1, 0)
        assert t.num_rows == 1
        assert t.value(0) == 1

    def test_from_hex_roundtrip(self):
        t = from_hex("8ff8", 4)
        assert t.to_hex() == "8ff8"
        assert from_hex("0x8FF8", 4) == t

    def test_from_bits(self):
        t = from_bits([0, 1, 1, 0], 2)
        assert t.bits == 0x6

    def test_from_bits_wrong_length(self):
        with pytest.raises(ValueError):
            from_bits([0, 1], 2)

    def test_from_bits_bad_value(self):
        with pytest.raises(ValueError):
            from_bits([0, 2, 0, 0], 2)

    def test_from_function(self):
        t = from_function(lambda a, b: a and b, 2)
        assert t.bits == 0x8

    def test_constant(self):
        assert constant(0, 3).bits == 0
        assert constant(1, 3).bits == 0xFF
        with pytest.raises(ValueError):
            constant(2, 3)

    def test_projection(self):
        for n in range(1, 5):
            for v in range(n):
                p = projection(v, n)
                for m in range(1 << n):
                    assert p.value(m) == (m >> v) & 1

    def test_projection_complemented(self):
        p = projection(1, 3, complemented=True)
        assert p == ~projection(1, 3)

    def test_projection_out_of_range(self):
        with pytest.raises(IndexError):
            projection(3, 3)

    def test_all_tables_count(self):
        assert sum(1 for _ in all_tables(2)) == 16


class TestEvaluation:
    def test_call_matches_value(self):
        t = from_hex("cafe", 4)
        for m in range(16):
            inputs = [(m >> i) & 1 for i in range(4)]
            assert t(*inputs) == t.value(m)

    def test_call_wrong_arity(self):
        with pytest.raises(ValueError):
            from_hex("8", 2)(1)

    def test_call_non_boolean(self):
        with pytest.raises(ValueError):
            from_hex("8", 2)(1, 2)

    def test_value_out_of_range(self):
        with pytest.raises(IndexError):
            from_hex("8", 2).value(4)

    def test_rows_onset_offset(self):
        t = from_hex("6", 2)
        assert list(t.rows()) == [0, 1, 1, 0]
        assert t.onset() == [1, 2]
        assert t.offset() == [0, 3]
        assert t.count_ones() == 2


class TestOperators:
    def test_and_or_xor_not(self):
        a, b = projection(0, 2), projection(1, 2)
        assert (a & b).bits == 0x8
        assert (a | b).bits == 0xE
        assert (a ^ b).bits == 0x6
        assert (~a).bits == 0b0101

    def test_incompatible_arity(self):
        with pytest.raises(ValueError):
            projection(0, 2) & projection(0, 3)

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            projection(0, 2) & 3

    def test_equality_and_hash(self):
        a = from_hex("8", 2)
        b = from_hex("8", 2)
        assert a == b and hash(a) == hash(b)
        assert a != from_hex("8", 2).extend(3)
        assert a != "8"

    @given(random_table())
    def test_double_negation(self, t):
        assert ~~t == t

    @given(random_table(), random_table())
    def test_de_morgan(self, a, b):
        if a.num_vars != b.num_vars:
            return
        assert ~(a & b) == (~a | ~b)


class TestCofactors:
    def test_cofactor_fixes_variable(self):
        t = from_function(lambda a, b, c: (a and b) or c, 3)
        c1 = t.cofactor(2, 1)
        assert c1.is_constant() and c1.bits == c1.num_rows_mask()

    def test_cofactor_bad_args(self):
        t = from_hex("8", 2)
        with pytest.raises(IndexError):
            t.cofactor(2, 0)
        with pytest.raises(ValueError):
            t.cofactor(0, 2)

    @given(random_table(), st.integers(0, 5), st.integers(0, 1))
    def test_cofactor_independent_of_var(self, t, var, val):
        var = var % t.num_vars
        cof = t.cofactor(var, val)
        assert not cof.depends_on(var)

    @given(random_table(), st.integers(0, 5))
    def test_shannon_expansion(self, t, var):
        var = var % t.num_vars
        x = projection(var, t.num_vars)
        rebuilt = (x & t.cofactor(var, 1)) | (~x & t.cofactor(var, 0))
        assert rebuilt == t

    def test_restrict_shrinks(self):
        t = from_function(lambda a, b, c: (a and b) or c, 3)
        assert t.restrict(2, 0).bits == 0x8
        assert t.restrict(2, 0).num_vars == 2

    @given(random_table(), st.integers(0, 5))
    def test_quantification(self, t, var):
        var = var % t.num_vars
        assert t.exists(var) == (t.cofactor(var, 0) | t.cofactor(var, 1))
        assert t.forall(var) == (t.cofactor(var, 0) & t.cofactor(var, 1))


class TestSupport:
    def test_support_full(self):
        assert from_hex("8ff8", 4).support() == (0, 1, 2, 3)

    def test_support_partial(self):
        t = projection(1, 4)
        assert t.support() == (1,)
        assert t.support_size() == 1

    def test_support_empty(self):
        assert constant(1, 3).support() == ()

    def test_remove_vacuous(self):
        t = from_function(lambda a, b, c: a ^ c, 3)
        shrunk = t.remove_vacuous_variable(1)
        assert shrunk.num_vars == 2
        assert shrunk == from_function(lambda a, c: a ^ c, 2)

    def test_remove_vacuous_rejects_support_var(self):
        with pytest.raises(ValueError):
            from_hex("8", 2).remove_vacuous_variable(0)

    @given(random_table())
    def test_extend_preserves_function(self, t):
        big = t.extend(t.num_vars + 2)
        assert big.support() == t.support()
        for m in range(t.num_rows):
            assert big.value(m) == t.value(m)


class TestPermutation:
    @given(random_table(), st.randoms())
    @settings(max_examples=40)
    def test_permute_roundtrip(self, t, rnd):
        perm = list(range(t.num_vars))
        rnd.shuffle(perm)
        inverse = [0] * len(perm)
        for i, p in enumerate(perm):
            inverse[p] = i
        assert t.permute(perm).permute(inverse) == t

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            from_hex("8", 2).permute([0, 0])

    @given(random_table(), st.integers(0, 5))
    def test_flip_involution(self, t, var):
        var = var % t.num_vars
        assert t.flip_var(var).flip_var(var) == t

    def test_swap_vars(self):
        t = from_function(lambda a, b: a and not b, 2)
        assert t.swap_vars(0, 1) == from_function(
            lambda a, b: b and not a, 2
        )

    def test_flip_semantics(self):
        t = projection(0, 2)
        assert t.flip_var(0) == ~t


class TestCompose:
    def test_compose_identity(self):
        t = from_hex("cafe", 4)
        inner = [projection(i, 4) for i in range(4)]
        assert t.compose(inner) == t

    def test_compose_arity_mismatch(self):
        with pytest.raises(ValueError):
            from_hex("8", 2).compose([projection(0, 3)])

    def test_compose_inner_mismatch(self):
        with pytest.raises(ValueError):
            from_hex("8", 2).compose([projection(0, 3), projection(0, 2)])

    @given(random_table(3), st.randoms())
    @settings(max_examples=30)
    def test_compose_semantics(self, outer, rnd):
        n_inner = 3
        inner = [
            TruthTable(rnd.getrandbits(1 << n_inner), n_inner)
            for _ in range(outer.num_vars)
        ]
        composed = outer.compose(inner)
        for m in range(1 << n_inner):
            row = 0
            for i, g in enumerate(inner):
                row |= g.value(m) << i
            assert composed.value(m) == outer.value(row)
