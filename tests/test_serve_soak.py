"""Soak/chaos harness for the serving stack (nightly tier, ``slow``).

The fast serve suite pins down each serving behaviour in isolation;
this module is the ISSUE-mandated lock-down of their *composition*
under sustained hostile load: waves of concurrent requests across
several NPN classes with mixed priorities and tiny deadlines, while a
wildcard fault plan crashes engine attempts mid-flight and the
scheduler recycles its dispatcher threads underneath everything.

Three invariants must hold no matter how the chaos interleaves:

1. **No stuck waiters** — every request resolves (the gather below
   runs under a hard ``wait_for``); a lost wake-up or a leaked
   coalesce future would hang it.
2. **No leaked coalesce state** — after the storm, the service's
   in-flight map is empty and request IDs are exactly the contiguous
   range ``1..N`` (nothing double-counted, nothing dropped).
3. **Zero incorrect chains** — every chain in every answered response
   re-verifies against the *caller's own* truth table via the packed
   bit-parallel verifier.  Coalescing + inverse NPN transforms +
   worker crashes must never cross wires.

A second test drives the real ``repro-serve --procs 2`` process group
over HTTP to the same standard, then SIGTERMs it and requires a clean
(exit 0) coordinated drain.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.parallel.scheduler import BatchScheduler
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.serve.service import SynthesisRequest, SynthesisService
from repro.truthtable import from_hex
from repro.truthtable.npn import NPNTransform

from .helpers import assert_chain_realizes

pytestmark = pytest.mark.slow

# Orbit members across four distinct 3-var NPN classes; requests drawn
# round-robin so the storm mixes coalescible and non-coalescible work.
_REPS = [from_hex(h, 3) for h in ("e8", "16", "96", "06")]
_MEMBERS = [
    transform.apply(rep)
    for rep in _REPS
    for transform in (
        NPNTransform((0, 1, 2), 0b000, False),
        NPNTransform((1, 2, 0), 0b010, False),
        NPNTransform((2, 0, 1), 0b101, True),
    )
]

_PRIORITIES = ["high", "normal", "low"]


def _chaos_service():
    """A pool under active sabotage: early engine attempts crash (a
    wildcard plan that burns out), dispatcher threads recycle every
    few tasks — the "workers killed mid-flight" half of the chaos."""
    plan = FaultPlan(
        {FaultPlan.WILDCARD: FaultSpec(kind="crash", times=10)}
    )
    scheduler = BatchScheduler({}, 4, queue_depth=0).start(
        recycle_after=5, stop_on_error=False
    )
    service = SynthesisService(
        scheduler,
        engines=("fen",),
        fault_plan=plan,
        default_timeout=30.0,
    )
    return scheduler, service


class TestServiceSoak:
    def test_burst_waves_with_faults_and_deadlines(self):
        scheduler, service = _chaos_service()
        waves = 5
        per_wave = len(_MEMBERS)  # 12 concurrent requests per wave

        def build(wave: int, index: int) -> SynthesisRequest:
            member = _MEMBERS[index]
            priority = _PRIORITIES[(wave + index) % len(_PRIORITIES)]
            payload = {
                "function": member.to_hex(),
                "vars": 3,
                "priority": priority,
            }
            # A third of the storm carries deadlines, some of them
            # hopeless (sub-millisecond) — those must come back 504
            # ("expired"), never wrong, never hung.
            if index % 3 == 0:
                payload["deadline_ms"] = (
                    0.01 if (wave + index) % 2 else 30_000
                )
            return SynthesisRequest.from_payload(payload)

        async def storm():
            responses = []
            for wave in range(waves):
                batch = await asyncio.gather(
                    *(
                        service.synthesize(build(wave, index))
                        for index in range(per_wave)
                    )
                )
                responses.extend(batch)
                # A breather between waves lets recycling kick in.
                await asyncio.sleep(0.02)
            return responses

        try:
            responses = asyncio.run(
                asyncio.wait_for(storm(), timeout=300.0)
            )
        finally:
            scheduler.shutdown(cancel_queued=True)

        total = waves * per_wave
        assert len(responses) == total

        # -- invariant 2: no leaked coalesce state, contiguous IDs --
        assert not service._inflight
        ids = [response.request_id for response in responses]
        assert sorted(ids) == list(range(1, total + 1))
        assert service.metrics.requests == total

        # -- invariant 3: zero incorrect chains ---------------------
        statuses: dict[str, int] = {}
        for index_all, response in enumerate(responses):
            member = _MEMBERS[index_all % per_wave]
            statuses[response.status] = (
                statuses.get(response.status, 0) + 1
            )
            if response.chains:
                for chain in response.chains:
                    assert_chain_realizes(member, chain)
            if response.status == "expired":
                assert not response.chains
        # The fault plan burns out, so the storm must end with real
        # answers — and the hopeless deadlines must have expired.
        assert statuses.get("ok", 0) > 0
        assert service.metrics.expired > 0
        # Coalescing stayed live through the chaos.
        assert service.metrics.coalesced > 0

    def test_no_stuck_waiters_when_worker_killed_mid_flight(self):
        """Launcher's job crashes hard (worker thread dies) — every
        coalesced waiter still resolves with a failure status, and the
        in-flight entry is reaped."""
        plan = FaultPlan(
            {FaultPlan.WILDCARD: FaultSpec(kind="crash", times=None)}
        )
        scheduler = BatchScheduler({}, 2, queue_depth=0).start(
            stop_on_error=False
        )
        service = SynthesisService(
            scheduler,
            engines=("fen",),
            fault_plan=plan,
            default_timeout=10.0,
        )

        async def drive():
            return await asyncio.gather(
                *(
                    service.synthesize(
                        SynthesisRequest(functions=(_MEMBERS[0],))
                    )
                    for _ in range(6)
                )
            )

        try:
            responses = asyncio.run(
                asyncio.wait_for(drive(), timeout=120.0)
            )
        finally:
            scheduler.shutdown(cancel_queued=True)
        assert len(responses) == 6
        assert not service._inflight
        for response in responses:
            assert response.status == "crash"
            assert not response.chains


class TestMultiProcSoak:
    def test_procs2_burst_then_clean_sigterm(self, tmp_path):
        """The real --procs 2 group absorbs a concurrent HTTP burst
        with zero wrong chains, reports the full request count via
        /metrics/all, and drains to exit 0 on SIGTERM."""
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve.cli",
                "--port",
                "0",
                "--procs",
                "2",
                "--jobs",
                "2",
                "--store",
                str(tmp_path / "chains.db"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("listening on ")
            host, port = banner.rsplit(" ", 1)[1].rsplit(":", 1)
            port = int(port)

            async def post(payload):
                reader, writer = await asyncio.open_connection(
                    host, port
                )
                try:
                    body = json.dumps(payload).encode()
                    writer.write(
                        (
                            "POST /synthesize HTTP/1.1\r\nHost: s\r\n"
                            f"Content-Length: {len(body)}\r\n"
                            "Connection: close\r\n\r\n"
                        ).encode()
                        + body
                    )
                    await writer.drain()
                    raw = await asyncio.wait_for(reader.read(), 60.0)
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                head, _, body = raw.partition(b"\r\n\r\n")
                return int(head.split(b" ", 2)[1]), json.loads(body)

            async def get_json(path):
                reader, writer = await asyncio.open_connection(
                    host, port
                )
                try:
                    writer.write(
                        f"GET {path} HTTP/1.1\r\nHost: s\r\n"
                        "Connection: close\r\n\r\n".encode()
                    )
                    await writer.drain()
                    raw = await asyncio.wait_for(reader.read(), 30.0)
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                return json.loads(raw.partition(b"\r\n\r\n")[2])

            async def burst():
                requests = [
                    {
                        "function": _MEMBERS[i % len(_MEMBERS)].to_hex(),
                        "vars": 3,
                        "priority": _PRIORITIES[i % 3],
                    }
                    for i in range(36)
                ]
                results = await asyncio.gather(
                    *(post(payload) for payload in requests)
                )
                aggregate = await get_json("/metrics/all")
                return requests, results, aggregate

            requests, results, aggregate = asyncio.run(
                asyncio.wait_for(burst(), timeout=240.0)
            )
            for payload, (status, body) in zip(requests, results):
                assert status in (200, 203), body
                table = from_hex(payload["function"], 3)
                from repro.store.serialize import chain_from_record

                for record in body["chains"]:
                    assert_chain_realizes(
                        table, chain_from_record(record)
                    )
            assert aggregate["procs"] == 2
            assert aggregate["unreachable"] == []
            assert (
                aggregate["merged"]["serving"]["requests"]
                >= len(requests)
            )

            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=90)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert rc == 0
        stderr = proc.stderr.read()
        assert stderr.count("stopped") == 2
