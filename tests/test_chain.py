"""Boolean chain data-structure tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import BooleanChain, Gate
from repro.truthtable import from_hex


from tests.helpers import random_chain


class TestGate:
    def test_arity_and_table(self):
        g = Gate(0x8, (0, 1))
        assert g.arity == 2
        assert g.local_table().bits == 0x8
        assert "and" in g.describe()

    def test_three_input_gate(self):
        g = Gate(0xE8, (0, 1, 2))
        assert g.arity == 3
        assert "lut" in g.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            Gate(0x10, (0, 1))  # too wide for 2 inputs
        with pytest.raises(ValueError):
            Gate(0x1, ())


class TestConstruction:
    def test_add_gate_indices(self):
        chain = BooleanChain(3)
        assert chain.add_gate(0x8, (0, 1)) == 3
        assert chain.add_gate(0x6, (2, 3)) == 4
        assert chain.num_gates == 2
        assert chain.num_signals == 5

    def test_forward_reference_rejected(self):
        chain = BooleanChain(2)
        with pytest.raises(ValueError):
            chain.add_gate(0x8, (0, 2))

    def test_output_validation(self):
        chain = BooleanChain(2)
        with pytest.raises(ValueError):
            chain.set_output(5)
        chain.set_output(1)
        chain.set_output(BooleanChain.CONST0, True)
        assert chain.outputs == ((1, False), (-1, True))

    def test_constructor_from_gates(self):
        gates = [Gate(0x8, (0, 1)), Gate(0x6, (2, 3))]
        chain = BooleanChain(3, gates, [(4, False)])
        assert chain.num_gates == 2
        assert chain.gate(3).op == 0x8

    def test_gate_accessor(self):
        chain = BooleanChain(2)
        chain.add_gate(0x8, (0, 1))
        with pytest.raises(IndexError):
            chain.gate(0)
        assert chain.gate(2).fanins == (0, 1)


class TestSemantics:
    def test_example7_simulation(self):
        chain = BooleanChain(4)
        s4 = chain.add_gate(0x6, (2, 3))  # xor(c, d)
        s5 = chain.add_gate(0x8, (0, 1))  # and(a, b)
        s6 = chain.add_gate(0xE, (s4, s5))
        chain.set_output(s6)
        assert chain.simulate_output() == from_hex("8ff8", 4)

    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_evaluate_matches_simulation(self, seed):
        chain = random_chain(random.Random(seed))
        tables = chain.simulate()
        for m in range(1 << chain.num_inputs):
            inputs = [(m >> i) & 1 for i in range(chain.num_inputs)]
            values = chain.evaluate(inputs)
            for table, value in zip(tables, values):
                assert table.value(m) == value

    def test_evaluate_arity_check(self):
        chain = BooleanChain(2)
        chain.add_gate(0x8, (0, 1))
        chain.set_output(2)
        with pytest.raises(ValueError):
            chain.evaluate([1])

    def test_const_output(self):
        chain = BooleanChain(3)
        chain.set_output(BooleanChain.CONST0)
        assert chain.simulate_output().bits == 0
        chain2 = BooleanChain(3)
        chain2.set_output(BooleanChain.CONST0, True)
        assert chain2.simulate_output().bits == 0xFF
        assert chain2.evaluate([0, 1, 0]) == [1]

    def test_complemented_output(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x8, (0, 1))
        chain.set_output(s, True)
        assert chain.simulate_output() == from_hex("7", 2)

    def test_no_output_errors(self):
        chain = BooleanChain(2)
        with pytest.raises(ValueError):
            chain.simulate()
        with pytest.raises(ValueError):
            chain.depth()


class TestStructure:
    def test_levels_and_depth(self):
        chain = BooleanChain(4)
        s4 = chain.add_gate(0x6, (2, 3))
        s5 = chain.add_gate(0x8, (0, 1))
        s6 = chain.add_gate(0xE, (s4, s5))
        chain.set_output(s6)
        assert chain.level(0) == 0
        assert chain.level(s4) == 1
        assert chain.level(s6) == 2
        assert chain.depth() == 2

    def test_fanout_counts(self):
        chain = BooleanChain(2)
        s2 = chain.add_gate(0x8, (0, 1))
        s3 = chain.add_gate(0x6, (0, s2))
        chain.set_output(s3)
        counts = chain.fanout_counts()
        assert counts[0] == 2  # feeds both gates
        assert counts[s2] == 1
        assert counts[s3] == 1  # the output

    def test_signature_equality_hash(self):
        rnd = random.Random(3)
        a = random_chain(rnd)
        b = BooleanChain(
            a.num_inputs, a.gates, a.outputs
        )
        assert a == b and hash(a) == hash(b)
        assert a != BooleanChain(a.num_inputs)

    def test_validate(self):
        chain = BooleanChain(2)
        with pytest.raises(ValueError):
            chain.validate()
        chain.set_output(0)
        chain.validate()

    def test_format_and_repr(self):
        chain = BooleanChain(2)
        s = chain.add_gate(0x8, (0, 1))
        chain.set_output(s, True)
        text = chain.format()
        assert "s2 = 0x8(x0, x1)" in text
        assert "out = ~s2" in text
        assert "gates=1" in repr(chain)

    def test_format_const_output(self):
        chain = BooleanChain(1)
        chain.set_output(BooleanChain.CONST0, True)
        assert "out = ~0" in chain.format()
