"""Smoke tests: the example scripts must run end to end.

The heavier examples (cost-aware selection over the full MAJ3 solution
set, solver comparison) are exercised with reduced scope elsewhere in
the suite; here we run the two fast entry points exactly as a user
would.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "optimum size: 3 gates" in out
    assert "PASS" in out


def test_liar_puzzle(capsys):
    out = run_example("liar_puzzle.py", capsys)
    assert "only b is honest" in out
    assert "True" in out


@pytest.mark.slow
def test_dsd_workloads(capsys):
    out = run_example("dsd_workloads.py", capsys)
    assert "fully DSD-decomposable" in out
    assert "prime block" in out
