"""Differential oracle tests: clean engines pass, planted bugs fail.

The acceptance path: a deliberately wrong engine — the real FEN
adapter with one gate operator mutated — must be caught as a
``realization`` discrepancy and shrunk to a reproducer of at most
three inputs.
"""

from repro.chain import BooleanChain
from repro.core.spec import Deadline, SynthesisResult
from repro.engine import run_engine
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.truthtable import from_hex
from repro.verify import DifferentialHarness, shrink_function


def mutant_fen(function, timeout, **kwargs):
    """The real FEN engine with the first gate's operator flipped.

    XOR-ing the op code with 0x6 turns AND into OR, XOR into XNOR,
    and so on — a structurally valid chain computing the wrong
    function, exactly the bug class the oracle exists to catch.
    """
    result = run_engine("fen", function, timeout, **kwargs)
    mutated = []
    for chain in result.chains:
        if not chain.gates:
            mutated.append(chain)
            continue
        rebuilt = BooleanChain(chain.num_inputs)
        first = chain.gates[0]
        rebuilt.add_gate(first.op ^ 0x6, first.fanins)
        for gate in chain.gates[1:]:
            rebuilt.add_gate(gate.op, gate.fanins)
        for signal, complemented in chain.outputs:
            rebuilt.set_output(signal, complemented)
        mutated.append(rebuilt)
    return SynthesisResult(
        spec=result.spec,
        chains=mutated,
        num_gates=result.num_gates,
        runtime=result.runtime,
    )


class TestCleanEngines:
    def test_exact_engines_agree_on_example7(self):
        with DifferentialHarness(("stp", "fen"), timeout=30.0) as harness:
            report = harness.check(from_hex("8ff8", 4))
        assert report.ok
        gates = {o.num_gates for o in report.observations}
        assert gates == {3}
        assert all(o.status == "ok" for o in report.observations)

    def test_inexact_engine_is_excluded_from_optimality(self):
        # hier is not exact: its (possibly larger) chains must still
        # realize the target, but its gate count is not cross-checked.
        with DifferentialHarness(("fen", "hier"), timeout=30.0) as harness:
            report = harness.check(from_hex("e8", 3))
        assert report.ok

    def test_report_record_is_json_shaped(self):
        with DifferentialHarness(
            ("fen",), timeout=30.0, check_store=False
        ) as harness:
            record = harness.check(from_hex("e8", 3)).to_record()
        assert record["function"] == "e8"
        assert record["observations"][0]["engine"] == "fen"
        assert record["discrepancies"] == []


class TestPlantedBugs:
    def test_mutant_engine_is_caught(self):
        """Acceptance: a wrong-operator mutation is detected and the
        failing function shrinks to at most three inputs."""
        with DifferentialHarness(
            (("mutant", mutant_fen),),
            timeout=30.0,
            check_store=False,
        ) as harness:
            report = harness.check(from_hex("8ff8", 4))
            assert not report.ok
            kinds = {d.kind for d in report.discrepancies}
            assert "realization" in kinds

            result = shrink_function(
                from_hex("8ff8", 4),
                lambda t: bool(harness.check(t).discrepancies),
                max_evaluations=100,
            )
        assert result.minimized.num_vars <= 3
        assert result.reduced

    def test_optimality_disagreement_is_caught(self):
        def padded_fen(function, timeout, **kwargs):
            result = run_engine("fen", function, timeout, **kwargs)
            return SynthesisResult(
                spec=result.spec,
                chains=result.chains,
                num_gates=result.num_gates + 1,
                runtime=result.runtime,
            )

        with DifferentialHarness(
            ("fen", ("padded", padded_fen)),
            timeout=30.0,
            check_store=False,
        ) as harness:
            report = harness.check(from_hex("e8", 3))
        assert [d.kind for d in report.discrepancies] == ["optimality"]

    def test_exact_override_silences_inexact_fixture(self):
        def padded_fen(function, timeout, **kwargs):
            result = run_engine("fen", function, timeout, **kwargs)
            return SynthesisResult(
                spec=result.spec,
                chains=result.chains,
                num_gates=result.num_gates + 1,
                runtime=result.runtime,
            )

        with DifferentialHarness(
            ("fen", ("padded", padded_fen)),
            timeout=30.0,
            check_store=False,
            exact_overrides={"padded": False},
        ) as harness:
            assert harness.check(from_hex("e8", 3)).ok


class TestInjectedFaults:
    def test_corrupt_fault_is_a_realization_discrepancy(self):
        plan = FaultPlan(
            {FaultPlan.WILDCARD: FaultSpec("corrupt", times=None)}
        )
        with DifferentialHarness(
            ("fen",), timeout=30.0, fault_plan=plan
        ) as harness:
            report = harness.check(from_hex("e8", 3))
        kinds = {d.kind for d in report.discrepancies}
        assert "realization" in kinds
        # The corrupt chain uses a CONST0 output, whose reference-path
        # semantics deliberately differ: no false kernel alarm.
        assert "kernel" not in kinds

    def test_crash_fault_is_tolerated_not_reported(self):
        plan = FaultPlan(
            {FaultPlan.WILDCARD: FaultSpec("crash", times=None)}
        )
        with DifferentialHarness(
            ("fen",), timeout=30.0, fault_plan=plan
        ) as harness:
            report = harness.check(from_hex("e8", 3))
        assert report.ok
        assert report.observations[0].status == "crash"


class TestDeadline:
    def test_expired_deadline_skips_engines(self):
        with DifferentialHarness(
            ("stp", "fen"), timeout=30.0, check_store=False
        ) as harness:
            report = harness.check(
                from_hex("8ff8", 4), deadline=Deadline(0.0)
            )
        assert report.ok
        assert [o.status for o in report.observations] == [
            "skipped",
            "skipped",
        ]


class TestConfiguration:
    def test_empty_engines_falls_back_to_registry(self):
        from repro.engine import engine_names

        with DifferentialHarness((), check_store=False) as harness:
            assert harness._engines == list(engine_names())
