"""Parallel batch-synthesis scheduler tests.

Unit tests drive :class:`BatchScheduler` with fake executors (dispatch
order, result ordering, worker accounting, error propagation, bounded
queue); integration tests check the acceptance property that aggregate
suite results are identical regardless of ``jobs``, and that
checkpoint/resume keeps working under concurrency.
"""

import io
import json
import threading
import time

import pytest

from repro.bench.runner import (
    Algorithm,
    default_algorithms,
    run_suite,
)
from repro.bench.suites import get_suite
from repro.parallel import (
    BatchScheduler,
    BatchTask,
    ProgressReporter,
    expected_cost,
)
from repro.runtime.checkpoint import CheckpointLog, instance_key
from repro.runtime.executor import ExecutionOutcome
from repro.truthtable import from_hex


def _outcome(function, status="ok"):
    out = ExecutionOutcome(
        function_hex=function.to_hex(),
        num_vars=function.num_vars,
        status=status,
        engine="fake",
        runtime=0.001,
    )
    if status == "ok":
        out.result = object()  # .solved only checks non-None
    return out


class FakeExecutor:
    """In-process stand-in recording call order."""

    def __init__(self, status_for=None, raise_on=None, delay=0.0):
        self.calls = []
        self._status_for = status_for or {}
        self._raise_on = raise_on or set()
        self._delay = delay
        self._lock = threading.Lock()

    def run(self, function, timeout):
        with self._lock:
            self.calls.append(function.to_hex())
        if self._delay:
            time.sleep(self._delay)
        if function.to_hex() in self._raise_on:
            raise RuntimeError("executor blew up")
        status = self._status_for.get(function.to_hex(), "ok")
        return _outcome(function, status)


def _tasks(hexes, num_vars=4, algorithm="STP", timeout=10.0):
    return [
        BatchTask(
            index=i,
            algorithm=algorithm,
            function=from_hex(h, num_vars),
            timeout=timeout,
        )
        for i, h in enumerate(hexes)
    ]


class TestExpectedCost:
    def test_support_dominates(self):
        narrow = from_hex("aaaa", 4)  # f = x0: support 1
        wide = from_hex("8ff8", 4)  # full support
        assert expected_cost(narrow) < expected_cost(wide)

    def test_balance_breaks_ties(self):
        skewed = from_hex("0001", 4)  # 1 one
        balanced = from_hex("8ff8", 4)  # 8 ones
        assert expected_cost(skewed) < expected_cost(balanced)


class TestSchedulerUnit:
    def test_results_line_up_with_task_order(self):
        hexes = ["8ff8", "aaaa", "0001", "cafe", "6996"]
        tasks = _tasks(hexes)
        scheduler = BatchScheduler({"STP": FakeExecutor()}, jobs=3)
        outcomes = scheduler.run(tasks)
        assert [o.function_hex for o in outcomes] == hexes

    def test_dispatch_is_longest_expected_first(self):
        hexes = ["0001", "8ff8", "aaaa", "6996"]
        tasks = _tasks(hexes)
        executor = FakeExecutor()
        scheduler = BatchScheduler({"STP": executor}, jobs=1)
        scheduler.run(tasks)
        costs = [
            expected_cost(from_hex(h, 4)) for h in executor.calls
        ]
        assert costs == sorted(costs, reverse=True)

    def test_worker_accounting(self):
        hexes = ["8ff8", "aaaa", "0001", "cafe"]
        tasks = _tasks(hexes)
        executor = FakeExecutor(
            status_for={"aaaa": "timeout", "cafe": "crash"}
        )
        scheduler = BatchScheduler({"STP": executor}, jobs=2)
        scheduler.run(tasks)
        totals = {"tasks": 0, "solved": 0, "timeouts": 0, "crashes": 0}
        for stats in scheduler.worker_stats:
            record = stats.to_record()
            for field in totals:
                totals[field] += record[field]
        assert totals == {
            "tasks": 4, "solved": 2, "timeouts": 1, "crashes": 1,
        }

    def test_on_complete_sees_every_task(self):
        tasks = _tasks(["8ff8", "aaaa", "0001"])
        seen = []
        scheduler = BatchScheduler(
            {"STP": FakeExecutor()},
            jobs=2,
            on_complete=lambda task, outcome, worker: seen.append(
                (task.index, worker)
            ),
        )
        scheduler.run(tasks)
        assert sorted(i for i, _ in seen) == [0, 1, 2]
        assert all(0 <= w < 2 for _, w in seen)

    def test_executor_error_propagates_without_hanging(self):
        tasks = _tasks(["8ff8", "aaaa", "0001", "cafe", "6996"])
        executor = FakeExecutor(raise_on={"8ff8"})
        scheduler = BatchScheduler({"STP": executor}, jobs=2)
        with pytest.raises(RuntimeError, match="blew up"):
            scheduler.run(tasks)

    def test_bounded_queue_makes_progress(self):
        hexes = [f"{i:04x}" for i in range(40)]
        tasks = _tasks(hexes)
        scheduler = BatchScheduler(
            {"STP": FakeExecutor(delay=0.001)}, jobs=4, queue_depth=2
        )
        outcomes = scheduler.run(tasks)
        assert len(outcomes) == 40
        assert all(o is not None for o in outcomes)

    def test_rejects_duplicate_indexes(self):
        task = _tasks(["8ff8"])[0]
        scheduler = BatchScheduler({"STP": FakeExecutor()}, jobs=1)
        with pytest.raises(ValueError, match="unique"):
            scheduler.run([task, task])

    def test_rejects_unknown_algorithm(self):
        tasks = _tasks(["8ff8"], algorithm="NOPE")
        scheduler = BatchScheduler({"STP": FakeExecutor()}, jobs=1)
        with pytest.raises(ValueError, match="NOPE"):
            scheduler.run(tasks)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            BatchScheduler({"STP": FakeExecutor()}, jobs=0)

    def test_empty_batch(self):
        scheduler = BatchScheduler({"STP": FakeExecutor()}, jobs=2)
        assert scheduler.run([]) == []


class TestResidentPool:
    """The long-lived start()/submit()/drain()/shutdown() lifecycle."""

    def test_submit_returns_future_with_outcome(self):
        scheduler = BatchScheduler({"STP": FakeExecutor()}, jobs=2)
        scheduler.start()
        try:
            futures = [
                scheduler.submit(t) for t in _tasks(["8ff8", "aaaa"])
            ]
            outcomes = [f.result(timeout=10) for f in futures]
            assert [o.function_hex for o in outcomes] == [
                "8ff8", "aaaa",
            ]
        finally:
            scheduler.shutdown()
        assert not scheduler.started

    def test_pool_survives_executor_exception(self):
        """Resident mode: one poisoned request fails its own future
        but the pool keeps serving later submissions."""
        executor = FakeExecutor(raise_on={"8ff8"})
        scheduler = BatchScheduler({"STP": executor}, jobs=1)
        scheduler.start()
        try:
            bad, good = [
                scheduler.submit(t) for t in _tasks(["8ff8", "aaaa"])
            ]
            with pytest.raises(RuntimeError, match="blew up"):
                bad.result(timeout=10)
            assert good.result(timeout=10).function_hex == "aaaa"
        finally:
            scheduler.shutdown()

    def test_submit_call_runs_arbitrary_closures(self):
        scheduler = BatchScheduler({}, jobs=2)
        scheduler.start()
        try:
            future = scheduler.submit_call("custom", lambda: 42)
            assert future.result(timeout=10) == 42
        finally:
            scheduler.shutdown()

    def test_drain_waits_for_backlog(self):
        scheduler = BatchScheduler(
            {"STP": FakeExecutor(delay=0.02)}, jobs=2, queue_depth=0
        )
        scheduler.start()
        try:
            futures = [
                scheduler.submit(t)
                for t in _tasks([f"{i:04x}" for i in range(12)])
            ]
            assert scheduler.drain(timeout=30)
            assert scheduler.backlog() == 0
            assert all(f.done() for f in futures)
        finally:
            scheduler.shutdown()

    def test_recycling_replaces_dispatcher_threads(self):
        """recycle_after=1 forces a fresh thread per task; every task
        still completes and the slot records its recycle count."""
        # Hold the thread *objects* (idents are reused by the OS once
        # a recycled thread exits; live references are not).
        workers = []
        lock = threading.Lock()

        class Recorder(FakeExecutor):
            def run(self, function, timeout):
                with lock:
                    workers.append(threading.current_thread())
                return super().run(function, timeout)

        scheduler = BatchScheduler({"STP": Recorder()}, jobs=1)
        scheduler.start(recycle_after=1)
        try:
            futures = [
                scheduler.submit(t)
                for t in _tasks(["8ff8", "aaaa", "0001"])
            ]
            for f in futures:
                assert f.result(timeout=10).solved
        finally:
            scheduler.shutdown()
        assert len({id(w) for w in workers}) == 3  # fresh thread per task
        assert scheduler.worker_stats[0].recycled >= 2
        assert scheduler.worker_stats[0].tasks == 3

    def test_submit_after_shutdown_rejected(self):
        scheduler = BatchScheduler({"STP": FakeExecutor()}, jobs=1)
        scheduler.start()
        scheduler.shutdown()
        with pytest.raises(RuntimeError, match="not accepting"):
            scheduler.submit(_tasks(["8ff8"])[0])

    def test_run_rejected_while_resident(self):
        scheduler = BatchScheduler({"STP": FakeExecutor()}, jobs=1)
        scheduler.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                scheduler.run(_tasks(["8ff8"]))
        finally:
            scheduler.shutdown()

    def test_restart_after_shutdown(self):
        scheduler = BatchScheduler({"STP": FakeExecutor()}, jobs=1)
        for _ in range(2):
            scheduler.start()
            future = scheduler.submit(_tasks(["8ff8"])[0])
            assert future.result(timeout=10).solved
            scheduler.shutdown()


class TestProgressReporter:
    def test_silent_when_stream_is_none(self):
        reporter = ProgressReporter(2, stream=None)
        reporter.tick("STP 0x8ff8", "ok", 0)  # must not raise

    def test_ticks_render_counts_and_worker(self):
        stream = io.StringIO()
        reporter = ProgressReporter(2, stream=stream)
        reporter.tick("STP 0x8ff8", "ok 0.1s", 0)
        reporter.tick("STP 0xaaaa", "timeout", 1)
        text = stream.getvalue()
        assert "[1/2]" in text and "[2/2]" in text
        assert "STP 0x8ff8" in text and "timeout" in text


def _fen_algorithm(max_solutions=16):
    return [
        a
        for a in default_algorithms(max_solutions=max_solutions)
        if a.name == "FEN"
    ]


class TestJobsDeterminism:
    def test_aggregates_identical_across_jobs(self):
        """Acceptance: jobs=1 and jobs=4 produce identical solved and
        timeout counts, gate counts, and solution counts."""
        functions = get_suite("npn4", 5)
        algorithms = [
            a
            for a in default_algorithms(max_solutions=16)
            if a.name in ("FEN", "STP")
        ]

        def fingerprint(reports):
            return [
                (
                    r.algorithm,
                    r.num_ok,
                    r.num_timeouts,
                    [
                        (o.function_hex, o.solved, o.num_gates,
                         o.num_solutions, o.status)
                        for o in r.outcomes
                    ],
                )
                for r in reports
            ]

        sequential = run_suite(
            "npn4", functions, algorithms, 60.0, jobs=1
        )
        parallel = run_suite(
            "npn4", functions, algorithms, 60.0, jobs=4
        )
        assert fingerprint(sequential) == fingerprint(parallel)

    def test_parallel_outcomes_carry_worker_attribution(self):
        functions = get_suite("npn4", 3)
        reports = run_suite(
            "npn4", functions, _fen_algorithm(), 60.0, jobs=2
        )
        workers = {o.worker for o in reports[0].outcomes}
        assert workers <= {0, 1} and workers
        summary = reports[0].worker_summary()
        assert sum(b["tasks"] for b in summary.values()) == 3

    def test_parallel_requires_named_engines(self):
        bare = Algorithm("RAW", lambda f, t: None)
        with pytest.raises(ValueError, match="process-isolated"):
            run_suite(
                "npn4", get_suite("npn4", 1), [bare], 10.0, jobs=2
            )


class TestParallelCheckpoint:
    def test_checkpoint_resume_under_concurrency(self, tmp_path):
        functions = get_suite("npn4", 4)
        path = str(tmp_path / "suite.jsonl")
        first = run_suite(
            "npn4",
            functions,
            _fen_algorithm(),
            60.0,
            checkpoint_path=path,
            jobs=2,
        )
        assert first[0].num_ok == 4
        lines = open(path).read().strip().splitlines()
        assert len(lines) == 4
        assert all("key" in json.loads(line) for line in lines)

        # Re-run: everything replays from the log, nothing re-executes,
        # nothing is re-appended.
        second = run_suite(
            "npn4",
            functions,
            _fen_algorithm(),
            60.0,
            checkpoint_path=path,
            jobs=2,
        )
        assert all(o.cached for o in second[0].outcomes)
        assert [o.num_gates for o in second[0].outcomes] == [
            o.num_gates for o in first[0].outcomes
        ]
        assert len(open(path).read().strip().splitlines()) == 4

    def test_partial_sequential_checkpoint_finishes_parallel(
        self, tmp_path
    ):
        """A checkpoint written by a sequential run resumes under
        jobs>1: only the unfinished instances are scheduled."""
        functions = get_suite("npn4", 4)
        path = str(tmp_path / "suite.jsonl")
        run_suite(
            "npn4",
            functions[:2],
            _fen_algorithm(),
            60.0,
            checkpoint_path=path,
        )
        reports = run_suite(
            "npn4",
            functions,
            _fen_algorithm(),
            60.0,
            checkpoint_path=path,
            jobs=2,
        )
        outcomes = reports[0].outcomes
        assert [o.cached for o in outcomes] == [
            True, True, False, False,
        ]
        assert reports[0].num_ok == 4
        done = CheckpointLog(path).load()
        assert set(done) == {
            instance_key("npn4", "FEN", f.to_hex()) for f in functions
        }
