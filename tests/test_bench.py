"""Benchmark suite / runner / Table-I harness tests."""

import json

import pytest

from repro.bench.runner import (
    Algorithm,
    InstanceOutcome,
    SuiteReport,
    default_algorithms,
    run_suite,
)
from repro.bench.suites import (
    NPN4_CLASSES_HEX,
    SUITE_SIZES,
    get_suite,
    npn4_suite,
)
from repro.bench.table1 import format_row, main, print_table, summarize
from repro.truthtable import is_fully_dsd, is_partially_dsd


class TestSuites:
    def test_npn4_size(self):
        assert len(NPN4_CLASSES_HEX) == 222
        assert len(npn4_suite()) == 222
        assert len(npn4_suite(10)) == 10

    def test_suite_sizes_match_paper(self):
        assert SUITE_SIZES == {
            "npn4": 222,
            "fdsd6": 1000,
            "fdsd8": 100,
            "pdsd6": 1000,
            "pdsd8": 100,
        }

    def test_get_suite_counts_and_arity(self):
        for name, n in [("fdsd6", 6), ("pdsd6", 6), ("fdsd8", 8)]:
            suite = get_suite(name, 3)
            assert len(suite) == 3
            assert all(t.num_vars == n for t in suite)

    def test_suite_structure(self):
        assert all(is_fully_dsd(t) for t in get_suite("fdsd6", 3))
        assert all(is_partially_dsd(t) for t in get_suite("pdsd6", 2))

    def test_unknown_suite(self):
        with pytest.raises(ValueError):
            get_suite("npn9")

    def test_deterministic(self):
        assert get_suite("fdsd6", 4, seed=1) == get_suite(
            "fdsd6", 4, seed=1
        )


class TestRunner:
    def test_report_aggregation(self):
        report = SuiteReport("X", "s")
        report.outcomes = [
            InstanceOutcome("a", True, 1.0, 3, 4),
            InstanceOutcome("b", True, 3.0, 2, 2),
            InstanceOutcome("c", False, 60.0),
        ]
        assert report.num_ok == 2
        assert report.num_timeouts == 1
        assert report.mean_time == pytest.approx(2.0)
        assert report.total_time == pytest.approx(4.0)
        assert report.mean_solutions == pytest.approx(3.0)
        assert report.mean_time_per_solution == pytest.approx(2 / 3)

    def test_empty_report(self):
        report = SuiteReport("X", "s")
        assert report.num_ok == 0
        assert report.mean_solutions == 0.0

    def test_run_suite_small(self):
        functions = get_suite("fdsd6", 2)
        algorithms = [
            a for a in default_algorithms(max_solutions=8)
            if a.name == "STP"
        ]
        reports = run_suite("fdsd6", functions, algorithms, timeout=30.0)
        assert len(reports) == 1
        assert reports[0].num_ok == 2
        assert reports[0].mean_solutions >= 1

    def test_default_algorithms(self):
        names = [a.name for a in default_algorithms()]
        assert names == ["BMS", "FEN", "ABC", "STP"]

    def test_timeout_is_recorded(self):
        functions = get_suite("pdsd6", 1)
        algorithms = [
            Algorithm("STP", default_algorithms()[3].run, True)
        ]
        reports = run_suite(
            "pdsd6", functions, algorithms, timeout=0.01
        )
        assert reports[0].num_timeouts == 1


class TestTable1Harness:
    def _fake_reports(self):
        reports = []
        for name in ("BMS", "FEN", "ABC", "STP"):
            report = SuiteReport(name, "npn4")
            report.outcomes = [
                InstanceOutcome("x", True, 0.5, 3, 4),
                InstanceOutcome("y", name == "STP", 0.7, 3, 2),
            ]
            reports.append(report)
        return {"npn4": reports}

    def test_format_row_contains_columns(self):
        reports = self._fake_reports()["npn4"]
        row = format_row(reports)
        assert "npn4" in row
        assert "BMS" in row and "STP" in row
        assert "number=" in row and "#t/o=" in row

    def test_summarize_headline(self):
        summary = summarize(self._fake_reports())
        assert "npn4" in summary["suites"]
        headline = summary["headline"]
        assert headline["best_timeout_reduction_vs"]["BMS"] == 1.0
        assert "best_speedup_vs" in headline

    def test_print_table_smoke(self, capsys):
        print_table(self._fake_reports())
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_cli_smoke(self, tmp_path, capsys):
        """Tiny end-to-end CLI run: one suite, one algorithm."""
        json_path = tmp_path / "summary.json"
        code = main(
            [
                "--suite", "fdsd6",
                "--count", "2",
                "--timeout", "30",
                "--algorithms", "STP",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        data = json.loads(json_path.read_text())
        assert data["suites"]["fdsd6"]["STP"]["ok"] == 2
        out = capsys.readouterr().out
        assert "fdsd6" in out
