"""DSD decomposition and workload-generator tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.truthtable import (
    DSDKind,
    TruthTable,
    constant,
    dsd_decompose,
    dsd_kind,
    from_function,
    is_fully_dsd,
    is_partially_dsd,
    is_prime,
    majority,
    mergeable_pair,
    parity,
    projection,
    fdsd_suite,
    pdsd_suite,
    random_fully_dsd,
    random_partially_dsd,
    random_prime_function,
)


class TestMergeablePair:
    def test_and_pair(self):
        f = from_function(lambda a, b, c: (a and b) ^ c, 3)
        code = mergeable_pair(f, 0, 1)
        assert code is not None
        table = TruthTable(code, 2)
        assert table.depends_on(0) and table.depends_on(1)

    def test_prime_has_no_pair(self):
        m = majority(3)
        for a in range(3):
            for b in range(a + 1, 3):
                assert mergeable_pair(m, a, b) is None

    def test_vacuous_pair_rejected(self):
        f = projection(2, 3)
        assert mergeable_pair(f, 0, 1) is None


class TestClassification:
    def test_trivial(self):
        assert dsd_kind(constant(0, 3)) == DSDKind.TRIVIAL
        assert dsd_kind(projection(1, 3)) == DSDKind.TRIVIAL

    def test_full(self):
        f = from_function(lambda a, b, c, d: (a and b) ^ (c or d), 4)
        assert is_fully_dsd(f)

    def test_parity_is_full(self):
        for n in (2, 3, 4, 5):
            assert is_fully_dsd(parity(n))

    def test_prime(self):
        assert is_prime(majority(3))
        assert dsd_kind(majority(5)) == DSDKind.PRIME

    def test_partial(self):
        f = from_function(
            lambda a, b, c, d: int(
                (a + b + c >= 2) ^ d  # maj3 xor d
            ),
            4,
        )
        assert is_partially_dsd(f)


class TestDecomposition:
    @given(st.integers(1, (1 << 16) - 2))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_4var(self, bits):
        t = TruthTable(bits, 4)
        tree = dsd_decompose(t)
        assert tree.to_truth_table(4) == t

    @given(st.integers(0, (1 << 64) - 1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_6var(self, bits):
        t = TruthTable(bits, 6)
        tree = dsd_decompose(t)
        assert tree.to_truth_table(6) == t

    def test_constant_tree(self):
        tree = dsd_decompose(constant(1, 3))
        assert tree.kind == "prime"
        assert tree.to_truth_table(3) == constant(1, 3)

    def test_full_tree_has_no_prime(self):
        f = from_function(lambda a, b, c, d: (a and b) ^ (c or d), 4)
        assert dsd_decompose(f).max_prime_arity() == 0

    def test_top_extraction_xor(self):
        """f = z xor maj3 needs the single-variable top extraction."""
        f = from_function(
            lambda a, b, c, d: int((a + b + c >= 2)) ^ d, 4
        )
        tree = dsd_decompose(f)
        assert tree.max_prime_arity() == 3
        assert tree.to_truth_table(4) == f

    def test_top_extraction_and(self):
        f = from_function(
            lambda a, b, c, d: int((a + b + c >= 2)) and d, 4
        )
        tree = dsd_decompose(f)
        assert tree.max_prime_arity() == 3
        assert tree.to_truth_table(4) == f

    def test_top_extraction_or_chain(self):
        f = from_function(
            lambda a, b, c, d, e: int((a + b + c >= 2)) or (d and e), 5
        )
        tree = dsd_decompose(f)
        assert tree.max_prime_arity() == 3
        assert tree.to_truth_table(5) == f

    def test_format_mentions_structure(self):
        f = from_function(lambda a, b, c: (a and b) or c, 3)
        text = dsd_decompose(f).format()
        assert "x2" in text


class TestGenerators:
    def test_fdsd_functions_are_full(self):
        for f in fdsd_suite(6, 12, seed=5):
            assert is_fully_dsd(f)
            assert f.support_size() == 6

    def test_fdsd8(self):
        for f in fdsd_suite(8, 4, seed=5):
            assert is_fully_dsd(f)
            assert f.support_size() == 8

    def test_pdsd_functions_are_partial(self):
        for f in pdsd_suite(6, 8, seed=5):
            assert is_partially_dsd(f)

    def test_pdsd_prime_arity(self):
        for f in pdsd_suite(6, 5, seed=6, prime_arity=3):
            tree = dsd_decompose(f)
            assert tree.max_prime_arity() >= 3

    def test_prime_generator(self):
        rng = random.Random(1)
        for _ in range(3):
            p = random_prime_function(3, rng)
            assert is_prime(p)
            assert p.support_size() == 3

    def test_generator_determinism(self):
        a = fdsd_suite(6, 5, seed=11)
        b = fdsd_suite(6, 5, seed=11)
        assert a == b
        c = fdsd_suite(6, 5, seed=12)
        assert a != c

    def test_suites_are_distinct(self):
        suite = pdsd_suite(6, 10, seed=2)
        assert len({t.bits for t in suite}) == 10

    def test_generator_argument_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            random_fully_dsd(1, rng)
        with pytest.raises(ValueError):
            random_prime_function(2, rng)
        with pytest.raises(ValueError):
            random_partially_dsd(4, rng, prime_arity=4)
