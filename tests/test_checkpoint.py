"""Checkpoint log and resumable-suite tests.

The acceptance path: interrupt a suite mid-run, observe the completed
instances on disk, restart with the same checkpoint path, and verify
that only the unfinished instances re-execute.
"""

import json

import pytest

from repro.bench.runner import Algorithm, run_suite
from repro.bench.suites import get_suite
from repro.core.hierarchical import HierarchicalSynthesizer
from repro.runtime.checkpoint import CheckpointLog, instance_key
from repro.runtime.faults import FaultPlan, FaultSpec


class TestCheckpointLog:
    def test_roundtrip(self, tmp_path):
        log = CheckpointLog(tmp_path / "run.jsonl")
        log.append({"key": "a", "solved": True})
        log.append({"key": "b", "solved": False})
        records = log.load()
        assert set(records) == {"a", "b"}
        assert records["a"]["solved"] is True
        assert "a" in log and "c" not in log
        assert len(log) == 2

    def test_later_records_win(self, tmp_path):
        log = CheckpointLog(tmp_path / "run.jsonl")
        log.append({"key": "a", "solved": False})
        log.append({"key": "a", "solved": True})
        assert log.load()["a"]["solved"] is True

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = CheckpointLog(path)
        log.append({"key": "a", "solved": True})
        with open(path, "a") as handle:
            handle.write('{"key": "b", "solved"')  # torn final write
        assert set(log.load()) == {"a"}

    def test_missing_file_is_empty(self, tmp_path):
        assert CheckpointLog(tmp_path / "nope.jsonl").load() == {}

    def test_records_need_keys(self, tmp_path):
        log = CheckpointLog(tmp_path / "run.jsonl")
        with pytest.raises(ValueError):
            log.append({"solved": True})

    def test_creates_parent_directories(self, tmp_path):
        log = CheckpointLog(tmp_path / "deep" / "run.jsonl")
        log.append({"key": "a"})
        assert "a" in log


def _counting_algorithm(calls):
    """An in-process STP algorithm that counts engine invocations."""
    synthesizer = HierarchicalSynthesizer(max_solutions=4)

    def run(function, timeout):
        calls.append(function.to_hex())
        return synthesizer.synthesize(function, timeout=timeout)

    return Algorithm("STP", run, True)


class TestResumableSuite:
    def test_interrupt_flushes_and_resume_skips_done(self, tmp_path):
        """Acceptance: an interrupted run restarts where it left off,
        re-executing only the unfinished instances."""
        functions = get_suite("fdsd6", 4)
        path = str(tmp_path / "suite.jsonl")
        calls = []
        algorithm = _counting_algorithm(calls)

        # Script a Ctrl-C on the third instance.
        plan = FaultPlan(
            {functions[2].to_hex(): FaultSpec("interrupt")}
        )
        with pytest.raises(KeyboardInterrupt):
            run_suite(
                "fdsd6",
                functions,
                [algorithm],
                timeout=30.0,
                checkpoint_path=path,
                fault_plan=plan,
            )
        # Both completed instances were flushed before the interrupt.
        assert calls == [f.to_hex() for f in functions[:2]]
        flushed = CheckpointLog(path).load()
        assert set(flushed) == {
            instance_key("fdsd6", "STP", f.to_hex())
            for f in functions[:2]
        }

        # Resume: only the two unfinished instances execute.
        calls.clear()
        reports = run_suite(
            "fdsd6",
            functions,
            [algorithm],
            timeout=30.0,
            checkpoint_path=path,
        )
        assert calls == [f.to_hex() for f in functions[2:]]
        report = reports[0]
        assert report.num_ok == 4
        assert [o.cached for o in report.outcomes] == [
            True, True, False, False,
        ]
        # The replayed outcomes kept their measured fields.
        for outcome in report.outcomes:
            assert outcome.num_gates >= 0
            assert outcome.status == "ok"

    def test_completed_run_resumes_to_zero_work(self, tmp_path):
        functions = get_suite("fdsd6", 2)
        path = str(tmp_path / "suite.jsonl")
        calls = []
        algorithm = _counting_algorithm(calls)
        run_suite(
            "fdsd6", functions, [algorithm], 30.0, checkpoint_path=path
        )
        assert len(calls) == 2
        calls.clear()
        reports = run_suite(
            "fdsd6", functions, [algorithm], 30.0, checkpoint_path=path
        )
        assert calls == []
        assert reports[0].num_ok == 2

    def test_failures_are_checkpointed_too(self, tmp_path):
        functions = get_suite("fdsd6", 2)
        path = str(tmp_path / "suite.jsonl")
        plan = FaultPlan(
            {
                functions[0].to_hex(): FaultSpec(
                    "timeout", times=None
                )
            }
        )
        calls = []
        algorithm = _counting_algorithm(calls)
        reports = run_suite(
            "fdsd6",
            functions,
            [algorithm],
            30.0,
            checkpoint_path=path,
            fault_plan=plan,
        )
        assert reports[0].num_timeouts == 1
        # the timeout is durable: the resume does not retry it
        calls.clear()
        reports = run_suite(
            "fdsd6", functions, [algorithm], 30.0, checkpoint_path=path
        )
        assert calls == []
        assert reports[0].num_timeouts == 1
        record = [
            r
            for r in CheckpointLog(path).load().values()
            if not r["solved"]
        ][0]
        assert record["status"] == "timeout"

    def test_fallback_fields_survive_the_checkpoint(self, tmp_path):
        functions = get_suite("fdsd6", 1)
        path = str(tmp_path / "suite.jsonl")
        plan = FaultPlan(
            {
                functions[0].to_hex(): FaultSpec(
                    "crash", engine="hier", times=None
                )
            }
        )
        algorithm = Algorithm(
            "STP",
            lambda f, t: None,
            True,
            engines=("hier", "fen"),
            engine_kwargs={"hier": {"max_solutions": 4}},
        )
        run_suite(
            "fdsd6",
            functions,
            [algorithm],
            30.0,
            checkpoint_path=path,
            fault_plan=plan,
        )
        reports = run_suite(
            "fdsd6", functions, [algorithm], 30.0, checkpoint_path=path
        )
        outcome = reports[0].outcomes[0]
        assert outcome.cached
        assert outcome.solved
        assert outcome.engine == "fen"
        assert outcome.fallback_from == "hier"
        assert reports[0].num_fallbacks == 1

    def test_checkpoint_is_plain_jsonl(self, tmp_path):
        functions = get_suite("fdsd6", 1)
        path = tmp_path / "suite.jsonl"
        algorithm = _counting_algorithm([])
        run_suite(
            "fdsd6",
            functions,
            [algorithm],
            30.0,
            checkpoint_path=str(path),
        )
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["key"].startswith("fdsd6/STP/")
        assert record["solved"] is True


class TestConcurrentAppenders:
    def test_threaded_appends_never_tear_lines(self, tmp_path):
        import threading

        path = tmp_path / "run.jsonl"
        log = CheckpointLog(path)

        def appender(worker):
            for i in range(25):
                log.append({"key": f"w{worker}/i{i}", "worker": worker})

        threads = [
            threading.Thread(target=appender, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every line parses (no interleaved partial writes) and every
        # record survived.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 200
        for line in lines:
            json.loads(line)
        assert len(log.load()) == 200
        assert log.duplicates_dropped == 0

    def test_duplicate_keys_counted_once(self, tmp_path):
        import threading

        log = CheckpointLog(tmp_path / "run.jsonl")

        def appender(worker):
            for i in range(20):
                log.append({"key": f"i{i}", "worker": worker})

        threads = [
            threading.Thread(target=appender, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = log.load()
        assert len(records) == 20
        assert log.duplicates_dropped == 60

    def test_separate_log_objects_share_one_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CheckpointLog(path).append({"key": "a", "solved": True})
        CheckpointLog(path).append({"key": "b", "solved": False})
        assert set(CheckpointLog(path).load()) == {"a", "b"}
