"""Size lower-bound table tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sizebound import (
    EXACT3_SIZES,
    exact_min_gates_upto3,
    min_gates_lower_bound,
)
from repro.truthtable import (
    TruthTable,
    constant,
    from_function,
    majority,
    parity,
    projection,
)


class TestTable:
    def test_length(self):
        assert len(EXACT3_SIZES) == 256

    def test_known_entries(self):
        assert EXACT3_SIZES[0x00] == 0  # constant
        assert EXACT3_SIZES[0xFF] == 0
        assert EXACT3_SIZES[majority(3).bits] == 4
        assert EXACT3_SIZES[parity(3).bits] == 2
        assert EXACT3_SIZES[0x80] == 2  # and3
        assert EXACT3_SIZES[projection(0, 3).bits] == 0

    def test_complement_symmetry(self):
        """All 16 operator codes are available, so f and ~f always have
        equal minimal size."""
        for bits in range(256):
            assert EXACT3_SIZES[bits] == EXACT3_SIZES[bits ^ 0xFF]

    def test_max_is_four(self):
        assert max(EXACT3_SIZES) == 4

    @pytest.mark.slow
    @pytest.mark.parametrize("bits", [0x6A, 0xE8, 0x29, 0x96, 0x1B])
    def test_spot_check_against_bms(self, bits):
        from repro.baselines import bms_synthesize

        result = bms_synthesize(TruthTable(bits, 3), timeout=120)
        assert result.num_gates == EXACT3_SIZES[bits]


class TestBoundFunction:
    def test_exact_path_small_support(self):
        assert exact_min_gates_upto3(constant(0, 5)) == 0
        assert exact_min_gates_upto3(projection(3, 5)) == 0
        f = from_function(lambda a, b, c, d, e: b ^ d, 5)
        assert exact_min_gates_upto3(f) == 1

    def test_none_for_large_support(self):
        assert exact_min_gates_upto3(parity(4)) is None

    def test_support_projection(self):
        """The bound looks only at the support, wherever it sits."""
        f = from_function(lambda a, b, c, d, e: int(b + c + e >= 2), 5)
        assert exact_min_gates_upto3(f) == 4  # embedded maj3

    @given(st.integers(0, 0xFF))
    @settings(max_examples=50, deadline=None)
    def test_dominates_generic_bound(self, bits):
        t = TruthTable(bits, 3)
        bound = min_gates_lower_bound(t)
        assert bound >= max(0, t.support_size() - 1)

    @given(st.integers(0, 0xFFFF))
    @settings(max_examples=30, deadline=None)
    def test_generic_bound_for_4var(self, bits):
        t = TruthTable(bits, 4)
        if t.support_size() == 4:
            assert min_gates_lower_bound(t) == 3
