"""Property-based chain-store invariants (Hypothesis).

Engine-free on purpose: functions come from random chains re-simulated
into truth tables, so these properties stay fast enough for tier 1
while still sweeping the NPN canonicalization, serialization, and
corruption-guard paths with thousands of distinct shapes over time.

All examples derive from explicitly drawn integer seeds and
``derandomize=True``, so a failure reproduces bit-for-bit from the
printed example alone.
"""

import json
import random
import sqlite3

from hypothesis import assume, given, settings, strategies as st

from repro.chain import BooleanChain
from repro.core.spec import SynthesisResult, SynthesisSpec
from repro.store import ChainStore, chain_to_record
from repro.truthtable.npn import NPNTransform

from tests.helpers import assert_chain_realizes, random_chain

_SETTINGS = dict(max_examples=25, deadline=None, derandomize=True)


def _chain_and_function(seed, num_inputs=3):
    rnd = random.Random(seed)
    chain = random_chain(rnd, num_inputs=num_inputs, num_gates=4)
    function = chain.simulate_output()
    result = SynthesisResult(
        spec=SynthesisSpec(function=function),
        chains=[chain],
        num_gates=chain.num_gates,
        runtime=0.0,
    )
    return chain, function, result


def _probe(seed, num_vars):
    rnd = random.Random(seed ^ 0xA5A5)
    perm = list(range(num_vars))
    rnd.shuffle(perm)
    return NPNTransform(
        tuple(perm),
        rnd.getrandbits(num_vars),
        bool(rnd.getrandbits(1)),
    )


class TestRoundTripProperty:
    @given(seed=st.integers(0, 10**9))
    @settings(**_SETTINGS)
    def test_put_then_lookup_any_orbit_member(self, seed, tmp_path_factory):
        """put(f) → lookup(T(f)) serves chains that realize T(f), at
        the recorded gate count, for a random orbit member T."""
        _, function, result = _chain_and_function(seed)
        member = _probe(seed, function.num_vars).apply(function)
        db = tmp_path_factory.mktemp("store") / "chains.db"
        with ChainStore(db) as store:
            assert store.put(function, result, engine="prop")
            served = store.lookup(member)
            assert served is not None
            assert served.num_gates == result.num_gates
            for chain in served.chains:
                assert_chain_realizes(member, chain)

    @given(seed=st.integers(0, 10**9))
    @settings(**_SETTINGS)
    def test_put_is_idempotent(self, seed, tmp_path_factory):
        _, function, result = _chain_and_function(seed)
        db = tmp_path_factory.mktemp("store") / "chains.db"
        with ChainStore(db) as store:
            assert store.put(function, result, engine="prop")
            assert store.put(function, result, engine="prop")
            served = store.lookup(function)
            signatures = [c.signature() for c in served.chains]
            assert len(signatures) == len(set(signatures))


class TestPoisonedStoreProperty:
    @given(seed=st.integers(0, 10**9))
    @settings(**_SETTINGS)
    def test_never_serves_a_wrong_chain(self, seed, tmp_path_factory):
        """Overwrite the stored solution set with a chain for a
        different function: the lookup must degrade to a miss (or, at
        minimum, never serve a chain that fails to realize the query).
        """
        _, function, result = _chain_and_function(seed)
        assume(0 < function.count_ones() < function.num_rows)
        db = tmp_path_factory.mktemp("store") / "chains.db"
        with ChainStore(db) as store:
            assert store.put(function, result, engine="prop")

        wrong = BooleanChain(function.num_vars)
        wrong.set_output(wrong.add_gate(0x0, (0, 1)))  # constant 0
        conn = sqlite3.connect(db)
        with conn:
            conn.execute(
                "UPDATE chains SET solutions = ?",
                (json.dumps([chain_to_record(wrong)]),),
            )
        conn.close()

        with ChainStore(db) as store:
            served = store.lookup(function)
            if served is None:
                assert store.misses == 1
            else:  # pragma: no cover - guard regression would land here
                for chain in served.chains:
                    assert_chain_realizes(function, chain)
        assert served is None, "corruption guard served a poisoned row"
