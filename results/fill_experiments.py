#!/usr/bin/env python3
"""Insert measured Table-I rows from results/*.json into EXPERIMENTS.md."""

import json
import sys
from pathlib import Path

RESULTS = Path(__file__).resolve().parent
EXPERIMENTS = RESULTS.parent / "EXPERIMENTS.md"

PARAMS = {
    "npn4": "first 20 classes, 30 s timeout",
    "fdsd6": "25 instances, 30 s timeout",
    "fdsd8": "4 instances, 30 s timeout",
    "pdsd6": "4 instances, 30 s timeout",
    "pdsd8": "2 instances, 30 s timeout",
}


def fmt_alg(row: dict, name: str) -> str:
    data = row.get(name)
    if data is None:
        return "—"
    mean = data["mean_s"]
    mean_text = f"{mean:.3f}" if mean == mean else "t/o"
    return f"{mean_text} / {data['timeouts']} / {data['ok']}"


def main() -> int:
    lines = [
        "| suite (params) | BMS | FEN | ABC | STP | STP #sols |",
        "|---|---|---|---|---|---|",
    ]
    for suite in ("npn4", "fdsd6", "fdsd8", "pdsd6", "pdsd8"):
        path = RESULTS / f"{suite}.json"
        if not path.exists():
            lines.append(
                f"| {suite} ({PARAMS[suite]}) | *(not collected — "
                f"regenerate with the command above)* | | | | |"
            )
            continue
        data = json.loads(path.read_text())
        row = data["suites"][suite]
        stp = row.get("STP", {})
        sols = stp.get("mean_solutions", float("nan"))
        lines.append(
            f"| {suite} ({PARAMS[suite]}) | {fmt_alg(row, 'BMS')} | "
            f"{fmt_alg(row, 'FEN')} | {fmt_alg(row, 'ABC')} | "
            f"{fmt_alg(row, 'STP')} | {sols:.1f} |"
        )
    table = "\n".join(lines)
    text = EXPERIMENTS.read_text()
    marker = "<!-- MEASURED-TABLE -->"
    if marker not in text:
        print("marker missing", file=sys.stderr)
        return 1
    text = text.replace(marker, table + "\n\n" + marker)
    EXPERIMENTS.write_text(text)
    print(table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
