#!/bin/sh
# Post-test finalization: benchmark run + small Table-I rows + EXPERIMENTS fill.
set -x
cd /root/repo

# Required deliverable: full benchmark run.
timeout 2400 python -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt | tail -4

# Quick Table-I rows for the suites that were not collected yet.
timeout 420 python -m repro.bench.table1 --suite fdsd6 --count 8 --timeout 30 --json results/fdsd6.json > results/fdsd6.txt 2>results/fdsd6.err
timeout 420 python -m repro.bench.table1 --suite fdsd8 --count 3 --timeout 30 --json results/fdsd8.json > results/fdsd8.txt 2>results/fdsd8.err
timeout 420 python -m repro.bench.table1 --suite pdsd6 --count 3 --timeout 30 --json results/pdsd6.json > results/pdsd6.txt 2>results/pdsd6.err
timeout 300 python -m repro.bench.table1 --suite pdsd8 --count 2 --timeout 30 --json results/pdsd8.json > results/pdsd8.txt 2>results/pdsd8.err

python results/fill_experiments.py
echo FINALIZE_DONE
