"""SSV CNF encoding of SAT-based exact synthesis.

The single-selection-variable (SSV) encoding of Knuth (TAOCP 7.2.2.2)
as popularised by percy / Haaswijk et al. ("SAT-based exact synthesis:
encodings, topology families, and parallelism"):

* chains are *normal* — every step operator outputs 0 on the all-zero
  input row — and a function with ``f(0) = 1`` is synthesized as its
  complement with the output inverted, which does not change sizes;
* for each step ``i`` there is one selection variable ``s(i, j, k)``
  per fanin pair ``j < k``, three operator bits ``o(i, p)`` for the
  non-zero rows of the step's 2-input truth table, and one simulation
  variable ``x(i, t)`` per non-zero truth-table row ``t``;
* the main clauses state that whenever step ``i`` selects ``(j, k)``
  the simulation value of ``i`` on each row is consistent with the
  operator bit addressed by the fanin values on that row.

Passing a fence restricts the selection variables to pairs compatible
with the fence's level structure (at least one fanin on the level
immediately below), which is the FEN baseline's topology constraint.

A subset of rows can be encoded (``rows=``) to support the
counterexample-guided (CEGAR) refinement loop of the ``lutexact``-style
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..chain.chain import BooleanChain
from ..truthtable.table import TruthTable
from .cnf import CNF

__all__ = ["SSVEncoder", "normalize_function"]


def normalize_function(f: TruthTable) -> tuple[TruthTable, bool]:
    """Return ``(g, complemented)`` with ``g(0) = 0`` and
    ``f = ~g`` when ``complemented``."""
    if f.value(0):
        return ~f, True
    return f, False


@dataclass(frozen=True)
class _StepVars:
    selections: dict[tuple[int, int], int]
    operator: tuple[int, int, int]  # o(i,1), o(i,2), o(i,3)
    simulation: dict[int, int]  # row t (1-based) → variable


class SSVEncoder:
    """Encode "does a normal chain of ``r`` 2-input steps realise g?".

    Parameters
    ----------
    function:
        Normalised target (``g(0) == 0``) over ``n`` inputs.
    num_steps:
        Number of chain steps ``r``.
    fence:
        Optional level structure (bottom first, sizes summing to ``r``)
        restricting fanin selection as in the FEN baseline.
    rows:
        Truth-table rows (1-based) to constrain; default all non-zero
        rows.  Used by CEGAR refinement.
    deadline:
        Optional object with a ``check()`` method, polled while the
        (potentially large) clause set is built.
    """

    def __init__(
        self,
        function: TruthTable,
        num_steps: int,
        fence: Sequence[int] | None = None,
        rows: Iterable[int] | None = None,
        deadline=None,
    ) -> None:
        if function.value(0):
            raise ValueError("encoder expects a normalised function")
        if num_steps < 1:
            raise ValueError("need at least one step")
        if fence is not None and sum(fence) != num_steps:
            raise ValueError("fence size must match the step count")
        self._f = function
        self._n = function.num_vars
        self._r = num_steps
        self._fence = tuple(fence) if fence is not None else None
        self._deadline = deadline
        all_rows = range(1, function.num_rows)
        self._rows = sorted(set(rows) if rows is not None else all_rows)
        self.cnf = CNF()
        self._steps: list[_StepVars] = []
        self._build()

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def _signal_level(self, signal: int) -> int:
        """Level of a signal under the fence (PIs are level 0)."""
        if signal < self._n:
            return 0
        assert self._fence is not None
        index = signal - self._n
        level = 1
        for size in self._fence:
            if index < size:
                return level
            index -= size
            level += 1
        raise IndexError(signal)

    def _allowed_pairs(self, step: int) -> list[tuple[int, int]]:
        limit = self._n + step
        pairs = [
            (j, k) for j in range(limit) for k in range(j + 1, limit)
        ]
        if self._fence is None:
            return pairs
        level = self._signal_level(self._n + step)
        allowed = []
        for j, k in pairs:
            lj, lk = self._signal_level(j), self._signal_level(k)
            if lj >= level or lk >= level:
                continue
            if lj == level - 1 or lk == level - 1:
                allowed.append((j, k))
        return allowed

    def _build(self) -> None:
        cnf = self.cnf
        for i in range(self._r):
            selections = {
                pair: cnf.new_var() for pair in self._allowed_pairs(i)
            }
            operator = (cnf.new_var(), cnf.new_var(), cnf.new_var())
            simulation = {t: cnf.new_var() for t in self._rows}
            self._steps.append(_StepVars(selections, operator, simulation))

        for i, step in enumerate(self._steps):
            # Exactly one fanin pair.
            sel_vars = list(step.selections.values())
            cnf.add_clause(sel_vars)
            for a in range(len(sel_vars)):
                for b in range(a + 1, len(sel_vars)):
                    cnf.add_clause([-sel_vars[a], -sel_vars[b]])
            # Operator must not be constant zero.
            cnf.add_clause(list(step.operator))
            # Simulation consistency per selected pair and row.
            for (j, k), s_var in step.selections.items():
                if self._deadline is not None:
                    self._deadline.check()
                for t in self._rows:
                    self._consistency_clauses(i, j, k, s_var, t)

        # Output: last step equals the target on every encoded row.
        last = self._steps[-1]
        for t in self._rows:
            x_var = last.simulation[t]
            if self._f.value(t):
                cnf.add_clause([x_var])
            else:
                cnf.add_clause([-x_var])

    def _value_literal(self, signal: int, t: int, value: int) -> int | None:
        """Literal asserting ``signal != value`` on row ``t``, or None
        when the signal is a PI whose value is fixed.

        Returns the literal to *add to a clause* so the clause is
        satisfied whenever the signal differs from ``value``; for a PI
        returns None if the PI equals ``value`` (literal falsified,
        skip) and raises _Tautology when the clause is trivially true.
        """
        if signal < self._n:
            pi_value = (t >> signal) & 1
            if pi_value == value:
                return None  # cannot differ: contributes nothing
            raise _Tautology()
        step = self._steps[signal - self._n]
        var = step.simulation[t]
        return -var if value == 1 else var

    def _consistency_clauses(
        self, i: int, j: int, k: int, s_var: int, t: int
    ) -> None:
        """``s ∧ (x_j = a) ∧ (x_k = b) → (x_i = o_p)`` for all a, b."""
        step = self._steps[i]
        x_i = step.simulation[t]
        for a in (0, 1):
            for b in (0, 1):
                p = (b << 1) | a
                for c in (0, 1):
                    # Clause: ¬s ∨ x_j≠a ∨ x_k≠b ∨ x_i≠c ∨ (o_p = c)
                    if p == 0:
                        if c == 0:
                            continue  # o_0 ≡ 0 satisfies the clause
                        op_lit = None  # o_0 = 1 is false: omit literal
                    else:
                        op_var = step.operator[p - 1]
                        op_lit = op_var if c == 1 else -op_var
                    lits = [-s_var]
                    try:
                        for signal, value in ((j, a), (k, b)):
                            lit = self._value_literal(signal, t, value)
                            if lit is not None:
                                lits.append(lit)
                    except _Tautology:
                        continue
                    lits.append(-x_i if c == 1 else x_i)
                    if op_lit is not None:
                        lits.append(op_lit)
                    self.cnf.add_clause(lits)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(self, model: dict[int, bool], complemented: bool) -> BooleanChain:
        """Extract the chain from a satisfying model."""
        chain = BooleanChain(self._n)
        for step in self._steps:
            pair = None
            for candidate, var in step.selections.items():
                if model.get(var, False):
                    pair = candidate
                    break
            if pair is None:
                raise ValueError("model selects no fanin pair")
            code = 0
            for p in (1, 2, 3):
                if model.get(step.operator[p - 1], False):
                    code |= 1 << p
            chain.add_gate(code, pair)
        chain.set_output(chain.num_signals - 1, complemented)
        return chain

    def blocking_clause(self, model: dict[int, bool]) -> list[int]:
        """Clause excluding this model's structure (selections + ops)."""
        lits: list[int] = []
        for step in self._steps:
            for var in step.selections.values():
                lits.append(-var if model.get(var, False) else var)
            for var in step.operator:
                lits.append(-var if model.get(var, False) else var)
        return lits


class _Tautology(Exception):
    """Internal marker: the clause under construction is trivially true."""
