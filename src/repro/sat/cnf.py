"""CNF formulas with DIMACS-style literals.

Variables are positive integers ``1..num_vars``; a literal is ``+v`` or
``-v``.  This mirrors the encoding conventions of the exact-synthesis
literature the baselines implement (percy's SSV encoding) and makes
DIMACS round-trips trivial.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["CNF"]


class CNF:
    """A conjunction of clauses over integer variables."""

    def __init__(self, num_vars: int = 0) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self._num_vars = num_vars
        self._clauses: list[tuple[int, ...]] = []

    @property
    def num_vars(self) -> int:
        """Highest variable index in use."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self._clauses)

    @property
    def clauses(self) -> tuple[tuple[int, ...], ...]:
        """All clauses as literal tuples."""
        return tuple(self._clauses)

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; literals must reference existing variables."""
        clause = tuple(literals)
        for lit in clause:
            var = abs(lit)
            if lit == 0 or var > self._num_vars:
                raise ValueError(f"literal {lit} out of range")
        self._clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add many clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def evaluate(self, assignment: Mapping[int, bool] | Sequence[bool]) -> bool:
        """Evaluate under a (total) assignment.

        ``assignment`` maps variable → bool, or is a sequence indexed by
        ``var - 1``.
        """
        def value(var: int) -> bool:
            if isinstance(assignment, Mapping):
                return bool(assignment[var])
            return bool(assignment[var - 1])

        for clause in self._clauses:
            if not any(
                value(abs(lit)) == (lit > 0) for lit in clause
            ):
                return False
        return True

    def to_dimacs(self) -> str:
        """Serialise in DIMACS CNF format."""
        lines = [f"p cnf {self._num_vars} {len(self._clauses)}"]
        for clause in self._clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF text."""
        cnf: CNF | None = None
        pending: list[int] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(("c", "%")):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad problem line: {line!r}")
                cnf = cls(int(parts[2]))
                continue
            if cnf is None:
                raise ValueError("clause before problem line")
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if cnf is None:
            raise ValueError("missing problem line")
        if pending:
            cnf.add_clause(pending)
        return cnf

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self._num_vars}, clauses={len(self._clauses)})"
