"""A CDCL SAT solver (conflict-driven clause learning).

Substrate for the CNF-based exact-synthesis baselines (BMS, FEN): the
environment has no off-the-shelf SAT solver, so we implement the
MiniSat algorithm family in pure Python:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and backjumping,
* VSIDS branching activity with exponential decay and phase saving,
* Luby-sequence restarts,
* incremental solving under assumptions plus clause addition between
  calls (used for AllSAT via blocking clauses).

Literals follow the DIMACS convention (``±var``, 1-based) so the
:class:`~repro.sat.cnf.CNF` container plugs in directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .cnf import CNF

__all__ = ["CDCLSolver", "Luby", "solve_cnf", "all_models"]

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


class Luby:
    """The Luby restart sequence 1,1,2,1,1,2,4,…"""

    def __init__(self, base: int = 100) -> None:
        self._base = base
        self._index = 0

    @staticmethod
    def value(i: int) -> int:
        """The ``i``-th Luby number (1-based): 1,1,2,1,1,2,4,…"""
        if i < 1:
            raise ValueError("Luby index is 1-based")
        x = i - 1
        size, seq = 1, 0
        while size < x + 1:
            seq += 1
            size = 2 * size + 1
        while size - 1 != x:
            size = (size - 1) >> 1
            seq -= 1
            x %= size
        return 1 << seq

    def next_budget(self) -> int:
        """Conflict budget for the next restart interval."""
        self._index += 1
        return self._base * self.value(self._index)


class CDCLSolver:
    """Conflict-driven clause-learning solver.

    Typical use::

        solver = CDCLSolver()
        solver.add_clause([1, -2])
        solver.add_clause([2, 3])
        if solver.solve():
            model = solver.model()      # {1: True, 2: False, ...}
    """

    def __init__(self, num_vars: int = 0, restart_base: int = 100) -> None:
        self._num_vars = 0
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self._assign: list[int] = [0]  # 1-based; index 0 unused
        self._level: list[int] = [0]
        self._reason: list[int | None] = [None]
        self._phase: list[bool] = [False]
        self._activity: list[float] = [0.0]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._restart = Luby(restart_base)
        self._ok = True
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_restarts = 0
        if num_vars:
            self.ensure_vars(num_vars)

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables allocated."""
        return self._num_vars

    def new_var(self) -> int:
        """Allocate one variable; returns its (positive) index."""
        self._num_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(False)
        self._activity.append(0.0)
        return self._num_vars

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable table to at least ``num_vars``."""
        while self._num_vars < num_vars:
            self.new_var()

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the problem became trivially
        unsatisfiable (empty clause, or conflicting units at level 0)."""
        if not self._ok:
            return False
        # Clauses are only added between solves; return to the root
        # level so watch invariants hold for the new clause.
        self._backtrack(0)
        # Deduplicate and drop tautologies.
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("literal 0 is reserved")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology; trivially satisfied
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)

        # At the root level, strip falsified literals / detect satisfied.
        if self.decision_level() == 0:
            reduced = []
            for lit in clause:
                v = self._lit_value(lit)
                if v == _TRUE:
                    return True
                if v == _UNASSIGNED:
                    reduced.append(lit)
            clause = reduced

        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watch(clause[0], index)
        self._watch(clause[1], index)
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        """Load a whole CNF container."""
        self.ensure_vars(cnf.num_vars)
        ok = True
        for clause in cnf:
            ok = self.add_clause(clause) and ok
        return ok and self._ok

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        deadline=None,
    ) -> bool | None:
        """Decide satisfiability under optional assumptions.

        Returns True (SAT), False (UNSAT), or None when the conflict
        budget ran out (unknown).  ``deadline`` is an object with a
        ``check()`` method (see :class:`repro.core.spec.Deadline`),
        polled once per conflict — its exception propagates.
        """
        if not self._ok:
            return False
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False

        budget = self._restart.next_budget()
        spent_in_interval = 0
        total_conflicts = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.num_conflicts += 1
                total_conflicts += 1
                spent_in_interval += 1
                if deadline is not None:
                    deadline.check()
                if self.decision_level() == 0:
                    self._ok = False
                    return False
                learnt, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                self._attach_learnt(learnt)
                self._decay_activity()
                if (
                    conflict_limit is not None
                    and total_conflicts >= conflict_limit
                ):
                    self._backtrack(0)
                    return None
                if spent_in_interval >= budget:
                    self.num_restarts += 1
                    spent_in_interval = 0
                    budget = self._restart.next_budget()
                    self._backtrack(0)
                continue

            # Re-apply assumptions after any restart/backjump.
            if self.decision_level() < len(assumptions):
                lit = assumptions[self.decision_level()]
                self.ensure_vars(abs(lit))
                value = self._lit_value(lit)
                if value == _TRUE:
                    # Already implied: open a pseudo-level to keep the
                    # assumption ↔ level correspondence simple.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == _FALSE:
                    return False
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                continue

            lit = self._pick_branch()
            if lit is None:
                return True  # full assignment
            self.num_decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    def model(self) -> dict[int, bool]:
        """Satisfying assignment after a True :meth:`solve`."""
        return {
            v: self._assign[v] == _TRUE
            for v in range(1, self._num_vars + 1)
            if self._assign[v] != _UNASSIGNED
        }

    def model_value(self, var: int) -> bool:
        """Value of one variable in the current model."""
        if self._assign[var] == _UNASSIGNED:
            raise ValueError(f"variable {var} unassigned")
        return self._assign[var] == _TRUE

    def decision_level(self) -> int:
        """Current decision level."""
        return len(self._trail_lim)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else -value

    def _watch(self, lit: int, clause_index: int) -> None:
        self._watches.setdefault(-lit, []).append(clause_index)

    def _enqueue(self, lit: int, reason: int | None) -> bool:
        var = abs(lit)
        current = self._lit_value(lit)
        if current == _FALSE:
            return False
        if current == _TRUE:
            return True
        self._assign[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = self.decision_level()
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.num_propagations += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            i = 0
            while i < len(watchers):
                ci = watchers[i]
                clause = self._clauses[ci]
                # Ensure the falsified literal sits at position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == _TRUE:
                    i += 1
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != _FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], ci)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Unit or conflict.
                if self._lit_value(first) == _FALSE:
                    self._qhead = len(self._trail)
                    return ci
                self._enqueue(first, ci)
                i += 1
        return None

    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        """First-UIP learning; returns (learnt clause, backjump level)."""
        learnt: list[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = None
        clause = self._clauses[conflict_index]
        index = len(self._trail) - 1
        level = self.decision_level()

        while True:
            for q in clause:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_activity(var)
                    if self._level[var] >= level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Walk the trail backwards to the next marked literal.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                learnt[0] = -lit
                break
            reason = self._reason[var]
            assert reason is not None, "decision reached before UIP"
            clause = self._clauses[reason]

        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest level in the clause.
        levels = sorted(
            (self._level[abs(q)] for q in learnt[1:]), reverse=True
        )
        backjump = levels[0]
        # Put a literal of the backjump level at slot 1 for watching.
        for k in range(1, len(learnt)):
            if self._level[abs(learnt[k])] == backjump:
                learnt[1], learnt[k] = learnt[k], learnt[1]
                break
        return learnt, backjump

    def _attach_learnt(self, learnt: list[int]) -> None:
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        index = len(self._clauses)
        self._clauses.append(learnt)
        self._watch(learnt[0], index)
        self._watch(learnt[1], index)
        self._enqueue(learnt[0], index)

    def _backtrack(self, level: int) -> None:
        if self.decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    def _pick_branch(self) -> int | None:
        best = None
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _UNASSIGNED:
                if self._activity[var] > best_activity:
                    best_activity = self._activity[var]
                    best = var
        if best is None:
            return None
        return best if self._phase[best] else -best

    def _bump_activity(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_activity(self) -> None:
        self._var_inc /= self._var_decay


def solve_cnf(cnf: CNF, assumptions: Sequence[int] = ()) -> dict[int, bool] | None:
    """Convenience: solve a CNF, returning a model or None (UNSAT)."""
    solver = CDCLSolver()
    if not solver.add_cnf(cnf):
        return None
    if solver.solve(assumptions):
        return solver.model()
    return None


def all_models(
    cnf: CNF,
    projection: Sequence[int] | None = None,
    limit: int | None = None,
) -> Iterator[dict[int, bool]]:
    """AllSAT by blocking clauses, optionally projected onto a subset
    of variables (models agreeing on the projection count once)."""
    solver = CDCLSolver()
    if not solver.add_cnf(cnf):
        return
    votes = tuple(projection) if projection is not None else tuple(
        range(1, cnf.num_vars + 1)
    )
    count = 0
    while solver.solve():
        model = solver.model()
        yield {v: model.get(v, False) for v in votes}
        count += 1
        if limit is not None and count >= limit:
            return
        blocking = [
            (-v if model.get(v, False) else v) for v in votes
        ]
        if not solver.add_clause(blocking):
            return
