"""CNF SAT substrate: formula container and a CDCL solver with
watched literals, 1UIP learning, VSIDS, and Luby restarts."""

from .cnf import CNF
from .solver import CDCLSolver, Luby, all_models, solve_cnf

__all__ = ["CNF", "CDCLSolver", "Luby", "all_models", "solve_cnf"]
