"""k-feasible cut enumeration.

Standard bottom-up cut enumeration: the cut set of a node is the
pairwise merge of its fanins' cut sets plus the trivial cut, keeping
only cuts with at most ``k`` leaves, filtering dominated cuts and
capping the per-node set size (priority: fewer leaves first).  Each
cut's local function is computed bit-parallel over the cut leaves so
rewriting can hand it straight to an exact synthesizer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..truthtable.table import TruthTable
from .network import LogicNetwork

__all__ = ["Cut", "enumerate_cuts", "cut_function"]


@dataclass(frozen=True)
class Cut:
    """A cut: the root node and its leaf set (sorted node ids)."""

    root: int
    leaves: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of leaves."""
        return len(self.leaves)

    def dominates(self, other: "Cut") -> bool:
        """True when this cut's leaves are a subset of the other's."""
        return set(self.leaves) <= set(other.leaves)


def _merge(a: Cut, b: Cut, root: int, k: int) -> Cut | None:
    leaves = tuple(sorted(set(a.leaves) | set(b.leaves)))
    if len(leaves) > k:
        return None
    return Cut(root, leaves)


def _filter_dominated(cuts: list[Cut]) -> list[Cut]:
    kept: list[Cut] = []
    for cut in sorted(cuts, key=lambda c: c.size):
        if not any(old.dominates(cut) for old in kept):
            kept.append(cut)
    return kept


def enumerate_cuts(
    network: LogicNetwork, k: int = 4, max_cuts_per_node: int = 12
) -> dict[int, list[Cut]]:
    """All k-feasible cuts of every live node.

    The trivial cut ``{node}`` is always included (and listed last so
    rewriting tries real cuts first).
    """
    if k < 2:
        raise ValueError("cuts need k >= 2")
    cut_sets: dict[int, list[Cut]] = {}
    for uid in network.topological_order():
        node = network.node(uid)
        trivial = Cut(uid, (uid,))
        if node.is_pi:
            cut_sets[uid] = [trivial]
            continue
        merged: list[Cut] = []
        fanin_cut_lists = [cut_sets[f] for f in node.fanins]
        combos: list[list[Cut]] = [[]]
        for options in fanin_cut_lists:
            combos = [
                prefix + [option]
                for prefix in combos
                for option in options
            ]
        for combo in combos:
            leaves: set[int] = set()
            for cut in combo:
                leaves.update(cut.leaves)
            if len(leaves) <= k:
                merged.append(Cut(uid, tuple(sorted(leaves))))
        merged = _filter_dominated(merged)
        merged = merged[: max_cuts_per_node - 1]
        cut_sets[uid] = merged + [trivial]
    return cut_sets


def cut_function(network: LogicNetwork, cut: Cut) -> TruthTable:
    """The root's function over the cut leaves (leaf ``i`` = variable
    ``i``), computed by bit-parallel cone simulation."""
    k = cut.size
    rows = 1 << k
    patterns: dict[int, int] = {}
    for i, leaf in enumerate(cut.leaves):
        pattern = 0
        for m in range(rows):
            if (m >> i) & 1:
                pattern |= 1 << m
        patterns[leaf] = pattern

    def value_of(uid: int) -> int:
        cached = patterns.get(uid)
        if cached is not None:
            return cached
        node = network.node(uid)
        if node.is_pi:
            raise ValueError(
                f"PI {uid} reached outside the cut {cut.leaves}"
            )
        fanin_patterns = [value_of(f) for f in node.fanins]
        pattern = 0
        for m in range(rows):
            row = 0
            for j, fp in enumerate(fanin_patterns):
                row |= ((fp >> m) & 1) << j
            if node.function.value(row):
                pattern |= 1 << m
        patterns[uid] = pattern
        return pattern

    return TruthTable(value_of(cut.root), k)
