"""Exact-synthesis-based network rewriting.

The application the paper's introduction motivates ("SAT has been used
in logic synthesis to synthesize optimum Boolean chains … exact
synthesis"): walk the network, and for each node try to replace the
logic inside one of its cuts with a freshly synthesized *optimal*
chain from the NPN database.  A replacement is accepted when the new
chain is smaller than the logic it makes dead (DAG-aware gain, as in
"On-the-fly and DAG-aware" rewriting).

Because the database serves *all* optimal chains, the replacement can
be chosen by a secondary cost (depth by default) — the flexibility the
paper's all-solutions output is for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..chain.chain import BooleanChain
from ..chain.costs import COST_MODELS
from ..core.database import NPNDatabase
from .cuts import Cut, cut_function, enumerate_cuts
from .network import LogicNetwork

__all__ = ["RewriteResult", "rewrite_network"]


def _cone_above(
    network: LogicNetwork, root: int, leaves: tuple[int, ...]
) -> set[int]:
    """Internal nodes reachable from ``root`` without crossing the cut."""
    stop = set(leaves)
    cone: set[int] = set()
    stack = [root]
    while stack:
        uid = stack.pop()
        if uid in stop or uid in cone:
            continue
        node = network.node(uid)
        if node.is_pi:
            continue
        cone.add(uid)
        stack.extend(node.fanins)
    return cone


@dataclass
class RewriteResult:
    """What a rewriting pass did."""

    gates_before: int
    gates_after: int
    replacements: int = 0
    cuts_tried: int = 0

    @property
    def gain(self) -> int:
        """Gates saved."""
        return self.gates_before - self.gates_after


def rewrite_network(
    network: LogicNetwork,
    database: NPNDatabase | None = None,
    cut_size: int = 4,
    tie_break: str | Callable[[BooleanChain], float] = "depth",
    max_cuts_per_node: int = 8,
    zero_gain: bool = False,
) -> RewriteResult:
    """One DAG-aware rewriting pass over the network (in place).

    Parameters
    ----------
    database:
        NPN chain database (shared across passes for caching); a fresh
        one is created when omitted.
    cut_size:
        Cut leaf limit; 4 keeps lookups inside the exact-NPN range.
    tie_break:
        Secondary cost choosing among the optimal chains of a class.
    zero_gain:
        Accept replacements that keep the size (useful to reshape for
        depth); by default only strictly size-reducing rewrites apply.
    """
    if cut_size > 4:
        raise ValueError(
            "rewriting uses exact NPN classification (cut_size <= 4)"
        )
    db = database if database is not None else NPNDatabase()
    cost = (
        COST_MODELS[tie_break] if isinstance(tie_break, str) else tie_break
    )
    result = RewriteResult(
        gates_before=network.num_gates(),
        gates_after=network.num_gates(),
    )

    cut_sets = enumerate_cuts(
        network, k=cut_size, max_cuts_per_node=max_cuts_per_node
    )
    for uid in network.topological_order():
        node = network.node(uid)
        if node.is_pi or node.dead:
            continue
        best_choice: tuple[int, BooleanChain, Cut] | None = None
        for cut in cut_sets.get(uid, []):
            if cut.size < 2 or cut.leaves == (uid,):
                continue
            if any(network.node(l).dead for l in cut.leaves):
                continue
            result.cuts_tried += 1
            local = cut_function(network, cut)
            chains = db.lookup(local)
            if not chains:
                continue
            chain = min(chains, key=cost)
            # Only the part of the MFFC strictly above the cut leaves
            # actually dies (logic below stays alive through them).
            cone = _cone_above(network, uid, cut.leaves)
            saved = len(network.mffc(uid) & cone)
            added = chain.num_gates
            gain = saved - added
            if gain > 0 or (zero_gain and gain == 0):
                if best_choice is None or gain > best_choice[0]:
                    best_choice = (gain, chain, cut)
        if best_choice is None:
            continue
        _, chain, cut = best_choice
        new_node, complemented = network.splice_chain(
            chain, list(cut.leaves)
        )
        network.replace_node(uid, new_node, complemented)
        network.sweep_dead()
        result.replacements += 1

    network.sweep_dead()
    result.gates_after = network.num_gates()
    return result
