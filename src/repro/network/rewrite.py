"""Exact-synthesis-based network rewriting.

The application the paper's introduction motivates ("SAT has been used
in logic synthesis to synthesize optimum Boolean chains … exact
synthesis"): walk the network, and for each node try to replace the
logic inside one of its cuts with a freshly synthesized *optimal*
chain from the NPN database.  A replacement is accepted when the new
chain is smaller than the logic it makes dead (DAG-aware gain, as in
"On-the-fly and DAG-aware" rewriting).

Because the database serves *all* optimal chains, the replacement can
be chosen by a secondary cost (depth by default) — the flexibility the
paper's all-solutions output is for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..chain.chain import BooleanChain
from ..chain.costs import COST_MODELS
from ..chain.transform import trivial_chain
from ..core.database import NPNDatabase
from .cuts import Cut, cut_function, enumerate_cuts
from .network import LogicNetwork

__all__ = [
    "RewriteResult",
    "StoreRewriteResult",
    "rewrite_network",
    "rewrite_with_store",
]


def _cone_above(
    network: LogicNetwork, root: int, leaves: tuple[int, ...]
) -> set[int]:
    """Internal nodes reachable from ``root`` without crossing the cut."""
    stop = set(leaves)
    cone: set[int] = set()
    stack = [root]
    while stack:
        uid = stack.pop()
        if uid in stop or uid in cone:
            continue
        node = network.node(uid)
        if node.is_pi:
            continue
        cone.add(uid)
        stack.extend(node.fanins)
    return cone


@dataclass
class RewriteResult:
    """What a rewriting pass did."""

    gates_before: int
    gates_after: int
    replacements: int = 0
    cuts_tried: int = 0

    @property
    def gain(self) -> int:
        """Gates saved."""
        return self.gates_before - self.gates_after


@dataclass
class StoreRewriteResult(RewriteResult):
    """A :func:`rewrite_with_store` pass, with its store traffic.

    ``synthesis_calls`` counts cuts that actually reached a synthesis
    engine — a warm store replays the same rewrite with this at zero.
    ``verified`` reports the pass-level packed-simulation equivalence
    check (the pass is rolled back when it fails, and skipped —
    reported False — above the 16-PI simulation cap).
    """

    store_hits: int = 0
    store_misses: int = 0
    synthesis_calls: int = 0
    verified: bool = False


def _rewrite_pass(
    network: LogicNetwork,
    chain_source: Callable[..., "Sequence[BooleanChain] | None"],
    *,
    cut_size: int,
    cost: Callable[[BooleanChain], float],
    max_cuts_per_node: int,
    zero_gain: bool,
    result: RewriteResult,
) -> None:
    """The shared DAG-aware replacement loop (in place).

    ``chain_source(local)`` maps a cut's local function to candidate
    chains (or None); the loop picks the cheapest by ``cost``, prices
    the replacement by MFFC-above-the-cut, and commits the best
    positive-gain choice per node.
    """
    cut_sets = enumerate_cuts(
        network, k=cut_size, max_cuts_per_node=max_cuts_per_node
    )
    for uid in network.topological_order():
        node = network.node(uid)
        if node.is_pi or node.dead:
            continue
        best_choice: tuple[int, BooleanChain, Cut] | None = None
        for cut in cut_sets.get(uid, []):
            if cut.size < 2 or cut.leaves == (uid,):
                continue
            if any(network.node(l).dead for l in cut.leaves):
                continue
            result.cuts_tried += 1
            local = cut_function(network, cut)
            chains = chain_source(local)
            if not chains:
                continue
            chain = min(chains, key=cost)
            # Only the part of the MFFC strictly above the cut leaves
            # actually dies (logic below stays alive through them).
            cone = _cone_above(network, uid, cut.leaves)
            saved = len(network.mffc(uid) & cone)
            added = chain.num_gates
            gain = saved - added
            if gain > 0 or (zero_gain and gain == 0):
                if best_choice is None or gain > best_choice[0]:
                    best_choice = (gain, chain, cut)
        if best_choice is None:
            continue
        _, chain, cut = best_choice
        new_node, complemented = network.splice_chain(
            chain, list(cut.leaves)
        )
        network.replace_node(uid, new_node, complemented)
        network.sweep_dead()
        result.replacements += 1

    network.sweep_dead()
    result.gates_after = network.num_gates()


def rewrite_network(
    network: LogicNetwork,
    database: NPNDatabase | None = None,
    cut_size: int = 4,
    tie_break: str | Callable[[BooleanChain], float] = "depth",
    max_cuts_per_node: int = 8,
    zero_gain: bool = False,
) -> RewriteResult:
    """One DAG-aware rewriting pass over the network (in place).

    Parameters
    ----------
    database:
        NPN chain database (shared across passes for caching); a fresh
        one is created when omitted.
    cut_size:
        Cut leaf limit; 4 keeps lookups inside the exact-NPN range.
    tie_break:
        Secondary cost choosing among the optimal chains of a class.
    zero_gain:
        Accept replacements that keep the size (useful to reshape for
        depth); by default only strictly size-reducing rewrites apply.
    """
    if cut_size > 4:
        raise ValueError(
            "rewriting uses exact NPN classification (cut_size <= 4)"
        )
    db = database if database is not None else NPNDatabase()
    cost = (
        COST_MODELS[tie_break] if isinstance(tie_break, str) else tie_break
    )
    result = RewriteResult(
        gates_before=network.num_gates(),
        gates_after=network.num_gates(),
    )
    _rewrite_pass(
        network,
        db.lookup,
        cut_size=cut_size,
        cost=cost,
        max_cuts_per_node=max_cuts_per_node,
        zero_gain=zero_gain,
        result=result,
    )
    return result


def rewrite_with_store(
    network: LogicNetwork,
    store,
    *,
    cut_size: int = 4,
    tie_break: str | Callable[[BooleanChain], float] = "depth",
    max_cuts_per_node: int = 8,
    zero_gain: bool = False,
    engines: Sequence[str] = ("stp",),
    race: bool = False,
    timeout_per_cut: float | None = 5.0,
    verify: bool = True,
    executor=None,
) -> StoreRewriteResult:
    """One store-backed DAG-aware rewriting pass (copy-verify-commit).

    Cut functions are served from the persistent
    :class:`~repro.store.ChainStore` when possible (inverse-NPN on
    hit) and synthesized through a fault-tolerant executor on a miss,
    which writes the fresh optimum back — so a benchmark suite warms
    the store once and every later pass over any circuit sharing the
    same NPN classes replays with **zero** synthesis calls.

    The pass runs on ``network.copy()``; with ``verify`` the rewritten
    copy's packed simulation is compared output-for-output against the
    original before :meth:`~repro.network.network.LogicNetwork.adopt`
    commits it.  A mismatch (or a network above the 16-PI simulation
    cap) leaves ``network`` untouched and reports ``verified=False``
    with ``gates_after == gates_before``.

    Parameters beyond :func:`rewrite_network`'s:

    engines:
        Engine fallback chain for cache misses (registry names).
    race:
        Race the default engine portfolio per miss
        (:class:`~repro.runtime.racing.RacingExecutor`) instead of
        walking a fallback chain.
    timeout_per_cut:
        Synthesis budget per cut miss, seconds (None = unbounded).
    executor:
        Pre-built executor override (must expose
        ``run(function, timeout)``); ``engines``/``race`` are ignored
        when given.  The executor should share ``store`` so write-backs
        land in the same database.
    """
    if cut_size > 4:
        raise ValueError(
            "rewriting uses exact NPN classification (cut_size <= 4)"
        )
    cost = (
        COST_MODELS[tie_break] if isinstance(tie_break, str) else tie_break
    )
    if executor is None:
        if race:
            from ..runtime.racing import RacingExecutor

            executor = RacingExecutor(store=store)
        else:
            from ..runtime.executor import FaultTolerantExecutor

            executor = FaultTolerantExecutor(
                tuple(engines), store=store
            )

    result = StoreRewriteResult(
        gates_before=network.num_gates(),
        gates_after=network.num_gates(),
    )

    def chain_source(local):
        trivial = trivial_chain(local)
        if trivial is not None:
            return [trivial]
        outcome = executor.run(local, timeout_per_cut)
        if outcome.engine == "store":
            result.store_hits += 1
        else:
            result.store_misses += 1
            result.synthesis_calls += 1
        if outcome.status != "ok" or outcome.result is None:
            return None
        return outcome.result.chains

    working = network.copy()
    _rewrite_pass(
        working,
        chain_source,
        cut_size=cut_size,
        cost=cost,
        max_cuts_per_node=max_cuts_per_node,
        zero_gain=zero_gain,
        result=result,
    )

    if verify:
        if len(network.pis) > 16:
            result.gates_after = result.gates_before
            result.verified = False
            return result
        before = [t.bits for t in network.simulate()]
        after = [t.bits for t in working.simulate()]
        if before != after:
            result.gates_after = result.gates_before
            result.verified = False
            return result
        result.verified = True
    network.adopt(working)
    return result
