"""Logic-network layer: k-LUT networks, cut enumeration, BLIF I/O and
exact-synthesis-based rewriting — the application side of the paper."""

from .network import LogicNetwork, Node
from .cuts import Cut, cut_function, enumerate_cuts
from .rewrite import (
    RewriteResult,
    StoreRewriteResult,
    rewrite_network,
    rewrite_with_store,
)
from .blif import blif_to_network, network_to_blif, read_blif, write_blif

__all__ = [
    "LogicNetwork",
    "Node",
    "Cut",
    "cut_function",
    "enumerate_cuts",
    "RewriteResult",
    "StoreRewriteResult",
    "rewrite_network",
    "rewrite_with_store",
    "blif_to_network",
    "network_to_blif",
    "read_blif",
    "write_blif",
]
