"""Command-line store-backed network rewriting.

Installed as ``repro-rewrite`` (also ``python -m repro.network.cli``)::

    repro-rewrite circuit.blif --store db.sqlite        # rewrite + report
    repro-rewrite circuit.blif --store db.sqlite --race # race engines per miss
    repro-rewrite circuit.blif --out smaller.blif       # write the result
    repro-rewrite circuit.blif --passes 3 --json r.json # converge + record

Each pass enumerates k-feasible cuts, serves every cut function from
the persistent chain store (inverse NPN transform on a hit) or
synthesizes it through the fault-tolerant runtime on a miss (the fresh
optimum is written back), and replaces the node when the optimal chain
is smaller than the logic it makes dead.  Every pass is verified by
packed simulation before it is committed; an unverifiable pass is
rolled back and reported.

====  =============================================
code  meaning
====  =============================================
0     rewritten (or nothing to improve)
5     a pass failed verification and was rolled back
65    malformed input (unreadable/invalid BLIF)
====  =============================================
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from .blif import blif_to_network, network_to_blif
from .rewrite import rewrite_with_store

EXIT_OK = 0
EXIT_UNVERIFIED = 5
EXIT_BAD_INPUT = 65


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-rewrite`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-rewrite",
        description="Exact-synthesis network rewriting backed by a "
        "persistent chain store.",
    )
    parser.add_argument("blif", help="input circuit (BLIF)")
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        help="persistent chain-store path (SQLite); a temporary "
        "throwaway store is used when omitted",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the rewritten network as BLIF to this path",
    )
    parser.add_argument(
        "--engine",
        type=str,
        default="stp",
        help="synthesis engine for store misses (default: stp)",
    )
    parser.add_argument(
        "--race",
        action="store_true",
        help="race the default engine portfolio on every store miss "
        "instead of walking a fallback chain",
    )
    parser.add_argument(
        "--cut-size",
        type=int,
        default=4,
        help="cut leaf limit (<= 4, the exact-NPN range)",
    )
    parser.add_argument(
        "--passes",
        type=int,
        default=1,
        help="maximum rewriting passes (stops early at zero gain)",
    )
    parser.add_argument(
        "--timeout-per-cut",
        type=float,
        default=5.0,
        help="synthesis budget per cache miss, seconds",
    )
    parser.add_argument(
        "--zero-gain",
        action="store_true",
        help="also accept size-preserving replacements",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-pass packed-simulation equivalence check",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the per-pass report as JSON to this path",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        with open(args.blif) as handle:
            network = blif_to_network(handle.read())
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT

    from ..store import ChainStore

    if args.store:
        store = ChainStore(args.store)
        tmp_dir = None
    else:
        import tempfile

        tmp_dir = tempfile.TemporaryDirectory(prefix="repro-rewrite-")
        store = ChainStore(f"{tmp_dir.name}/store.db")

    passes: list[dict] = []
    unverified = False
    started = time.perf_counter()
    try:
        for index in range(max(1, args.passes)):
            result = rewrite_with_store(
                network,
                store,
                cut_size=args.cut_size,
                zero_gain=args.zero_gain,
                engines=(args.engine,),
                race=args.race,
                timeout_per_cut=args.timeout_per_cut,
                verify=not args.no_verify,
            )
            passes.append(
                {
                    "pass": index + 1,
                    "gates_before": result.gates_before,
                    "gates_after": result.gates_after,
                    "replacements": result.replacements,
                    "cuts_tried": result.cuts_tried,
                    "store_hits": result.store_hits,
                    "store_misses": result.store_misses,
                    "synthesis_calls": result.synthesis_calls,
                    "verified": result.verified,
                }
            )
            print(
                f"pass {index + 1}: {result.gates_before} -> "
                f"{result.gates_after} gates "
                f"({result.replacements} replacement(s), "
                f"{result.store_hits} store hit(s), "
                f"{result.synthesis_calls} synthesis call(s))"
            )
            if not args.no_verify and not result.verified:
                print(
                    "pass failed packed-simulation verification; "
                    "rolled back",
                    file=sys.stderr,
                )
                unverified = True
                break
            if result.gain <= 0:
                break
        counters = store.counters()
    finally:
        store.close()
        if tmp_dir is not None:
            tmp_dir.cleanup()

    total_before = passes[0]["gates_before"]
    total_after = passes[-1]["gates_after"]
    print(
        f"total: {total_before} -> {total_after} gates in "
        f"{time.perf_counter() - started:.3f}s "
        f"(store: {counters['hits']} hit(s), "
        f"{counters['writes']} write(s))"
    )

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(network_to_blif(network))
        print(f"wrote {args.out}")
    if args.json:
        report = {
            "input": args.blif,
            "gates_before": total_before,
            "gates_after": total_after,
            "passes": passes,
            "store": counters,
        }
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return EXIT_UNVERIFIED if unverified else EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
