"""BLIF reader/writer for logic networks.

Supports the combinational subset: ``.model``, ``.inputs``,
``.outputs``, ``.names`` with SOP covers over ``0/1/-`` and a single
output phase, plus constant covers.  Enough to round-trip the networks
this library produces and to exchange results with ABC-family tools.
"""

from __future__ import annotations

from typing import TextIO

from ..truthtable.table import TruthTable, constant
from .network import LogicNetwork

__all__ = ["write_blif", "read_blif", "network_to_blif", "blif_to_network"]


def _cover_to_table(cover: list[tuple[str, str]], arity: int) -> TruthTable:
    """SOP cover rows → truth table (output phase handled)."""
    if not cover:
        return constant(0, arity)
    phase = cover[0][1]
    onset = 0
    for pattern, value in cover:
        if value != phase:
            raise ValueError("mixed output phases in one cover")
        if len(pattern) != arity:
            raise ValueError(
                f"cube {pattern!r} does not match arity {arity}"
            )
        free = [i for i, ch in enumerate(pattern) if ch == "-"]
        base = 0
        for i, ch in enumerate(pattern):
            if ch == "1":
                base |= 1 << i
            elif ch not in "01-":
                raise ValueError(f"bad cube character {ch!r}")
        for combo in range(1 << len(free)):
            row = base
            for j, i in enumerate(free):
                if (combo >> j) & 1:
                    row |= 1 << i
            onset |= 1 << row
    table = TruthTable(onset, arity)
    return table if phase == "1" else ~table


def _table_to_cover(table: TruthTable) -> list[str]:
    """Truth table → one cube per onset minterm (canonical, simple)."""
    lines = []
    for row in table.onset():
        pattern = "".join(
            "1" if (row >> i) & 1 else "0" for i in range(table.num_vars)
        )
        lines.append(f"{pattern} 1")
    return lines


def network_to_blif(network: LogicNetwork) -> str:
    """Serialise a network as BLIF text."""
    names = {uid: f"n{uid}" for uid in (n.uid for n in network.live_nodes())}
    for i, uid in enumerate(network.pis):
        names[uid] = f"pi{i}"
    lines = [f".model {network.name}"]
    lines.append(".inputs " + " ".join(names[uid] for uid in network.pis))
    po_names = []
    po_defs = []
    for i, (node, complemented) in enumerate(network.pos):
        po_name = f"po{i}"
        po_names.append(po_name)
        driver = names[node]
        if complemented:
            po_defs.append(f".names {driver} {po_name}\n0 1")
        else:
            po_defs.append(f".names {driver} {po_name}\n1 1")
    lines.append(".outputs " + " ".join(po_names))
    for uid in network.topological_order():
        node = network.node(uid)
        if node.is_pi:
            continue
        fanin_names = " ".join(names[f] for f in node.fanins)
        header = f".names {fanin_names} {names[uid]}".replace("  ", " ")
        cover = _table_to_cover(node.function)
        if not cover:
            lines.append(f".names {names[uid]}")  # constant 0
        elif node.function.bits == node.function.num_rows_mask() and node.arity == 0:
            lines.append(f".names {names[uid]}\n1")
        else:
            lines.append(header + "\n" + "\n".join(cover))
    lines.extend(po_defs)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif(network: LogicNetwork, handle: TextIO) -> None:
    """Write BLIF to an open text file."""
    handle.write(network_to_blif(network))


def blif_to_network(text: str) -> LogicNetwork:
    """Parse BLIF text into a network."""
    model = "top"
    inputs: list[str] = []
    outputs: list[str] = []
    covers: dict[str, tuple[list[str], list[tuple[str, str]]]] = {}

    current: tuple[list[str], str] | None = None
    logical_lines: list[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        logical_lines.append(pending + line)
        pending = ""

    for line in logical_lines:
        tokens = line.split()
        if tokens[0] == ".model":
            model = tokens[1] if len(tokens) > 1 else model
            current = None
        elif tokens[0] == ".inputs":
            inputs.extend(tokens[1:])
            current = None
        elif tokens[0] == ".outputs":
            outputs.extend(tokens[1:])
            current = None
        elif tokens[0] == ".names":
            target = tokens[-1]
            fanins = tokens[1:-1]
            covers[target] = (fanins, [])
            current = (fanins, target)
        elif tokens[0] in (".end", ".exdc"):
            current = None
        elif tokens[0].startswith("."):
            raise ValueError(f"unsupported BLIF construct {tokens[0]}")
        else:
            if current is None:
                raise ValueError(f"cover line outside .names: {line!r}")
            fanins, target = current
            if len(tokens) == 1 and not fanins:
                covers[target][1].append(("", tokens[0]))
            elif len(tokens) == 2:
                covers[target][1].append((tokens[0], tokens[1]))
            else:
                raise ValueError(f"bad cover line {line!r}")

    network = LogicNetwork(model)
    node_of: dict[str, int] = {}
    for name in inputs:
        node_of[name] = network.add_pi()

    def build(name: str) -> int:
        if name in node_of:
            return node_of[name]
        if name not in covers:
            raise ValueError(f"undefined signal {name!r}")
        fanins, cover = covers[name]
        fanin_nodes = [build(f) for f in fanins]
        table = _cover_to_table(cover, len(fanins))
        uid = network.add_node(table, fanin_nodes)
        node_of[name] = uid
        return uid

    for name in outputs:
        network.add_po(build(name))
    return network


def read_blif(handle: TextIO) -> LogicNetwork:
    """Read BLIF from an open text file."""
    return blif_to_network(handle.read())
