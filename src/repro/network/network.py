"""Multi-level logic networks of k-LUT nodes.

The downstream consumer of exact synthesis: a mutable DAG of LUT nodes
(the paper's 2-LUT chains drop straight in, and rewriting replaces
subnetworks with freshly synthesized optimal chains).

Design notes:

* Nodes carry a :class:`~repro.truthtable.TruthTable` over their fanins
  (``fanins[0]`` is the table's least-significant variable), the same
  convention as :class:`~repro.chain.BooleanChain` gates.
* Node ids are stable; deletion marks nodes dead and cleanup is
  explicit, so iteration during rewriting stays simple.
* Simulation is bit-parallel: every node's global function over the
  primary inputs is a Python int of ``2^num_pis`` bits (fine for the
  network sizes exact synthesis plays at).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..chain.chain import BooleanChain
from ..truthtable.table import TruthTable

__all__ = ["Node", "LogicNetwork"]


@dataclass
class Node:
    """One LUT node; ``function`` is local over ``fanins``."""

    uid: int
    fanins: tuple[int, ...]
    function: TruthTable
    is_pi: bool = False
    dead: bool = False

    @property
    def arity(self) -> int:
        """Number of fanins."""
        return len(self.fanins)


class LogicNetwork:
    """A DAG of k-LUT nodes with primary inputs and outputs."""

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._pis: list[int] = []
        self._pos: list[tuple[int, bool]] = []
        self._next_uid = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_pi(self) -> int:
        """Create a primary input; returns its node id."""
        uid = self._next_uid
        self._next_uid += 1
        self._nodes[uid] = Node(
            uid, (), TruthTable(0b10, 1), is_pi=True
        )
        self._pis.append(uid)
        return uid

    def add_node(
        self, function: TruthTable, fanins: Sequence[int]
    ) -> int:
        """Create a LUT node computing ``function`` over ``fanins``."""
        if function.num_vars != len(fanins):
            raise ValueError(
                f"LUT arity {function.num_vars} does not match "
                f"{len(fanins)} fanins"
            )
        for f in fanins:
            if f not in self._nodes or self._nodes[f].dead:
                raise ValueError(f"fanin {f} does not exist")
        uid = self._next_uid
        self._next_uid += 1
        self._nodes[uid] = Node(uid, tuple(fanins), function)
        return uid

    def add_po(self, node: int, complemented: bool = False) -> None:
        """Declare a primary output."""
        if node not in self._nodes:
            raise ValueError(f"node {node} does not exist")
        self._pos.append((node, complemented))

    def redirect_po(self, index: int, node: int, complemented: bool) -> None:
        """Re-point an existing primary output."""
        if node not in self._nodes:
            raise ValueError(f"node {node} does not exist")
        self._pos[index] = (node, complemented)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def pis(self) -> tuple[int, ...]:
        """Primary input ids, in creation order."""
        return tuple(self._pis)

    @property
    def pos(self) -> tuple[tuple[int, bool], ...]:
        """Primary outputs as ``(node, complemented)``."""
        return tuple(self._pos)

    def node(self, uid: int) -> Node:
        """Access a node by id."""
        return self._nodes[uid]

    def __contains__(self, uid: int) -> bool:
        return uid in self._nodes and not self._nodes[uid].dead

    def live_nodes(self) -> Iterator[Node]:
        """All non-dead nodes (PIs included)."""
        for node in self._nodes.values():
            if not node.dead:
                yield node

    def num_gates(self) -> int:
        """Live internal (non-PI) nodes."""
        return sum(
            1
            for node in self.live_nodes()
            if not node.is_pi
        )

    def fanout_map(self) -> dict[int, list[int]]:
        """Node id → list of reader node ids."""
        fanouts: dict[int, list[int]] = {
            node.uid: [] for node in self.live_nodes()
        }
        for node in self.live_nodes():
            for f in node.fanins:
                fanouts[f].append(node.uid)
        return fanouts

    def topological_order(self) -> list[int]:
        """Live node ids, fanins before fanouts."""
        order: list[int] = []
        state: dict[int, int] = {}

        def visit(uid: int) -> None:
            stack = [(uid, 0)]
            while stack:
                current, phase = stack.pop()
                if phase == 0:
                    if state.get(current) == 2:
                        continue
                    if state.get(current) == 1:
                        raise ValueError("cycle detected")
                    state[current] = 1
                    stack.append((current, 1))
                    for f in self._nodes[current].fanins:
                        if state.get(f) != 2:
                            stack.append((f, 0))
                else:
                    state[current] = 2
                    order.append(current)

        for uid in self._pis:
            visit(uid)
        for node in self._nodes.values():
            if not node.dead:
                visit(node.uid)
        return order

    def depth(self) -> int:
        """Longest PI→PO path in LUT levels."""
        levels: dict[int, int] = {}
        for uid in self.topological_order():
            node = self._nodes[uid]
            if node.is_pi:
                levels[uid] = 0
            else:
                levels[uid] = 1 + max(
                    (levels[f] for f in node.fanins), default=0
                )
        if not self._pos:
            return 0
        return max(levels[n] for n, _ in self._pos)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def simulate(self) -> list[TruthTable]:
        """Global function of every PO over the primary inputs."""
        patterns = self.simulate_nodes()
        n = len(self._pis)
        out = []
        for node, complemented in self._pos:
            table = TruthTable(patterns[node], n)
            out.append(~table if complemented else table)
        return out

    def simulate_nodes(self) -> dict[int, int]:
        """Bit-parallel global pattern (int over 2^num_pis rows) per
        live node."""
        n = len(self._pis)
        if n > 16:
            raise ValueError("bit-parallel simulation capped at 16 PIs")
        rows = 1 << n
        patterns: dict[int, int] = {}
        pi_index = {uid: i for i, uid in enumerate(self._pis)}
        for uid in self.topological_order():
            node = self._nodes[uid]
            if node.is_pi:
                i = pi_index[uid]
                pattern = 0
                for m in range(rows):
                    if (m >> i) & 1:
                        pattern |= 1 << m
                patterns[uid] = pattern
            else:
                fanin_patterns = [patterns[f] for f in node.fanins]
                pattern = 0
                for m in range(rows):
                    row = 0
                    for j, fp in enumerate(fanin_patterns):
                        row |= ((fp >> m) & 1) << j
                    if node.function.value(row):
                        pattern |= 1 << m
                patterns[uid] = pattern
        return patterns

    # ------------------------------------------------------------------
    # structural rewriting support
    # ------------------------------------------------------------------
    def mffc(self, root: int) -> set[int]:
        """Maximum fanout-free cone: nodes that die if ``root`` dies."""
        fanouts = self.fanout_map()
        po_nodes = {n for n, _ in self._pos}
        cone: set[int] = set()

        def grab(uid: int) -> None:
            node = self._nodes[uid]
            if node.is_pi or uid in cone:
                return
            cone.add(uid)
            for f in node.fanins:
                child = self._nodes[f]
                if child.is_pi:
                    continue
                readers = set(fanouts[f])
                if readers <= cone | {root} and f not in po_nodes:
                    grab(f)

        grab(root)
        return cone

    def splice_chain(
        self, chain: BooleanChain, leaves: Sequence[int]
    ) -> tuple[int, bool]:
        """Instantiate a Boolean chain with its PIs bound to ``leaves``.

        Returns ``(node, complemented)`` for the chain's *first*
        output; multi-output chains splice through
        :meth:`splice_chain_multi`.  Zero-gate chains resolve to a
        leaf or to a constant node.
        """
        return self.splice_chain_multi(chain, leaves)[0]

    def splice_chain_multi(
        self, chain: BooleanChain, leaves: Sequence[int]
    ) -> list[tuple[int, bool]]:
        """Instantiate a chain and return every output's
        ``(node, complemented)`` pair, in the chain's output order.

        Shared interior gates are instantiated once; a CONST0 output
        resolves to a single constant node shared by all such outputs.
        """
        if len(leaves) != chain.num_inputs:
            raise ValueError("leaf count must match the chain inputs")
        mapping: dict[int, int] = {
            i: leaf for i, leaf in enumerate(leaves)
        }
        for gi, gate in enumerate(chain.gates):
            uid = self.add_node(
                gate.local_table(),
                tuple(mapping[f] for f in gate.fanins),
            )
            mapping[chain.num_inputs + gi] = uid
        const: int | None = None
        out: list[tuple[int, bool]] = []
        for signal, complemented in chain.outputs:
            if signal == BooleanChain.CONST0:
                if const is None:
                    const = self.add_node(TruthTable(0, 0), ())
                out.append((const, complemented))
            else:
                out.append((mapping[signal], complemented))
        return out

    def replace_node(
        self, old: int, new: int, complemented: bool
    ) -> None:
        """Route every reader (and PO) of ``old`` to ``new``.

        A complemented replacement is absorbed into the reader LUTs.
        """
        if old == new:
            return
        for node in list(self.live_nodes()):
            if old in node.fanins:
                function = node.function
                if complemented:
                    for pos, f in enumerate(node.fanins):
                        if f == old:
                            function = function.flip_var(pos)
                fanins = tuple(
                    new if f == old else f for f in node.fanins
                )
                node.fanins = fanins
                node.function = function
        for index, (po, po_compl) in enumerate(self._pos):
            if po == old:
                self._pos[index] = (new, po_compl ^ complemented)

    def sweep_dead(self) -> int:
        """Mark unreachable internal nodes dead; returns how many."""
        reachable: set[int] = set()
        stack = [n for n, _ in self._pos]
        while stack:
            uid = stack.pop()
            if uid in reachable:
                continue
            reachable.add(uid)
            stack.extend(self._nodes[uid].fanins)
        swept = 0
        for node in self._nodes.values():
            if node.is_pi or node.dead:
                continue
            if node.uid not in reachable:
                node.dead = True
                swept += 1
        return swept

    def adopt(self, other: "LogicNetwork") -> None:
        """Take over ``other``'s structure in place.

        The commit half of a copy-verify-commit pass: run a rewriting
        pass on ``network.copy()``, check equivalence, then ``adopt``
        the working copy — callers holding a reference to this network
        see the rewritten structure, and a failed check simply drops
        the copy.
        """
        self.name = other.name
        self._nodes = other._nodes
        self._pis = other._pis
        self._pos = other._pos
        self._next_uid = other._next_uid

    def copy(self) -> "LogicNetwork":
        """Deep structural copy."""
        dup = LogicNetwork(self.name)
        dup._next_uid = self._next_uid
        dup._pis = list(self._pis)
        dup._pos = list(self._pos)
        for uid, node in self._nodes.items():
            dup._nodes[uid] = Node(
                node.uid,
                node.fanins,
                node.function,
                node.is_pi,
                node.dead,
            )
        return dup

    def __repr__(self) -> str:
        return (
            f"LogicNetwork({self.name!r}, pis={len(self._pis)}, "
            f"gates={self.num_gates()}, pos={len(self._pos)})"
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_chain(cls, chain: BooleanChain, name: str = "chain") -> "LogicNetwork":
        """Wrap a Boolean chain as a network — one PO per chain
        output, shared gates instantiated once."""
        net = cls(name)
        leaves = [net.add_pi() for _ in range(chain.num_inputs)]
        for node, complemented in net.splice_chain_multi(chain, leaves):
            net.add_po(node, complemented)
        return net
