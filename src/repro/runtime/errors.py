"""Structured exception hierarchy for the fault-tolerant runtime.

Every failure mode of a synthesis run has a dedicated class so callers
can branch on *what went wrong* instead of parsing messages:

``SynthesisError``
    Base class of everything the runtime raises deliberately.
``BudgetExceeded``
    The wall-clock budget ran out (also a :class:`TimeoutError`, so
    pre-existing ``except TimeoutError`` sites keep working).
``SynthesisInfeasible``
    No chain exists within the gate cap (also a :class:`RuntimeError`
    for backwards compatibility with the seed engines).
``WorkerCrash``
    An isolated worker process died or raised an unexpected exception.
``VerificationFailed``
    An engine returned a chain that does not realise the target.
``EngineUnavailable``
    A named engine is unknown or cannot run in this environment.

This module has **no** intra-package imports so that low-level modules
(e.g. :mod:`repro.core.spec`) can use it without import cycles.
"""

from __future__ import annotations

__all__ = [
    "SynthesisError",
    "BudgetExceeded",
    "SynthesisInfeasible",
    "WorkerCrash",
    "VerificationFailed",
    "EngineUnavailable",
    "classify_failure",
]


class SynthesisError(Exception):
    """Base class for all deliberate synthesis-runtime failures."""

    #: Short machine-readable tag used in outcome records / exit codes.
    status = "error"


class BudgetExceeded(SynthesisError, TimeoutError):
    """The wall-clock budget for a synthesis run was exhausted.

    Subclasses :class:`TimeoutError` so legacy ``except TimeoutError``
    handlers (bench runner, CLI, tests) continue to work unchanged.
    """

    status = "timeout"

    def __init__(
        self,
        message: str = "synthesis budget exceeded",
        *,
        budget: float | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message)
        self.budget = budget
        self.elapsed = elapsed


class SynthesisInfeasible(SynthesisError, RuntimeError):
    """No chain exists within the configured gate cap.

    Subclasses :class:`RuntimeError` because the seed engines signalled
    a hit gate cap with a bare ``RuntimeError``.
    """

    status = "infeasible"


class WorkerCrash(SynthesisError):
    """An isolated worker process died unexpectedly."""

    status = "crash"

    def __init__(
        self,
        message: str = "synthesis worker crashed",
        *,
        exitcode: int | None = None,
    ) -> None:
        super().__init__(message)
        self.exitcode = exitcode


class VerificationFailed(SynthesisError):
    """An engine returned a chain that does not realise the target."""

    status = "corrupt"


class EngineUnavailable(SynthesisError):
    """A requested synthesis engine is unknown or cannot run here."""

    status = "unavailable"


def classify_failure(exc: BaseException) -> str:
    """Map an exception to its outcome-record status tag.

    Structured errors carry their own tag; legacy ``TimeoutError`` and
    ``RuntimeError`` raises from un-migrated engines are folded into
    the matching structured category; anything else is a crash.
    """
    if isinstance(exc, SynthesisError):
        return exc.status
    if isinstance(exc, TimeoutError):
        return BudgetExceeded.status
    if isinstance(exc, (RuntimeError, MemoryError, AssertionError)):
        return WorkerCrash.status
    return WorkerCrash.status
