"""Process-isolated synthesis workers with hard wall-clock timeouts.

The cooperative :class:`~repro.core.spec.Deadline` is only as reliable
as the hottest loop's polling discipline.  This module provides the
uncooperative backstop: the engine runs in a child process, the parent
waits at most ``grace × budget`` for a result, and a worker that is
still running past that point is killed outright.  A killed or crashed
worker surfaces as a structured :class:`BudgetExceeded` /
:class:`WorkerCrash` instead of wedging the suite.

An optional ``resource.setrlimit(RLIMIT_AS)`` cap turns pathological
memory growth into a clean in-child ``MemoryError`` (reported as a
crash) rather than an OOM-killed test host.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

from ..core.spec import SynthesisResult
from ..truthtable.table import TruthTable
from .engines import get_engine
from .errors import (
    BudgetExceeded,
    EngineUnavailable,
    SynthesisInfeasible,
    WorkerCrash,
)
from .faults import FaultSpec, execute_fault

__all__ = ["WorkerTask", "run_isolated", "DEFAULT_GRACE"]

#: Hard-kill multiplier: a worker is allowed ``grace × budget`` seconds
#: of wall clock before the parent kills it.  1.4 keeps the guarantee
#: "killed within 1.5× its budget" with margin for kill/join overhead.
DEFAULT_GRACE = 1.4

#: Floor on the hard timeout so tiny budgets still cover process
#: start-up on slow machines.
_MIN_HARD_TIMEOUT = 0.25


@dataclass(frozen=True)
class WorkerTask:
    """A picklable description of one isolated synthesis attempt."""

    engine: str
    bits: int
    num_vars: int
    timeout: float | None
    engine_kwargs: dict = field(default_factory=dict)
    fault: FaultSpec | None = None
    memory_limit_mb: int | None = None

    def function(self) -> TruthTable:
        """Reconstruct the target truth table."""
        return TruthTable(self.bits, self.num_vars)


def _apply_memory_limit(limit_mb: int) -> None:
    import resource

    limit = limit_mb * 1024 * 1024
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    if hard != resource.RLIM_INFINITY:
        limit = min(limit, hard)
    resource.setrlimit(resource.RLIMIT_AS, (limit, hard))


def _child_main(task: WorkerTask, conn) -> None:
    """Worker entry point: run the engine (or a fault) and report back.

    The protocol is a single ``(tag, payload)`` tuple: ``("ok",
    SynthesisResult)`` or ``(status, message)`` for structured
    failures.  Anything that prevents even that handshake (hard kill,
    ``os._exit``, rlimit SIGKILL) is detected by the parent as EOF.
    """
    try:
        if task.memory_limit_mb is not None:
            _apply_memory_limit(task.memory_limit_mb)
        function = task.function()
        if task.fault is not None:
            result = execute_fault(
                task.fault, function, task.timeout, isolated=True
            )
        else:
            engine = get_engine(task.engine)
            result = engine(function, task.timeout, **task.engine_kwargs)
        try:
            conn.send(("ok", result))
        except Exception as exc:
            conn.send(("crash", f"unpicklable worker result: {exc}"))
    except BudgetExceeded as exc:
        conn.send(("timeout", str(exc)))
    except SynthesisInfeasible as exc:
        conn.send(("infeasible", str(exc)))
    except EngineUnavailable as exc:
        conn.send(("unavailable", str(exc)))
    except MemoryError:
        conn.send(("crash", "worker exceeded its memory cap"))
    except Exception as exc:
        conn.send(("crash", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _context():
    """Prefer fork (fast, inherits the warm interpreter) over spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_isolated(
    task: WorkerTask, *, grace: float = DEFAULT_GRACE
) -> SynthesisResult:
    """Run one synthesis attempt in a worker process.

    Blocks until the worker reports, crashes, or exceeds the hard
    timeout ``max(grace × timeout, 0.25s)``; a worker still alive at
    that point is killed and reported as :class:`BudgetExceeded`.
    """
    ctx = _context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_child_main, args=(task, child_conn), daemon=True
    )
    start = time.perf_counter()
    process.start()
    child_conn.close()
    # The hard deadline is measured from *before* the fork so process
    # start-up overhead cannot push the kill past grace × budget.
    hard_timeout = None
    if task.timeout is not None:
        hard_timeout = max(task.timeout * grace, _MIN_HARD_TIMEOUT)
        hard_timeout = max(
            0.0, hard_timeout - (time.perf_counter() - start)
        )
    try:
        if not parent_conn.poll(hard_timeout):
            _kill(process)
            raise BudgetExceeded(
                f"worker for engine {task.engine!r} exceeded its "
                f"{task.timeout:.3f}s budget and was killed after "
                f"{time.perf_counter() - start:.3f}s",
                budget=task.timeout,
                elapsed=time.perf_counter() - start,
            )
        try:
            tag, payload = parent_conn.recv()
        except EOFError:
            process.join(timeout=5.0)
            raise WorkerCrash(
                f"worker for engine {task.engine!r} died without "
                f"reporting (exit code {process.exitcode})",
                exitcode=process.exitcode,
            ) from None
    finally:
        parent_conn.close()
        if process.is_alive():
            _kill(process)
        else:
            process.join(timeout=5.0)

    if tag == "ok":
        return payload
    if tag == "timeout":
        raise BudgetExceeded(payload, budget=task.timeout)
    if tag == "infeasible":
        raise SynthesisInfeasible(payload)
    if tag == "unavailable":
        raise EngineUnavailable(payload)
    raise WorkerCrash(payload, exitcode=process.exitcode)


def _kill(process) -> None:
    """Terminate, escalate to SIGKILL, and reap a stuck worker."""
    process.terminate()
    process.join(timeout=1.0)
    if process.is_alive():  # pragma: no cover - terminate usually lands
        process.kill()
        process.join(timeout=5.0)
