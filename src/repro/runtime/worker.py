"""Process-isolated synthesis workers with hard wall-clock timeouts.

The cooperative :class:`~repro.core.spec.Deadline` is only as reliable
as the hottest loop's polling discipline.  This module provides the
uncooperative backstop: the engine runs in a child process, the parent
waits at most ``grace × budget`` for a result, and a worker that is
still running past that point is killed outright.  A killed or crashed
worker surfaces as a structured :class:`BudgetExceeded` /
:class:`WorkerCrash` instead of wedging the suite.

An optional ``resource.setrlimit(RLIMIT_AS)`` cap turns pathological
memory growth into a clean in-child ``MemoryError`` (reported as a
crash) rather than an OOM-killed test host.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

from ..core.spec import SynthesisResult
from ..truthtable.table import TruthTable
from .engines import get_engine
from .errors import (
    BudgetExceeded,
    EngineUnavailable,
    SynthesisInfeasible,
    WorkerCrash,
)
from .faults import FaultSpec, execute_fault

__all__ = ["WorkerTask", "WorkerHandle", "run_isolated", "DEFAULT_GRACE"]

#: Hard-kill multiplier: a worker is allowed ``grace × budget`` seconds
#: of wall clock before the parent kills it.  1.4 keeps the guarantee
#: "killed within 1.5× its budget" with margin for kill/join overhead.
DEFAULT_GRACE = 1.4

#: Floor on the hard timeout so tiny budgets still cover process
#: start-up on slow machines.
_MIN_HARD_TIMEOUT = 0.25


@dataclass(frozen=True)
class WorkerTask:
    """A picklable description of one isolated synthesis attempt."""

    engine: str
    bits: int
    num_vars: int
    timeout: float | None
    engine_kwargs: dict = field(default_factory=dict)
    fault: FaultSpec | None = None
    memory_limit_mb: int | None = None

    def function(self) -> TruthTable:
        """Reconstruct the target truth table."""
        return TruthTable(self.bits, self.num_vars)


def _apply_memory_limit(limit_mb: int) -> None:
    import resource

    limit = limit_mb * 1024 * 1024
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    if hard != resource.RLIM_INFINITY:
        limit = min(limit, hard)
    resource.setrlimit(resource.RLIMIT_AS, (limit, hard))


def _child_main(task: WorkerTask, conn) -> None:
    """Worker entry point: run the engine (or a fault) and report back.

    The protocol is a single ``(tag, payload)`` tuple: ``("ok",
    SynthesisResult)`` or ``(status, message)`` for structured
    failures.  Anything that prevents even that handshake (hard kill,
    ``os._exit``, rlimit SIGKILL) is detected by the parent as EOF.
    """
    try:
        if task.memory_limit_mb is not None:
            _apply_memory_limit(task.memory_limit_mb)
        function = task.function()
        if task.fault is not None:
            result = execute_fault(
                task.fault, function, task.timeout, isolated=True
            )
        else:
            engine = get_engine(task.engine)
            result = engine(function, task.timeout, **task.engine_kwargs)
        try:
            conn.send(("ok", result))
        except Exception as exc:
            conn.send(("crash", f"unpicklable worker result: {exc}"))
    except BudgetExceeded as exc:
        conn.send(("timeout", str(exc)))
    except SynthesisInfeasible as exc:
        conn.send(("infeasible", str(exc)))
    except EngineUnavailable as exc:
        conn.send(("unavailable", str(exc)))
    except MemoryError:
        conn.send(("crash", "worker exceeded its memory cap"))
    except Exception as exc:
        conn.send(("crash", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _context():
    """Prefer fork (fast, inherits the warm interpreter) over spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class WorkerHandle:
    """One in-flight isolated synthesis attempt.

    The constructor forks the worker immediately; the parent then
    either blocks in :meth:`result` (the historical ``run_isolated``
    behaviour) or drives several handles concurrently via the
    non-blocking :meth:`ready` / :meth:`overdue` pair — the racing
    executor's polling loop.  However the race ends, :meth:`cancel`
    (or the ``finally`` path of :meth:`result`) guarantees the child
    is killed and reaped: a handle never leaks a zombie.
    """

    def __init__(
        self, task: WorkerTask, *, grace: float = DEFAULT_GRACE
    ) -> None:
        self.task = task
        ctx = _context()
        self._conn, child_conn = ctx.Pipe(duplex=False)
        self._process = ctx.Process(
            target=_child_main, args=(task, child_conn), daemon=True
        )
        # The hard deadline is measured from *before* the fork so
        # process start-up overhead cannot push the kill past
        # grace × budget.
        self._start = time.perf_counter()
        self._process.start()
        child_conn.close()
        self._hard_deadline: float | None = None
        if task.timeout is not None:
            self._hard_deadline = self._start + max(
                task.timeout * grace, _MIN_HARD_TIMEOUT
            )
        self._closed = False

    # -- introspection -------------------------------------------------
    @property
    def engine(self) -> str:
        return self.task.engine

    @property
    def pid(self) -> int | None:
        return self._process.pid

    @property
    def elapsed(self) -> float:
        """Seconds since the worker was forked."""
        return time.perf_counter() - self._start

    def alive(self) -> bool:
        """True while the child process is running."""
        return not self._closed and self._process.is_alive()

    # -- non-blocking polling (racing) ---------------------------------
    def ready(self) -> bool:
        """True when a report can be collected without blocking.

        Covers both a delivered message and a child that died without
        reporting (EOF on the pipe).
        """
        if self._closed:
            return False
        try:
            if self._conn.poll(0):
                return True
        except (OSError, ValueError):  # pragma: no cover - closed pipe
            return True
        return not self._process.is_alive()

    def overdue(self) -> bool:
        """True once the hard wall-clock deadline has passed."""
        return (
            not self._closed
            and self._hard_deadline is not None
            and time.perf_counter() > self._hard_deadline
        )

    # -- collection ----------------------------------------------------
    def result(self, block: bool = True) -> SynthesisResult:
        """Collect the worker's report (the ``run_isolated`` contract).

        Blocks until the worker reports, crashes, or exceeds the hard
        timeout; with ``block=False`` the report must already be
        :meth:`ready`.  Always kills and reaps the child on exit.
        """
        timeout_arg: float | None = 0 if not block else None
        if block and self._hard_deadline is not None:
            timeout_arg = max(
                0.0, self._hard_deadline - time.perf_counter()
            )
        try:
            if not self._conn.poll(timeout_arg):
                if self._process.is_alive():
                    _kill(self._process)
                    raise BudgetExceeded(
                        f"worker for engine {self.task.engine!r} "
                        f"exceeded its {self.task.timeout:.3f}s budget "
                        f"and was killed after {self.elapsed:.3f}s",
                        budget=self.task.timeout,
                        elapsed=self.elapsed,
                    )
                raise EOFError
            tag, payload = self._conn.recv()
        except EOFError:
            self._process.join(timeout=5.0)
            raise WorkerCrash(
                f"worker for engine {self.task.engine!r} died without "
                f"reporting (exit code {self._process.exitcode})",
                exitcode=self._process.exitcode,
            ) from None
        finally:
            self.close()

        if tag == "ok":
            return payload
        if tag == "timeout":
            raise BudgetExceeded(payload, budget=self.task.timeout)
        if tag == "infeasible":
            raise SynthesisInfeasible(payload)
        if tag == "unavailable":
            raise EngineUnavailable(payload)
        raise WorkerCrash(payload, exitcode=self._process.exitcode)

    def cancel(self) -> float:
        """Kill and reap the worker; returns the kill-to-reap latency.

        Idempotent, and safe to call on an already-finished worker (a
        plain reap, near-zero latency).  This is the racing executor's
        loser path, so the returned latency is the per-loser
        cancellation accounting.
        """
        started = time.perf_counter()
        if not self._closed:
            if self._process.is_alive():
                _kill(self._process)
            self.close()
        return time.perf_counter() - started

    def close(self) -> None:
        """Close the pipe and reap the child (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if self._process.is_alive():
            _kill(self._process)
        else:
            self._process.join(timeout=5.0)


def run_isolated(
    task: WorkerTask, *, grace: float = DEFAULT_GRACE
) -> SynthesisResult:
    """Run one synthesis attempt in a worker process.

    Blocks until the worker reports, crashes, or exceeds the hard
    timeout ``max(grace × timeout, 0.25s)``; a worker still alive at
    that point is killed and reported as :class:`BudgetExceeded`.
    """
    return WorkerHandle(task, grace=grace).result()


def _kill(process) -> None:
    """Terminate, escalate to SIGKILL, and reap a stuck worker."""
    process.terminate()
    process.join(timeout=1.0)
    if process.is_alive():  # pragma: no cover - terminate usually lands
        process.kill()
        process.join(timeout=5.0)
