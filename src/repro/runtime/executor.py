"""Fault-tolerant synthesis execution: isolation, fallback, retry.

:class:`FaultTolerantExecutor` is the single choke point every entry
point (CLI, bench runner, NPN database) routes synthesis through.  One
``run()`` call turns an arbitrary per-instance disaster — a hung loop,
a crashed worker, a corrupt result, a missing engine — into a recorded
:class:`ExecutionOutcome` instead of an aborted run:

* each attempt runs either **in-process** (cheap, cooperative
  deadline) or **process-isolated** (hard wall-clock kill via
  :mod:`repro.runtime.worker`);
* crashes are retried with exponential backoff (transient failures:
  a flaky worker, an OOM-killed sibling);
* persistent failures degrade down an **engine fallback chain**
  (default: STP factorization engine, then the CNF fence-solver
  baseline), with the full per-attempt trail recorded;
* every returned chain is re-verified by simulation, so a corrupted
  result is caught here and treated as an engine failure rather than
  propagating bad circuits downstream.

Timeouts are budgeted across the whole chain: a fallback engine only
gets the budget its predecessors left behind, so ``run()`` honours the
per-instance budget regardless of how many engines it tried.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.spec import Deadline, SynthesisResult
from ..truthtable.table import TruthTable
from .engines import DEFAULT_FALLBACK_CHAIN, get_engine
from .errors import (
    VerificationFailed,
    WorkerCrash,
    classify_failure,
)
from .faults import FaultPlan, execute_fault
from .worker import DEFAULT_GRACE, WorkerTask, run_isolated

__all__ = [
    "AttemptRecord",
    "ExecutionOutcome",
    "FaultTolerantExecutor",
    "format_trail",
]

#: An engine is either a registry name (isolatable) or a
#: ``(name, callable)`` pair for ad-hoc in-process engines.
EngineRef = "str | tuple[str, Callable[..., SynthesisResult]]"


@dataclass
class AttemptRecord:
    """One engine attempt inside a ``run()`` call."""

    engine: str
    attempt: int
    status: str
    runtime: float
    error: str = ""
    error_class: str = ""
    fault: str = ""

    def to_record(self) -> dict:
        return {
            "engine": self.engine,
            "attempt": self.attempt,
            "status": self.status,
            "runtime": round(self.runtime, 6),
            "error": self.error,
            "error_class": self.error_class,
            "fault": self.fault,
        }


def format_trail(trail: Sequence[AttemptRecord]) -> list[str]:
    """Human-readable fallback trail, one line per hop.

    Every hop names the engine, the error *class* (exception type, or
    the status for ok hops), and the seconds the attempt consumed —
    the three facts needed to diagnose a degraded run from stderr
    alone.
    """
    lines = []
    for record in trail:
        what = record.error_class or record.status
        line = (
            f"engine {record.engine} attempt {record.attempt}: "
            f"{record.status} [{what}] after {record.runtime:.3f}s"
        )
        if record.error:
            line += f" ({record.error})"
        if record.fault:
            line += f" <fault:{record.fault}>"
        lines.append(line)
    return lines


@dataclass
class ExecutionOutcome:
    """The recorded result of one fault-tolerant synthesis run."""

    function_hex: str
    num_vars: int
    status: str  # "ok" | "timeout" | "crash" | "infeasible" | ...
    engine: str = ""
    fallback_from: str | None = None
    attempts: int = 0
    runtime: float = 0.0
    error: str = ""
    result: SynthesisResult | None = None
    trail: list[AttemptRecord] = field(default_factory=list)
    #: False when the result is a degraded upper bound, not an optimum.
    exact: bool = True
    #: Corrupt store rows quarantined while serving this run.
    store_quarantined: int = 0

    @property
    def solved(self) -> bool:
        """True when a verified *exact* result was produced."""
        return self.status == "ok" and self.result is not None

    @property
    def degraded(self) -> bool:
        """True when the run served a non-exact upper bound."""
        return self.status == "degraded" and self.result is not None

    def to_record(self) -> dict:
        """JSON-safe summary (sans the result object) for checkpoints."""
        return {
            "function": self.function_hex,
            "num_vars": self.num_vars,
            "status": self.status,
            "engine": self.engine,
            "fallback_from": self.fallback_from,
            "attempts": self.attempts,
            "runtime": round(self.runtime, 6),
            "error": self.error,
            "exact": self.exact,
            "store_quarantined": self.store_quarantined,
            "num_gates": (
                self.result.num_gates if self.result is not None else -1
            ),
            "num_solutions": (
                self.result.num_solutions if self.result is not None else 0
            ),
            "trail": [record.to_record() for record in self.trail],
        }


class FaultTolerantExecutor:
    """Runs synthesis instances with isolation, retry, and fallback.

    Parameters
    ----------
    engines:
        Fallback chain, most preferred first.  Entries are registry
        names (``"stp"``, ``"fen"``, …) or ``(name, callable)`` pairs;
        callables run in-process only.
    isolate:
        Run named engines in killable worker processes (hard timeout).
    max_retries:
        Extra attempts per engine after a crash (transient-failure
        retry); timeouts and infeasibility are never retried.
    backoff / backoff_factor:
        Exponential backoff between retries, in seconds.
    grace:
        Hard-kill multiplier for isolated workers (kill at
        ``grace × budget``; keep below 1.5 to honour the runtime's
        "killed within 1.5× budget" guarantee).
    memory_limit_mb:
        Optional ``RLIMIT_AS`` cap applied inside each worker.
    fault_plan:
        Deterministic fault injection (tests only).
    verify:
        Re-simulate every returned chain and treat mismatches as
        :class:`VerificationFailed`.
    fallback_on_timeout:
        Also walk the fallback chain when an engine times out.  Off by
        default: Table-I semantics charge the timeout to the engine,
        and a later engine would inherit an empty budget anyway.
    engine_kwargs:
        Per-engine tuning knobs, e.g. ``{"stp": {"max_solutions": 64}}``.
    store:
        Optional persistent chain store
        (:class:`~repro.store.ChainStore`).  ``run()`` consults it
        *before* the engine chain — a hit is served through the inverse
        NPN transform with ``engine == "store"`` and no worker is ever
        forked — and writes solved results back on a miss.  Store
        failures never fail a run; they degrade to a plain synthesis.
    """

    def __init__(
        self,
        engines: Sequence = DEFAULT_FALLBACK_CHAIN,
        *,
        isolate: bool = False,
        max_retries: int = 1,
        backoff: float = 0.05,
        backoff_factor: float = 2.0,
        grace: float = DEFAULT_GRACE,
        memory_limit_mb: int | None = None,
        fault_plan: FaultPlan | None = None,
        verify: bool = True,
        fallback_on_timeout: bool = False,
        engine_kwargs: dict[str, dict] | None = None,
        store=None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not engines:
            raise ValueError("need at least one engine")
        self._engines: list[tuple[str, Callable | None]] = []
        for entry in engines:
            if isinstance(entry, str):
                self._engines.append((entry, None))
            else:
                name, fn = entry
                if isolate:
                    raise ValueError(
                        f"engine {name!r} is a bare callable and cannot "
                        "be process-isolated; register it by name instead"
                    )
                self._engines.append((name, fn))
        self._isolate = isolate
        self._max_retries = max(0, max_retries)
        self._backoff = backoff
        self._backoff_factor = backoff_factor
        self._grace = grace
        self._memory_limit_mb = memory_limit_mb
        self._fault_plan = fault_plan
        self._verify = verify
        self._fallback_on_timeout = fallback_on_timeout
        self._engine_kwargs = engine_kwargs or {}
        self._store = store
        self._sleep = sleep

    @property
    def engine_names(self) -> tuple[str, ...]:
        """The configured fallback chain, most preferred first."""
        return tuple(name for name, _ in self._engines)

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def run(
        self,
        function: TruthTable,
        timeout: float | None = None,
        *,
        key: str | None = None,
        expire_at: float | None = None,
    ) -> ExecutionOutcome:
        """Synthesize ``function`` with full fault tolerance.

        Never raises for per-instance failures — the outcome records
        what happened.  ``KeyboardInterrupt`` is deliberately *not*
        swallowed so suite runners can checkpoint and stop.

        ``expire_at`` is an absolute ``time.monotonic()`` deadline (the
        serving layer's request deadline): the run's budget becomes
        ``min(timeout, expire_at - now)``, so however long the job
        waited in a queue, the engine's cooperative
        :class:`~repro.core.spec.Deadline` (and through it every
        ``SynthesisContext``) only ever sees the *remaining* wall
        clock.  An already-lapsed ``expire_at`` returns a ``timeout``
        outcome without dispatching any engine.
        """
        fault_key = key if key is not None else function.to_hex()
        if expire_at is not None:
            remaining = expire_at - time.monotonic()
            if remaining <= 0:
                return ExecutionOutcome(
                    function_hex=function.to_hex(),
                    num_vars=function.num_vars,
                    status="timeout",
                    error="request deadline lapsed before dispatch",
                )
            timeout = (
                remaining if timeout is None else min(timeout, remaining)
            )
        deadline = Deadline(timeout)
        outcome = ExecutionOutcome(
            function_hex=function.to_hex(),
            num_vars=function.num_vars,
            status="crash",
        )
        first_engine: str | None = None
        last_error: str = ""
        last_status: str = "crash"

        stored = self._store_lookup(function, outcome)
        if stored is not None:
            outcome.status = "ok"
            outcome.engine = "store"
            outcome.result = stored
            outcome.runtime = deadline.elapsed
            return outcome
        floor = self._infeasible_floor(function)

        for name, fn in self._engines:
            if first_engine is None:
                first_engine = name
            engine_done, status, error = self._run_engine(
                name, fn, function, deadline, fault_key, outcome,
                floor,
            )
            if engine_done is not None:
                outcome.status = "ok"
                outcome.engine = name
                outcome.fallback_from = (
                    first_engine if name != first_engine else None
                )
                outcome.result = engine_done
                outcome.runtime = deadline.elapsed
                self._store_put(function, engine_done, name)
                return outcome
            last_status, last_error = status, error
            if status == "timeout" and not self._fallback_on_timeout:
                break
            if status == "infeasible":
                # Exact engines agree on feasibility; don't burn the
                # remaining budget rediscovering it.
                break
            if deadline.expired():
                last_status, last_error = "timeout", (
                    error or "budget exhausted during fallback"
                )
                break

        outcome.status = last_status
        outcome.engine = ""
        outcome.fallback_from = None
        outcome.error = last_error
        outcome.runtime = deadline.elapsed
        return outcome

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _store_lookup(
        self, function: TruthTable, outcome: ExecutionOutcome
    ):
        """Lookup-before-synthesize; any store failure is a miss.

        Corrupt rows the store quarantines while serving this call are
        counted on the outcome (per-run accounting for suite
        summaries); stores without the ``events`` hook still work.
        """
        if self._store is None:
            return None
        events: list = []
        try:
            try:
                result = self._store.lookup(function, events=events)
            except TypeError:
                result = self._store.lookup(function)
        except KeyboardInterrupt:
            raise
        except Exception:
            result = None
        outcome.store_quarantined += sum(
            1 for kind, _ in events if kind == "quarantined"
        )
        return result

    def _infeasible_floor(self, function: TruthTable) -> int:
        """The store's proven-infeasible gate floor (0 on any miss).

        Passed to engines as a ``min_gates`` spec override so warm
        runs skip gate counts an earlier exhaustive search already
        proved empty for the NPN class.
        """
        if self._store is None:
            return 0
        try:
            return int(self._store.min_feasible_gates(function))
        except KeyboardInterrupt:
            raise
        except Exception:
            return 0

    def _store_put(
        self, function: TruthTable, result: SynthesisResult, engine: str
    ) -> None:
        """Write a solved result back to the store (best-effort).

        Results from engines whose declared capabilities include
        exactness are persisted as optimal rows; results from
        heuristic engines are graded as verified **upper bounds** so
        the degradation path can serve them without ever poisoning
        the store's optimal-chain contract.
        """
        if self._store is None:
            return
        try:
            from ..engine import engine_capabilities

            exact = bool(engine_capabilities(engine).exact)
            try:
                self._store.put(
                    function, result, engine=engine, exact=exact
                )
            except TypeError:
                if exact:  # legacy stores only take optimal rows
                    self._store.put(function, result, engine=engine)
            if exact and result.num_gates > 0:
                # An optimal r-gate result proves sizes below r empty;
                # persist the mark so warm runs start at r directly.
                mark = getattr(self._store, "mark_infeasible", None)
                if mark is not None:
                    mark(function, result.num_gates - 1)
        except KeyboardInterrupt:
            raise
        except Exception:
            pass

    def _run_engine(
        self,
        name: str,
        fn: Callable | None,
        function: TruthTable,
        deadline: Deadline,
        fault_key: str,
        outcome: ExecutionOutcome,
        min_gates: int = 0,
    ) -> tuple[SynthesisResult | None, str, str]:
        """All attempts (first try + retries) on one engine."""
        pause = self._backoff
        status, error = "crash", ""
        for attempt in range(self._max_retries + 1):
            budget = deadline.remaining()
            if budget is not None and budget <= 0:
                return None, "timeout", "no budget left for attempt"
            started = time.perf_counter()
            fault = (
                self._fault_plan.draw(fault_key, name)
                if self._fault_plan is not None
                else None
            )
            try:
                result = self._attempt(
                    name, fn, function, budget, fault, min_gates
                )
                if self._verify:
                    self._check_result(result, function)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                status = classify_failure(exc)
                error = f"{type(exc).__name__}: {exc}"
                outcome.attempts += 1
                outcome.trail.append(
                    AttemptRecord(
                        engine=name,
                        attempt=attempt,
                        status=status,
                        runtime=time.perf_counter() - started,
                        error=error,
                        error_class=type(exc).__name__,
                        fault=fault.kind if fault else "",
                    )
                )
                if status not in ("crash",):
                    return None, status, error
                if attempt < self._max_retries:
                    remaining = deadline.remaining()
                    nap = pause if remaining is None else min(
                        pause, max(0.0, remaining)
                    )
                    if nap > 0:
                        self._sleep(nap)
                    pause *= self._backoff_factor
                continue
            outcome.attempts += 1
            outcome.trail.append(
                AttemptRecord(
                    engine=name,
                    attempt=attempt,
                    status="ok",
                    runtime=time.perf_counter() - started,
                    fault=fault.kind if fault else "",
                )
            )
            return result, "ok", ""
        return None, status, error

    def _attempt(
        self,
        name: str,
        fn: Callable | None,
        function: TruthTable,
        budget: float | None,
        fault,
        min_gates: int = 0,
    ) -> SynthesisResult:
        """One attempt: injected fault, isolated worker, or in-process."""
        kwargs = self._engine_kwargs.get(name, {})
        if min_gates > 0:
            kwargs = {**kwargs, "min_gates": min_gates}
        if self._isolate:
            task = WorkerTask(
                engine=name,
                bits=function.bits,
                num_vars=function.num_vars,
                timeout=budget,
                engine_kwargs=kwargs,
                fault=fault,
                memory_limit_mb=self._memory_limit_mb,
            )
            return run_isolated(task, grace=self._grace)
        if fault is not None:
            return execute_fault(fault, function, budget, isolated=False)
        engine = get_engine(name) if fn is None else fn
        return engine(function, budget, **kwargs)

    def _check_result(
        self, result: SynthesisResult, function: TruthTable
    ) -> None:
        if not isinstance(result, SynthesisResult):
            raise WorkerCrash(
                f"engine returned {type(result).__name__}, "
                "not a SynthesisResult"
            )
        for chain in result.chains:
            if chain.simulate_output() != function:
                raise VerificationFailed(
                    "engine returned a chain that does not realise "
                    f"0x{function.to_hex()}"
                )
