"""Streaming JSONL checkpoints for resumable benchmark runs.

Table-I style suites run thousands of per-instance synthesis calls;
losing hours of work to a Ctrl-C or a host reboot is not acceptable at
that scale.  The checkpoint log is an append-only JSON-Lines file:
one self-describing record per completed (algorithm, instance)
measurement, flushed to disk as soon as it exists.  Restarting a run
with the same checkpoint path replays the completed records and
re-executes only the unfinished instances.

The format is deliberately dumb — ``{"key": ..., **fields}`` per line —
so it is greppable, diffable, and tolerant of a torn final line from a
hard kill (truncated trailing records are skipped on load).

The log is safe under *concurrent appenders*: the parallel scheduler's
dispatcher threads (and even separate processes sharing one path)
append through an exclusive file lock, each record is written with a
single ``write`` call and flushed before the lock drops, and replay
deduplicates records by key — a duplicated instance (two racing runs,
or a resume overlapping a crash) is counted once, with the latest
record winning.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Iterator

__all__ = ["CheckpointLog", "instance_key"]

try:  # pragma: no cover - fcntl exists on every POSIX target
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


def instance_key(suite: str, algorithm: str, function_hex: str) -> str:
    """Stable identity of one (suite, algorithm, instance) measurement."""
    return f"{suite}/{algorithm}/{function_hex}"


class CheckpointLog:
    """Append-only JSONL log of per-instance outcome records."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._lock = threading.Lock()
        #: Duplicate-key records dropped by the most recent ``load()``.
        self.duplicates_dropped = 0

    @property
    def path(self) -> str:
        """Filesystem location of the log."""
        return self._path

    def load(self) -> dict[str, dict]:
        """All completed records keyed by ``record["key"]``.

        Later records win (a re-run instance overwrites its stale
        entry, so duplicates from concurrent appenders are never
        double-counted); lines that fail to parse — e.g. a torn final
        write — are skipped rather than poisoning the resume.  The
        number of dropped duplicates is kept in
        :attr:`duplicates_dropped`.
        """
        records: dict[str, dict] = {}
        duplicates = 0
        for record in self._iter_records():
            key = record.get("key")
            if key:
                if key in records:
                    duplicates += 1
                records[key] = record
        self.duplicates_dropped = duplicates
        return records

    def _iter_records(self) -> Iterator[dict]:
        if not os.path.exists(self._path):
            return
        with open(self._path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record

    def append(self, record: dict) -> None:
        """Durably append one record (flushed before returning).

        The record is serialized *before* any lock is taken, written
        with one ``write`` call under both a thread lock and an
        exclusive ``flock``, and fsynced before the locks drop — so
        concurrent appenders (threads or processes) can never
        interleave partial lines.
        """
        if "key" not in record:
            raise ValueError("checkpoint records need a 'key' field")
        line = json.dumps(record, sort_keys=True) + "\n"
        directory = os.path.dirname(self._path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with self._lock:
            with open(self._path, "a", encoding="utf-8") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    handle.write(line)
                    handle.flush()
                    os.fsync(handle.fileno())
                finally:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def __len__(self) -> int:
        return len(self.load())

    def __contains__(self, key: str) -> bool:
        return key in self.load()
