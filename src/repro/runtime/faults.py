"""Deterministic fault injection for the synthesis runtime.

The robustness machinery (hard timeouts, engine fallback, retry,
checkpoint/resume) only earns its keep when every degradation path is
exercised by tests.  Real pathological instances are slow and
non-portable, so this module injects *synthetic* faults at the exact
seam where an engine would run, keyed deterministically by instance.

A :class:`FaultPlan` maps an instance key (by convention the target's
hex truth table, optionally qualified by engine) to :class:`FaultSpec`
entries.  The executor consults the plan before dispatching each
attempt; a drawn fault replaces the engine call:

``hang``
    A busy loop that never polls its deadline — the canonical
    "cooperative timeout is not enough" failure.  Under process
    isolation the parent hard-kills it; in-process it spins until the
    budget elapses and then raises :class:`BudgetExceeded` (the best a
    cooperative harness can do, which is exactly the point).
``crash``
    Raises ``RuntimeError`` — a transient worker failure, retryable.
``hard-crash``
    Kills the worker process via ``os._exit`` (isolated mode only;
    in-process it degrades to :class:`WorkerCrash`).
``corrupt``
    Returns a structurally valid chain computing the *wrong* function,
    so result verification must catch it.
``timeout``
    Raises :class:`BudgetExceeded` immediately — a cheap way to script
    budget exhaustion without burning wall-clock in tests.
``hog``
    Allocates memory without bound, for exercising ``RLIMIT_AS`` caps.
``interrupt``
    Raises ``KeyboardInterrupt`` — scripts a mid-suite Ctrl-C for the
    checkpoint-flush regression tests.

Faults fire a limited number of ``times`` (default: once) so retry and
fallback logic can be scripted precisely: a ``crash`` with ``times=1``
makes the first attempt fail and the retry succeed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .errors import BudgetExceeded, WorkerCrash

__all__ = ["FaultSpec", "FaultPlan", "busy_wait", "execute_fault"]

_KINDS = frozenset(
    {"hang", "crash", "hard-crash", "corrupt", "timeout", "hog", "interrupt"}
)


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Parameters
    ----------
    kind:
        One of the fault kinds documented in the module docstring.
    engine:
        Restrict the fault to attempts on this engine (``None`` = any).
    times:
        How many attempts the fault fires for before burning out
        (``None`` = every attempt, forever).
    delay:
        Seconds of busy-waiting before the fault manifests.
    """

    kind: str
    engine: str | None = None
    times: int | None = 1
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(_KINDS)}"
            )


class FaultPlan:
    """Deterministic instance-keyed schedule of injected faults.

    The plan is consulted in the *parent* process, so burn-out counting
    (``times``) is exact even when the faulty attempt runs in a worker
    process that is subsequently killed.

    Faults registered under :data:`WILDCARD` (``"*"``) apply to any
    instance whose exact key has no eligible fault of its own — the
    fuzzing harness uses this to inject faults into functions it has
    not generated yet.  Burn-out counting for wildcard faults is
    global, not per instance.
    """

    #: Key matching every instance (exact keys take precedence).
    WILDCARD = "*"

    def __init__(
        self, faults: dict[str, FaultSpec | list[FaultSpec]] | None = None
    ) -> None:
        self._faults: dict[str, list[FaultSpec]] = {}
        self._fired: dict[tuple[str, int], int] = {}
        for key, specs in (faults or {}).items():
            if isinstance(specs, FaultSpec):
                specs = [specs]
            self._faults[key] = list(specs)

    def add(self, key: str, spec: FaultSpec) -> "FaultPlan":
        """Register another fault; returns ``self`` for chaining."""
        self._faults.setdefault(key, []).append(spec)
        return self

    def draw(self, key: str, engine: str | None = None) -> FaultSpec | None:
        """The fault to inject for this attempt, if any (and burn it)."""
        lookup_keys = (
            (key,) if key == self.WILDCARD else (key, self.WILDCARD)
        )
        for lookup in lookup_keys:
            for index, spec in enumerate(self._faults.get(lookup, ())):
                if spec.engine is not None and spec.engine != engine:
                    continue
                fired = self._fired.get((lookup, index), 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                self._fired[(lookup, index)] = fired + 1
                return spec
        return None

    def fired(self, key: str) -> int:
        """Total number of faults drawn for ``key`` so far."""
        return sum(
            count for (k, _), count in self._fired.items() if k == key
        )


def busy_wait(seconds: float | None) -> None:
    """Spin without polling any deadline; ``None`` spins forever.

    Deliberately *not* ``time.sleep``: a sleeping worker would be
    interruptible in ways a compute-bound loop is not, and the whole
    point of the ``hang`` fault is to model a loop that forgot to poll.
    """
    start = time.perf_counter()
    x = 0
    while seconds is None or time.perf_counter() - start < seconds:
        x = (x + 1) & 0xFFFF


def execute_fault(
    spec: FaultSpec,
    function,
    timeout: float | None,
    isolated: bool,
):
    """Run an injected fault in place of a synthesis engine.

    Returns a (corrupt) :class:`~repro.core.spec.SynthesisResult` for
    the ``corrupt`` kind; every other kind raises or never returns.
    """
    if spec.delay:
        busy_wait(spec.delay)
    if spec.kind == "hang":
        if isolated:
            busy_wait(None)  # the parent's hard timeout must kill us
        busy_wait(timeout)
        raise BudgetExceeded(
            "injected hang outlived its budget",
            budget=timeout,
            elapsed=timeout,
        )
    if spec.kind == "timeout":
        raise BudgetExceeded(
            "injected timeout", budget=timeout, elapsed=0.0
        )
    if spec.kind == "crash":
        raise RuntimeError("injected crash")
    if spec.kind == "hard-crash":
        if isolated:
            import os

            os._exit(66)
        raise WorkerCrash("injected hard crash", exitcode=66)
    if spec.kind == "hog":
        hoard = []
        while True:  # pragma: no branch - terminated by MemoryError/kill
            hoard.append(bytearray(16 * 1024 * 1024))
    if spec.kind == "interrupt":
        raise KeyboardInterrupt("injected interrupt")
    if spec.kind == "corrupt":
        return _corrupt_result(function, timeout)
    raise AssertionError(f"unhandled fault kind {spec.kind!r}")


def _corrupt_result(function, timeout: float | None):
    """A well-formed result whose chain computes the wrong function."""
    from ..chain.chain import BooleanChain
    from ..core.spec import SynthesisResult, SynthesisSpec

    wrong = BooleanChain(function.num_vars)
    # Constant 0 differs from every target except constant 0 itself,
    # in which case the complemented constant does.
    complemented = function.bits == 0
    wrong.set_output(BooleanChain.CONST0, complemented=complemented)
    spec = SynthesisSpec(function=function, timeout=timeout, verify=False)
    return SynthesisResult(
        spec=spec, chains=[wrong], num_gates=0, runtime=0.0
    )
