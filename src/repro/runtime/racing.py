"""Engine racing: concurrent lanes, first exact answer wins.

The fallback chain in :class:`~repro.runtime.executor.FaultTolerantExecutor`
is sequential: a hard instance burns the whole budget in engine #1
before engine #2 — which might have solved it in a second — even
starts.  :class:`RacingExecutor` runs a small set of registered
engines *concurrently* on the same specification, each in its own
killable worker process (:class:`~repro.runtime.worker.WorkerHandle`),
and resolves the race with exact-synthesis semantics:

* the first lane to return a **verified** result from an engine whose
  capabilities claim exactness wins; every other lane is cancelled
  immediately (killed and reaped — no zombies), with the per-loser
  kill-to-reap latency recorded in :attr:`last_cancellations`;
* a verified result from a *non-exact* engine does not stop the race —
  it is held as the best inexact answer while the exact lanes keep
  running;
* ``infeasible`` from an exact lane is an authoritative answer about
  the problem (all exact engines agree on feasibility), so it also
  ends the race;
* when every lane fails, the executor **degrades gracefully** instead
  of crashing: it serves the best-known upper bound — from the
  persistent :class:`~repro.store.ChainStore` (either row grade) or
  the held inexact result — as an outcome with ``status ==
  "degraded"`` and ``exact=False``, leaving a plain failure only when
  nothing verified is available at all.

Lane selection and budgets are **health-aware**: an
:class:`~repro.runtime.health.EngineHealth` instance filters out
engines whose circuit breaker is open (periodically letting a probe
through) and suggests a shortened first-round deadline from the NPN
class's solve-time history, so losing lanes on easy classes are reaped
early; a second round with the full remaining budget covers the case
where the suggestion was too optimistic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..core.spec import Deadline, SynthesisResult
from ..truthtable.table import TruthTable
from .errors import classify_failure
from .executor import AttemptRecord, ExecutionOutcome
from .health import EngineHealth
from .worker import DEFAULT_GRACE, WorkerHandle, WorkerTask

__all__ = ["CancellationRecord", "RacingExecutor", "DEFAULT_RACE_ENGINES"]

#: Default racing lanes: the paper's STP pipeline, the fence baseline,
#: and the CEGIS engine — three genuinely different search strategies.
DEFAULT_RACE_ENGINES = ("stp", "fen", "cegis")


@dataclass(frozen=True)
class CancellationRecord:
    """One cancelled racing loser: which worker, and how fast it died."""

    engine: str
    pid: int | None
    seconds: float

    def to_record(self) -> dict:
        return {
            "engine": self.engine,
            "pid": self.pid,
            "seconds": round(self.seconds, 6),
        }


class RacingExecutor:
    """Race registered engines in isolated workers; first exact wins.

    Drop-in for :class:`FaultTolerantExecutor` at suite level — the
    same ``run(function, timeout, key=...) -> ExecutionOutcome``
    interface — but every lane is a registry *name*: the race crosses
    a pickle boundary, so ad-hoc callables cannot ride along.

    Parameters
    ----------
    engines:
        Candidate lanes, preference order (used for health tie-breaks
        and for attributing the race's primary engine).
    width:
        Maximum concurrent lanes per round (2–3 is the sweet spot;
        more mostly burns cores).
    health:
        Shared :class:`EngineHealth`; a fresh private instance when
        omitted.  Sharing one across executors lets a suite's breaker
        state and class-time history inform every race.
    store:
        Optional :class:`~repro.store.ChainStore`: consulted before
        racing (exact rows), written back by winners, and consulted
        again — either row grade — on the degradation path.
    fault_plan:
        Deterministic fault injection, drawn per lane in the parent
        (tests).
    grace / memory_limit_mb / engine_kwargs:
        As on :class:`FaultTolerantExecutor`.
    poll_interval:
        Parent-side polling cadence while lanes run, in seconds.
    """

    def __init__(
        self,
        engines: Sequence[str] = DEFAULT_RACE_ENGINES,
        *,
        width: int = 3,
        health: EngineHealth | None = None,
        store=None,
        fault_plan=None,
        grace: float = DEFAULT_GRACE,
        memory_limit_mb: int | None = None,
        engine_kwargs: dict[str, dict] | None = None,
        poll_interval: float = 0.01,
    ) -> None:
        if not engines:
            raise ValueError("need at least one engine to race")
        for entry in engines:
            if not isinstance(entry, str):
                raise ValueError(
                    f"racing lane {entry!r} is not a registry name; "
                    "racing workers cross a pickle boundary"
                )
        self._engines = tuple(engines)
        self._width = max(1, width)
        self.health = health if health is not None else EngineHealth()
        self._store = store
        self._fault_plan = fault_plan
        self._grace = grace
        self._memory_limit_mb = memory_limit_mb
        self._engine_kwargs = engine_kwargs or {}
        self._poll_interval = poll_interval
        #: Losers cancelled by the most recent ``run()`` call.
        self.last_cancellations: list[CancellationRecord] = []
        #: Lifetime cancellation accounting across all runs.
        self.cancellations = 0
        self.cancel_seconds = 0.0

    @property
    def engine_names(self) -> tuple[str, ...]:
        """The configured racing lanes, preference order."""
        return self._engines

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def run(
        self,
        function: TruthTable,
        timeout: float | None = None,
        *,
        key: str | None = None,
    ) -> ExecutionOutcome:
        """Race the configured engines on ``function``.

        Never raises for per-instance failures; the outcome records
        what happened (``KeyboardInterrupt`` still propagates, with
        every in-flight lane cancelled first).
        """
        fault_key = key if key is not None else function.to_hex()
        deadline = Deadline(timeout)
        outcome = ExecutionOutcome(
            function_hex=function.to_hex(),
            num_vars=function.num_vars,
            status="crash",
        )
        self.last_cancellations = []

        stored = self._store_lookup(function, outcome, exact_only=True)
        if stored is not None:
            result, _exact = stored
            outcome.status = "ok"
            outcome.engine = "store"
            outcome.result = result
            outcome.runtime = deadline.elapsed
            return outcome

        best_inexact: tuple[str, SynthesisResult] | None = None
        last_status, last_error = "timeout", ""
        suggestion = self.health.suggest_timeout(
            function, deadline.remaining()
        )
        for round_index in (0, 1):
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0:
                break
            lane_budget = remaining
            if round_index == 0 and suggestion is not None:
                lane_budget = (
                    min(suggestion, remaining)
                    if remaining is not None
                    else suggestion
                )
            lanes = self.health.select(self._engines, limit=self._width)
            won, status, error, inexact = self._race_round(
                function, lanes, lane_budget, fault_key, outcome
            )
            if inexact is not None and best_inexact is None:
                best_inexact = inexact
            if won is not None:
                engine, result = won
                outcome.status = (
                    "ok" if result is not None else "infeasible"
                )
                outcome.engine = engine
                outcome.result = result
                outcome.error = error
                outcome.runtime = deadline.elapsed
                if result is not None:
                    self._store_put(function, result, engine, exact=True)
                return outcome
            last_status, last_error = status, error
            # A full-budget round leaves nothing for a second one; only
            # re-race when the adaptive suggestion shrank round 0.
            if round_index == 0 and (
                suggestion is None
                or (remaining is not None and lane_budget >= remaining)
            ):
                break

        if best_inexact is not None:
            engine, result = best_inexact
            self._store_put(function, result, engine, exact=False)
        return self._degrade(
            function, outcome, best_inexact, last_status, last_error,
            deadline,
        )

    # ------------------------------------------------------------------
    # one racing round
    # ------------------------------------------------------------------
    def _race_round(
        self,
        function: TruthTable,
        lanes: Sequence[str],
        budget: float | None,
        fault_key: str,
        outcome: ExecutionOutcome,
    ):
        """Launch ``lanes`` concurrently and resolve one round.

        Returns ``(winner, status, error, inexact)`` where ``winner``
        is ``(engine, result)`` for an exact verified win, ``(engine,
        None)`` for an authoritative infeasible, or ``None``;
        ``inexact`` is a held ``(engine, result)`` from a non-exact
        lane.  All workers are dead (reaped) on return, no matter how
        the round ends.
        """
        from ..engine import engine_capabilities

        handles: list[WorkerHandle] = []
        collected: set[int] = set()
        winner = None
        inexact: tuple[str, SynthesisResult] | None = None
        last_status, last_error = "timeout", ""
        try:
            for name in lanes:
                fault = (
                    self._fault_plan.draw(fault_key, name)
                    if self._fault_plan is not None
                    else None
                )
                handles.append(
                    WorkerHandle(
                        WorkerTask(
                            engine=name,
                            bits=function.bits,
                            num_vars=function.num_vars,
                            timeout=budget,
                            engine_kwargs=self._engine_kwargs.get(
                                name, {}
                            ),
                            fault=fault,
                            memory_limit_mb=self._memory_limit_mb,
                        ),
                        grace=self._grace,
                    )
                )
            pending = list(handles)
            while pending and winner is None:
                progressed = False
                for handle in list(pending):
                    if not (handle.ready() or handle.overdue()):
                        continue
                    progressed = True
                    pending.remove(handle)
                    collected.add(id(handle))
                    status, error, result = self._collect(
                        handle, function
                    )
                    outcome.attempts += 1
                    outcome.trail.append(
                        AttemptRecord(
                            engine=handle.engine,
                            attempt=0,
                            status=status,
                            runtime=handle.elapsed,
                            error=error,
                            error_class=(
                                error.split(":", 1)[0] if error else ""
                            ),
                            fault=(
                                handle.task.fault.kind
                                if handle.task.fault
                                else ""
                            ),
                        )
                    )
                    self.health.record(
                        handle.engine,
                        status,
                        handle.elapsed,
                        function=function,
                    )
                    if status == "ok":
                        exact = self._is_exact(
                            handle.engine, engine_capabilities
                        )
                        if exact:
                            winner = (handle.engine, result)
                            break
                        if inexact is None:
                            inexact = (handle.engine, result)
                    elif status == "infeasible" and self._is_exact(
                        handle.engine, engine_capabilities
                    ):
                        winner = (handle.engine, None)
                        last_error = error
                        break
                    else:
                        last_status, last_error = status, error
                if not progressed:
                    time.sleep(self._poll_interval)
        finally:
            # Reap every lane not yet collected — the winner's early
            # return and a KeyboardInterrupt both land here.  Collected
            # handles are already closed by ``result()``.
            for handle in handles:
                if id(handle) not in collected:
                    self._cancel(handle)
        if winner is not None:
            _engine, result = winner
            status = "ok" if result is not None else "infeasible"
            return winner, status, last_error, inexact
        return None, last_status, last_error, inexact

    def _collect(self, handle: WorkerHandle, function: TruthTable):
        """Harvest one finished (or overdue) lane into a status triple."""
        try:
            result = handle.result(block=False)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            return (
                classify_failure(exc),
                f"{type(exc).__name__}: {exc}",
                None,
            )
        if not isinstance(result, SynthesisResult):
            return (
                "crash",
                f"engine returned {type(result).__name__}, "
                "not a SynthesisResult",
                None,
            )
        # Winner-side verification: a corrupt lane must lose the race.
        for chain in result.chains:
            if chain.simulate_output() != function:
                return (
                    "corrupt",
                    "VerificationFailed: racing lane "
                    f"{handle.engine!r} returned a chain that does "
                    f"not realise 0x{function.to_hex()}",
                    None,
                )
        if not result.chains:
            return ("crash", "engine returned no chains", None)
        return ("ok", "", result)

    def _cancel(self, handle: WorkerHandle) -> None:
        pid = handle.pid
        seconds = handle.cancel()
        record = CancellationRecord(
            engine=handle.engine, pid=pid, seconds=seconds
        )
        self.last_cancellations.append(record)
        self.cancellations += 1
        self.cancel_seconds += seconds

    @staticmethod
    def _is_exact(engine: str, engine_capabilities) -> bool:
        try:
            return bool(engine_capabilities(engine).exact)
        except Exception:
            return False

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def _degrade(
        self,
        function: TruthTable,
        outcome: ExecutionOutcome,
        best_inexact: tuple[str, SynthesisResult] | None,
        last_status: str,
        last_error: str,
        deadline: Deadline,
    ) -> ExecutionOutcome:
        """All exact lanes failed: serve the best-known upper bound.

        Preference order: the store's best row of either grade (it may
        know a tighter bound from an earlier run than this race's held
        inexact result), then the held inexact result.  When neither
        exists the original failure stands.
        """
        served = self._store_lookup(function, outcome, exact_only=False)
        if served is not None:
            result, _row_exact = served
            outcome.status = "degraded"
            outcome.engine = "store"
            outcome.result = result
            # Even an exact-graded row is only an upper bound here: the
            # smaller row that made the plain lookup miss may have been
            # quarantined, so optimality is no longer established.
            outcome.exact = False
            outcome.error = last_error
            outcome.runtime = deadline.elapsed
            return outcome
        if best_inexact is not None:
            engine, result = best_inexact
            outcome.status = "degraded"
            outcome.engine = engine
            outcome.result = result
            outcome.exact = False
            outcome.error = last_error
            outcome.runtime = deadline.elapsed
            return outcome
        outcome.status = last_status
        outcome.engine = ""
        outcome.error = last_error
        outcome.runtime = deadline.elapsed
        return outcome

    # ------------------------------------------------------------------
    # store plumbing
    # ------------------------------------------------------------------
    def _store_lookup(
        self,
        function: TruthTable,
        outcome: ExecutionOutcome,
        *,
        exact_only: bool,
    ):
        """Best-effort store read; returns ``(result, exact)`` or None."""
        if self._store is None:
            return None
        events: list = []
        try:
            if exact_only:
                result = self._store.lookup(function, events=events)
                served = (result, True) if result is not None else None
            else:
                served = self._store.lookup_upper_bound(
                    function, events=events
                )
        except KeyboardInterrupt:
            raise
        except Exception:
            served = None
        outcome.store_quarantined += sum(
            1 for kind, _ in events if kind == "quarantined"
        )
        return served

    def _store_put(
        self,
        function: TruthTable,
        result: SynthesisResult,
        engine: str,
        *,
        exact: bool,
    ) -> None:
        if self._store is None:
            return
        try:
            self._store.put(function, result, engine=engine, exact=exact)
        except KeyboardInterrupt:
            raise
        except Exception:
            pass
