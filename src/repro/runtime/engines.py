"""Named synthesis-engine dispatch for the fault-tolerant runtime.

Worker processes cannot receive arbitrary callables (they must cross a
pickle boundary), so the runtime refers to engines by *name* and
resolves them here — in the parent for in-process execution and in the
child for isolated execution.  Since the engine-protocol refactor this
module is a thin shim over :mod:`repro.engine`: the registry owns the
engines; this layer only adapts them to the runtime's uniform
``(function, timeout, **kwargs)`` calling convention.

Each adapter silently ignores tuning knobs the underlying engine does
not support, so one ``engine_kwargs`` dict can be shared across a
fallback chain of heterogeneous engines.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from ..core.spec import SynthesisResult
from ..engine import engine_names, run_engine
from ..truthtable.table import TruthTable
from .errors import EngineUnavailable

__all__ = ["ENGINE_NAMES", "DEFAULT_FALLBACK_CHAIN", "get_engine"]

EngineFn = Callable[..., SynthesisResult]

#: The paper-motivated degradation order: the STP factorization engine
#: first, the CNF fence-solver baseline as the fallback of last resort.
DEFAULT_FALLBACK_CHAIN: tuple[str, ...] = ("stp", "fen")

ENGINE_NAMES: tuple[str, ...] = engine_names()


def _run_named(
    name: str,
    function: TruthTable,
    timeout: float | None,
    **kwargs,
) -> SynthesisResult:
    return run_engine(name, function, timeout, **kwargs)


def get_engine(name: str) -> EngineFn:
    """Resolve an engine adapter by name.

    Raises :class:`EngineUnavailable` for unknown names so a fallback
    chain containing a typo degrades gracefully instead of crashing.
    The returned callable is a partial of a module-level function, so
    it survives the pickle boundary of isolated workers.
    """
    if name not in ENGINE_NAMES:
        raise EngineUnavailable(
            f"unknown synthesis engine {name!r}; "
            f"available: {', '.join(ENGINE_NAMES)}"
        )
    return partial(_run_named, name)
