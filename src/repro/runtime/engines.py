"""Named synthesis-engine registry for the fault-tolerant runtime.

Worker processes cannot receive arbitrary callables (they must cross a
pickle boundary), so every engine the runtime can dispatch is named
here and resolved by key — in the parent for in-process execution and
in the child for isolated execution.

Each adapter has the uniform signature ``(function, timeout, **kwargs)``
and silently ignores tuning knobs the underlying engine does not
support, so one ``engine_kwargs`` dict can be shared across a fallback
chain of heterogeneous engines.
"""

from __future__ import annotations

from typing import Callable

from ..core.spec import SynthesisResult
from ..truthtable.table import TruthTable
from .errors import EngineUnavailable

__all__ = ["ENGINE_NAMES", "DEFAULT_FALLBACK_CHAIN", "get_engine"]

EngineFn = Callable[..., SynthesisResult]

#: The paper-motivated degradation order: the STP factorization engine
#: first, the CNF fence-solver baseline as the fallback of last resort.
DEFAULT_FALLBACK_CHAIN: tuple[str, ...] = ("stp", "fen")


def _stp(
    function: TruthTable,
    timeout: float | None,
    *,
    max_solutions: int | None = None,
    max_gates: int | None = None,
    all_solutions: bool | None = None,
    **_ignored,
) -> SynthesisResult:
    from ..core.synthesizer import STPSynthesizer

    kwargs = {}
    if max_solutions is not None:
        kwargs["max_solutions"] = max_solutions
    if max_gates is not None:
        kwargs["max_gates"] = max_gates
    if all_solutions is not None:
        kwargs["all_solutions"] = all_solutions
    return STPSynthesizer(**kwargs).synthesize(function, timeout=timeout)


def _hier(
    function: TruthTable,
    timeout: float | None,
    *,
    max_solutions: int | None = None,
    all_solutions: bool | None = None,
    **_ignored,
) -> SynthesisResult:
    from ..core.hierarchical import HierarchicalSynthesizer

    kwargs = {}
    if max_solutions is not None:
        kwargs["max_solutions"] = max_solutions
    if all_solutions is not None:
        kwargs["all_solutions"] = all_solutions
    return HierarchicalSynthesizer(**kwargs).synthesize(
        function, timeout=timeout
    )


def _fen(
    function: TruthTable,
    timeout: float | None,
    *,
    max_gates: int | None = None,
    **_ignored,
) -> SynthesisResult:
    from ..baselines.fence_synth import FenceSynthesizer

    return FenceSynthesizer(max_gates=max_gates).synthesize(
        function, timeout=timeout
    )


def _bms(
    function: TruthTable,
    timeout: float | None,
    *,
    max_gates: int | None = None,
    **_ignored,
) -> SynthesisResult:
    from ..baselines.bms import BMSSynthesizer

    return BMSSynthesizer(max_gates=max_gates).synthesize(
        function, timeout=timeout
    )


def _lutexact(
    function: TruthTable, timeout: float | None, **_ignored
) -> SynthesisResult:
    from ..baselines.lutexact import LutExactSynthesizer

    return LutExactSynthesizer().synthesize(function, timeout=timeout)


_REGISTRY: dict[str, EngineFn] = {
    "stp": _stp,
    "hier": _hier,
    "fen": _fen,
    "bms": _bms,
    "lutexact": _lutexact,
}

ENGINE_NAMES: tuple[str, ...] = tuple(sorted(_REGISTRY))


def get_engine(name: str) -> EngineFn:
    """Resolve an engine adapter by name.

    Raises :class:`EngineUnavailable` for unknown names so a fallback
    chain containing a typo degrades gracefully instead of crashing.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineUnavailable(
            f"unknown synthesis engine {name!r}; "
            f"available: {', '.join(ENGINE_NAMES)}"
        ) from None
