"""Health-aware engine scoring: circuit breakers + adaptive deadlines.

Racing and fallback both need an answer to "which engines are worth a
worker fork right now, and for how long?".  This module keeps the
bookkeeping behind that answer:

* :class:`EngineHealth` maintains a **rolling window** of recent
  outcomes (ok / timeout / crash / …) per engine and a three-state
  **circuit breaker** over it.  An engine whose recent failure rate
  crosses the threshold trips to *open* and is skipped by dispatch;
  after a cooldown it becomes *half-open* and a single probe attempt
  is let through — success closes the breaker, failure re-opens it.
  This is the classic distributed-systems breaker applied to synthesis
  engines: a build-broken or persistently crashing engine stops
  burning worker forks, yet is re-probed so a recovery is noticed.
* The same object records per-NPN-class solve times and derives
  **adaptive deadlines** from them: a race on a class whose history
  says "solved in ~0.3 s" gets a small first-round budget (with
  generous margin) instead of the full per-instance timeout, so losing
  engines are reaped early.  The suggestion only ever *shrinks* a
  caller's budget and is clamped to a floor, so a cold or misleading
  history can cost at most one short extra round, never correctness.

Everything is in-memory, thread-safe, and JSON-serializable via
:meth:`EngineHealth.to_record`; suite runners can therefore persist a
health snapshot next to their checkpoint and re-seed it on resume.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Iterable, Sequence

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "EngineHealth",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Outcome statuses that count as engine failures for breaker purposes.
#: ``infeasible`` is deliberately *not* a failure: it is a correct
#: answer about the problem, not a malfunction of the engine.
_FAILURE_STATUSES = frozenset(
    {"timeout", "crash", "corrupt", "unavailable"}
)


class _EngineScore:
    """Rolling outcome window + breaker state for one engine."""

    __slots__ = ("window", "state", "opened_at", "probing")

    def __init__(self, window_size: int) -> None:
        self.window: deque[bool] = deque(maxlen=window_size)
        self.state = BREAKER_CLOSED
        self.opened_at = 0.0
        self.probing = False

    def failure_rate(self) -> float:
        if not self.window:
            return 0.0
        return sum(1 for ok in self.window if not ok) / len(self.window)


class EngineHealth:
    """Per-engine rolling health scores with circuit-breaker dispatch.

    Parameters
    ----------
    window:
        Number of recent outcomes kept per engine.
    failure_threshold:
        Failure rate over the window at which the breaker opens.
    min_samples:
        Outcomes required before the breaker may open (a single early
        crash must not blacklist an engine).
    cooldown:
        Seconds an open breaker waits before allowing a half-open
        probe.
    deadline_margin / deadline_floor:
        Adaptive-deadline tuning: a suggestion is
        ``margin × worst recent solve time`` for the NPN class,
        clamped to at least ``deadline_floor`` seconds and at most the
        caller's own budget.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        *,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_samples: int = 4,
        cooldown: float = 30.0,
        deadline_margin: float = 4.0,
        deadline_floor: float = 0.5,
        history_per_class: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        self._window = max(1, window)
        self._threshold = failure_threshold
        self._min_samples = max(1, min_samples)
        self._cooldown = cooldown
        self._margin = deadline_margin
        self._floor = deadline_floor
        self._history_per_class = max(1, history_per_class)
        self._clock = clock
        self._lock = threading.Lock()
        self._scores: dict[str, _EngineScore] = {}
        #: (num_vars, hex) → recent successful solve times (any engine).
        self._class_times: dict[tuple[int, str], deque[float]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        engine: str,
        status: str,
        runtime: float = 0.0,
        *,
        function=None,
    ) -> None:
        """Fold one attempt outcome into the engine's health score.

        ``function`` (a :class:`~repro.truthtable.table.TruthTable`)
        additionally seeds the per-class solve-time history on
        success, which feeds :meth:`suggest_timeout`.
        """
        ok = status not in _FAILURE_STATUSES
        with self._lock:
            score = self._score(engine)
            score.window.append(ok)
            if score.state == BREAKER_HALF_OPEN and score.probing:
                score.probing = False
                if ok:
                    score.state = BREAKER_CLOSED
                else:
                    score.state = BREAKER_OPEN
                    score.opened_at = self._clock()
            elif score.state == BREAKER_CLOSED:
                if (
                    len(score.window) >= self._min_samples
                    and score.failure_rate() >= self._threshold
                ):
                    score.state = BREAKER_OPEN
                    score.opened_at = self._clock()
            if status == "ok" and function is not None:
                key = (function.num_vars, self._class_hex(function))
                times = self._class_times.setdefault(
                    key, deque(maxlen=self._history_per_class)
                )
                times.append(max(0.0, runtime))

    @staticmethod
    def _class_hex(function) -> str:
        """NPN-canonical hex of the function (cache-backed)."""
        try:
            from ..cache import get_cache

            canon, _ = get_cache().npn_canonical(function)
            return canon.to_hex()
        except Exception:  # pragma: no cover - cache failure tolerated
            return function.to_hex()

    # ------------------------------------------------------------------
    # dispatch decisions
    # ------------------------------------------------------------------
    def state(self, engine: str) -> str:
        """The breaker state, refreshing open → half-open on cooldown."""
        with self._lock:
            return self._refreshed_state(self._score(engine))

    def _score(self, engine: str) -> _EngineScore:
        score = self._scores.get(engine)
        if score is None:
            score = self._scores[engine] = _EngineScore(self._window)
        return score

    def _refreshed_state(self, score: _EngineScore) -> str:
        if (
            score.state == BREAKER_OPEN
            and self._clock() - score.opened_at >= self._cooldown
        ):
            score.state = BREAKER_HALF_OPEN
            score.probing = False
        return score.state

    def select(
        self, engines: Sequence[str], limit: int | None = None
    ) -> list[str]:
        """The engines worth dispatching right now, preference order.

        Closed-breaker engines pass through; a half-open engine is let
        through as a single probe (the probe token is consumed here and
        returned by the next :meth:`record` for that engine); open
        engines are skipped.  If the filter would leave *nothing*, the
        first requested engine is returned anyway — dispatch must never
        end up with an empty lane set because of health bookkeeping.
        """
        picked: list[str] = []
        with self._lock:
            for name in engines:
                if limit is not None and len(picked) >= limit:
                    break
                score = self._score(name)
                state = self._refreshed_state(score)
                if state == BREAKER_CLOSED:
                    picked.append(name)
                elif state == BREAKER_HALF_OPEN and not score.probing:
                    score.probing = True
                    picked.append(name)
        if not picked and engines:
            picked = [engines[0]]
        return picked

    # ------------------------------------------------------------------
    # adaptive deadlines
    # ------------------------------------------------------------------
    def suggest_timeout(
        self, function, budget: float | None
    ) -> float | None:
        """Adaptive per-instance deadline from the class's history.

        Returns ``margin × worst recent solve time`` for the function's
        NPN class, clamped to ``[deadline_floor, budget]``; ``None``
        (use the full budget) when the class has no history.  The
        suggestion only ever shrinks the caller's budget.
        """
        key = (function.num_vars, self._class_hex(function))
        with self._lock:
            times = self._class_times.get(key)
            if not times:
                return None
            suggestion = max(times) * self._margin
        suggestion = max(self._floor, suggestion)
        if budget is not None:
            suggestion = min(suggestion, budget)
        return suggestion

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def to_record(self) -> dict:
        """JSON-safe snapshot: per-engine breaker state and rates."""
        with self._lock:
            return {
                engine: {
                    "state": self._refreshed_state(score),
                    "samples": len(score.window),
                    "failure_rate": round(score.failure_rate(), 4),
                }
                for engine, score in sorted(self._scores.items())
            }

    def seed_class_times(
        self, entries: Iterable[tuple[int, str, float]]
    ) -> None:
        """Seed per-class histories, e.g. from checkpointed
        ``SynthesisStats`` of an earlier suite run.

        Entries are ``(num_vars, canonical_hex, seconds)`` triples.
        """
        with self._lock:
            for num_vars, canon_hex, seconds in entries:
                times = self._class_times.setdefault(
                    (num_vars, canon_hex),
                    deque(maxlen=self._history_per_class),
                )
                times.append(max(0.0, float(seconds)))
