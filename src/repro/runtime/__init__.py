"""Fault-tolerant synthesis runtime.

The execution layer every entry point routes synthesis through:

* :mod:`.errors` — structured exception hierarchy
  (:class:`SynthesisError` and friends);
* :mod:`.worker` — process-isolated workers with hard wall-clock
  timeouts and optional memory caps;
* :mod:`.executor` — :class:`FaultTolerantExecutor`: engine fallback
  chains, retry with exponential backoff, result verification;
* :mod:`.racing` — :class:`RacingExecutor`: concurrent engine lanes,
  first exact answer wins, losers cancelled, graceful degradation to
  stored upper bounds;
* :mod:`.health` — :class:`EngineHealth`: rolling per-engine scores,
  circuit breakers, adaptive deadlines from per-class history;
* :mod:`.checkpoint` — streaming JSONL checkpoints for resumable
  benchmark runs;
* :mod:`.faults` — deterministic fault injection for testing every
  degradation path.

Only :mod:`.errors` is imported eagerly; the heavier modules (which
import the synthesis engines) are loaded on first attribute access so
that low-level modules such as :mod:`repro.core.spec` can depend on
the error hierarchy without import cycles.
"""

from __future__ import annotations

from .errors import (
    BudgetExceeded,
    EngineUnavailable,
    SynthesisError,
    SynthesisInfeasible,
    VerificationFailed,
    WorkerCrash,
    classify_failure,
)

__all__ = [
    # errors (eager)
    "SynthesisError",
    "BudgetExceeded",
    "SynthesisInfeasible",
    "WorkerCrash",
    "VerificationFailed",
    "EngineUnavailable",
    "classify_failure",
    # lazily loaded
    "FaultTolerantExecutor",
    "ExecutionOutcome",
    "AttemptRecord",
    "format_trail",
    "RacingExecutor",
    "CancellationRecord",
    "DEFAULT_RACE_ENGINES",
    "EngineHealth",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "WorkerTask",
    "WorkerHandle",
    "run_isolated",
    "CheckpointLog",
    "instance_key",
    "FaultPlan",
    "FaultSpec",
    "execute_fault",
    "busy_wait",
    "get_engine",
    "ENGINE_NAMES",
    "DEFAULT_FALLBACK_CHAIN",
]

_LAZY = {
    "FaultTolerantExecutor": ("executor", "FaultTolerantExecutor"),
    "ExecutionOutcome": ("executor", "ExecutionOutcome"),
    "AttemptRecord": ("executor", "AttemptRecord"),
    "format_trail": ("executor", "format_trail"),
    "RacingExecutor": ("racing", "RacingExecutor"),
    "CancellationRecord": ("racing", "CancellationRecord"),
    "DEFAULT_RACE_ENGINES": ("racing", "DEFAULT_RACE_ENGINES"),
    "EngineHealth": ("health", "EngineHealth"),
    "BREAKER_CLOSED": ("health", "BREAKER_CLOSED"),
    "BREAKER_OPEN": ("health", "BREAKER_OPEN"),
    "BREAKER_HALF_OPEN": ("health", "BREAKER_HALF_OPEN"),
    "WorkerTask": ("worker", "WorkerTask"),
    "WorkerHandle": ("worker", "WorkerHandle"),
    "run_isolated": ("worker", "run_isolated"),
    "CheckpointLog": ("checkpoint", "CheckpointLog"),
    "instance_key": ("checkpoint", "instance_key"),
    "FaultPlan": ("faults", "FaultPlan"),
    "FaultSpec": ("faults", "FaultSpec"),
    "execute_fault": ("faults", "execute_fault"),
    "busy_wait": ("faults", "busy_wait"),
    "get_engine": ("engines", "get_engine"),
    "ENGINE_NAMES": ("engines", "ENGINE_NAMES"),
    "DEFAULT_FALLBACK_CHAIN": ("engines", "DEFAULT_FALLBACK_CHAIN"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
