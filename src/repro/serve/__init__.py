"""Synthesis-as-a-service: the resident serving layer.

Everything the batch reproduction grew — the NPN-keyed
:class:`~repro.store.ChainStore`, the resident
:class:`~repro.parallel.BatchScheduler` pool, engine racing, health
breakers, graceful degradation — hosted behind a long-lived asyncio
HTTP + JSON API (``repro-serve``).  Requests are canonicalized to
their (joint) NPN class, concurrent duplicates coalesce onto one
in-flight synthesis, warm classes are served straight from the store
through the caller's inverse transform, and misses run on the
persistent dispatcher pool.
"""

from .metrics import ServingMetrics
from .multiproc import SiblingRegistry, reserve_port, supervise
from .prometheus import render_prometheus
from .ratelimit import RateLimiter, TokenBucket
from .server import SynthesisServer
from .service import SynthesisRequest, SynthesisResponse, SynthesisService

__all__ = [
    "ServingMetrics",
    "SiblingRegistry",
    "reserve_port",
    "supervise",
    "render_prometheus",
    "RateLimiter",
    "TokenBucket",
    "SynthesisServer",
    "SynthesisRequest",
    "SynthesisResponse",
    "SynthesisService",
]
