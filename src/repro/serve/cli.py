"""``repro-serve``: the resident synthesis server.

Boots the whole serving stack — chain store, persistent scheduler
pool, NPN-coalescing service, HTTP front-end — and runs until SIGTERM
or SIGINT, then drains gracefully (in-flight requests finish, the
pool empties, the listener closes) before exiting 0::

    repro-serve --port 8945 --store chains.db --jobs 4
    repro-serve --port 0 --race --rate 200 --burst 400
    repro-serve --port 0 --procs 4 --store chains.db

``--port 0`` binds an ephemeral port; the actual address is printed as
``listening on HOST:PORT`` on stdout (and flushed) so harnesses can
parse it.

``--procs N`` forks N serving processes sharing the port via
``SO_REUSEPORT`` (the kernel load-balances connections), each with
its own event loop and scheduler pool but all sharing one chain store
(SQLite WAL handles the multi-process readers).  One banner is
printed, by the parent, once every worker is listening; SIGTERM to
the parent drains the whole group.  ``GET /metrics/all`` on the
shared port answers with every worker's counters merged.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import shutil
import signal
import sys
import tempfile
from typing import Sequence

from ..parallel.scheduler import BatchScheduler
from ..runtime.engines import DEFAULT_FALLBACK_CHAIN, ENGINE_NAMES
from .multiproc import SiblingRegistry, reserve_port, supervise
from .ratelimit import RateLimiter
from .server import SynthesisServer
from .service import SynthesisService

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-lived exact-synthesis HTTP server with NPN "
        "request coalescing over a persistent worker pool.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8945,
        help="TCP port (0 = ephemeral; the bound port is printed)",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=1,
        help="serving processes sharing the port via SO_REUSEPORT "
        "(default: 1, no forking)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="resident dispatcher threads per process (default: 2)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="persistent chain-store path (SQLite); omit for a "
        "store-less server (no warm hits, no degradation)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=None,
        help="primary engine (prepended to the default fallback chain)",
    )
    parser.add_argument(
        "--race",
        action="store_true",
        help="race the healthy lanes in isolated workers per miss",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=20.0,
        help="default per-request synthesis budget, seconds",
    )
    parser.add_argument(
        "--max-timeout",
        type=float,
        default=120.0,
        help="hard cap on caller-requested budgets, seconds",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="per-client sustained requests/sec (default: unlimited)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=None,
        help="per-client burst size (default: 2x rate)",
    )
    parser.add_argument(
        "--max-backlog",
        type=int,
        default=256,
        help="shed new engine work past this scheduler backlog",
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=512,
        help="concurrent sockets per process; excess connections are "
        "answered 503 immediately and closed (default: 512)",
    )
    parser.add_argument(
        "--max-conn-requests",
        type=int,
        default=1000,
        help="pipelined requests one connection may send before the "
        "server forces Connection: close (default: 1000)",
    )
    parser.add_argument(
        "--recycle-after",
        type=int,
        default=1000,
        help="recycle each dispatcher thread after N tasks (0 = never)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for in-flight work on shutdown",
    )
    parser.add_argument(
        "--procdir",
        default=None,
        help="sibling-registry directory for --procs mode (default: "
        "a fresh temp directory)",
    )
    return parser


async def _amain(
    args: argparse.Namespace,
    *,
    proc_index: int = 0,
    reuse_port: bool = False,
    registry: SiblingRegistry | None = None,
    banner: bool = True,
) -> int:
    store = None
    if args.store:
        from ..store import ChainStore

        store = ChainStore(args.store)
    engines = tuple(DEFAULT_FALLBACK_CHAIN)
    if args.engine:
        engines = tuple(dict.fromkeys((args.engine,) + engines))
    scheduler = BatchScheduler({}, args.jobs, queue_depth=0)
    scheduler.start(
        recycle_after=args.recycle_after or None, stop_on_error=False
    )
    limiter = RateLimiter(
        args.rate,
        args.burst
        if args.burst is not None
        else (2.0 * args.rate if args.rate else 1.0),
    )
    service = SynthesisService(
        scheduler,
        store=store,
        engines=engines,
        race=args.race,
        default_timeout=args.timeout,
        max_timeout=args.max_timeout,
        max_backlog=args.max_backlog,
    )
    server = SynthesisServer(
        service,
        host=args.host,
        port=args.port,
        rate_limiter=limiter,
        max_connections=args.max_connections,
        max_requests_per_conn=args.max_conn_requests,
        pause_accept_on_drain=reuse_port,
        registry=registry,
        proc_index=proc_index,
    )
    await server.start(reuse_port=reuse_port)
    if registry is not None:
        # The admin listener (private loopback port) lets siblings
        # scrape this worker's /metrics for the /metrics/all merge;
        # registering only after the public listener is up means a
        # registry entry implies "accepting traffic" — the parent
        # waits on that to print the banner.
        admin_host, admin_port = await server.start_admin()
        registry.register(proc_index, admin_host, admin_port)
    host, port = server.address
    if banner:
        print(f"listening on {host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    try:
        await stop.wait()
        print("draining", file=sys.stderr, flush=True)
        await server.shutdown(drain_timeout=args.drain_timeout)
    finally:
        if registry is not None:
            registry.unregister(proc_index)
        scheduler.shutdown(cancel_queued=True)
        if store is not None:
            store.close()
    print("stopped", file=sys.stderr, flush=True)
    return 0


def _main_multiproc(args: argparse.Namespace) -> int:
    """Fork ``--procs`` reuseport workers and supervise them."""
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only repo
        print("--procs needs os.fork (POSIX)", file=sys.stderr)
        return 2
    placeholder, port = reserve_port(args.host, args.port)
    args.port = port
    procdir = args.procdir or tempfile.mkdtemp(prefix="repro-serve-")
    made_procdir = args.procdir is None
    registry = SiblingRegistry(procdir)

    def child(index: int) -> int:
        placeholder.close()
        return asyncio.run(
            _amain(
                args,
                proc_index=index,
                reuse_port=True,
                registry=registry,
                banner=False,
            )
        )

    def wait_ready_and_announce() -> None:
        import time as _time

        deadline = _time.monotonic() + 30.0
        while _time.monotonic() < deadline:
            if len(registry.entries()) >= args.procs:
                break
            _time.sleep(0.05)
        print(f"listening on {args.host}:{port}", flush=True)

    try:
        return supervise(
            args.procs, child, after_fork=wait_ready_and_announce
        )
    finally:
        placeholder.close()
        if made_procdir:
            shutil.rmtree(procdir, ignore_errors=True)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.procs > 1:
        return _main_multiproc(args)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
