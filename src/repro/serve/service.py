"""The synthesis service: NPN coalescing over the resident runtime.

This is the heart of synthesis-as-a-service.  Every request — a
single truth table or a joint multi-output vector — goes through the
same funnel:

1. **Warm path.**  The persistent :class:`~repro.store.ChainStore` is
   consulted first (in a worker thread — SQLite I/O must not block
   the event loop).  A hit is served immediately through the store's
   own inverse-NPN rewrite, graded exact.
2. **Coalescing.**  A miss is canonicalized to its (joint) NPN class.
   If that class already has a synthesis in flight, the request simply
   awaits the shared future — K concurrent requests for one class cost
   exactly one engine run, and each caller maps the canonical chains
   back through *its own* inverse transform.
3. **Engine path.**  Otherwise the canonical representative is
   submitted to the persistent :class:`~repro.parallel.BatchScheduler`
   pool.  Dispatch is health-aware — the shared
   :class:`~repro.runtime.health.EngineHealth` breaker picks the lanes
   — and optionally races engines (``race=True``).  Solved results are
   written back to the store, so the whole orbit is warm afterwards.
4. **Degradation.**  When every exact lane fails, the store's
   best-known upper bound for the class is served with
   ``exact: false`` and a ``degraded`` status the HTTP layer maps to
   its own (non-failure) status code.

Every response's first chain is re-verified against the *caller's*
tables with the packed AllSAT verifier before it leaves the service —
a transform bug or corrupt store row becomes a counted ``corrupt``
failure, never a silently wrong circuit.

Single-threaded discipline: all coalescing state (``_inflight``) is
touched from the event-loop thread only.  Scheduler futures resolve on
dispatcher threads and are marshalled back with
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..chain.transform import npn_transform_chain, npn_transform_chain_multi
from ..core.circuit_sat import verify_chain, verify_chain_outputs
from ..core.spec import SynthesisSpec, SynthesisStats
from ..parallel.dispatch import (
    PRIORITY_BANDS,
    DeadlineExpired,
    normalize_priority,
)
from ..runtime.engines import DEFAULT_FALLBACK_CHAIN
from ..runtime.errors import classify_failure
from ..runtime.executor import ExecutionOutcome, FaultTolerantExecutor
from ..runtime.health import EngineHealth
from ..truthtable import from_hex
from ..truthtable.npn import canonicalize, canonicalize_multi
from ..truthtable.table import TruthTable
from .metrics import ServingMetrics

__all__ = ["SynthesisRequest", "SynthesisResponse", "SynthesisService"]

_BAND_LABELS = {band: name for name, band in PRIORITY_BANDS.items()}


def _band_label(band: int) -> str:
    """Human label for a priority band (named bands, else ``bandN``)."""
    return _BAND_LABELS.get(band, f"band{band}")

#: Largest arity a request may carry.  Above this the packed verifier
#: and the semi-canonical form still work, but table payloads grow as
#: ``2**n`` — the cap keeps one request from monopolising the parser.
MAX_REQUEST_VARS = 12

#: Statuses the HTTP layer treats as "an answer was served".
_ANSWERED = frozenset({"ok", "degraded"})


@dataclass(frozen=True)
class SynthesisRequest:
    """One validated synthesis request.

    ``functions`` is the output vector (length 1 for the classic
    single-output request); all outputs share one input space.
    """

    functions: tuple[TruthTable, ...]
    timeout: float | None = None
    max_chains: int = 4
    client: str = "anonymous"
    #: Dispatch band (0 = most urgent); see
    #: :data:`~repro.parallel.dispatch.PRIORITY_BANDS`.
    priority: int = PRIORITY_BANDS["normal"]
    #: Absolute ``time.monotonic()`` deadline (``None`` = no deadline),
    #: stamped at parse time from the ``deadline_ms`` request field.
    expire_at: float | None = None

    @property
    def num_vars(self) -> int:
        return self.functions[0].num_vars

    @property
    def is_multi(self) -> bool:
        return len(self.functions) > 1

    @property
    def priority_label(self) -> str:
        return _band_label(self.priority)

    def expired(self, now: float | None = None) -> bool:
        """True once the caller's deadline has lapsed."""
        if self.expire_at is None:
            return False
        return (time.monotonic() if now is None else now) >= self.expire_at

    def remaining(self) -> float | None:
        """Seconds of deadline budget left (``None`` = unbounded)."""
        if self.expire_at is None:
            return None
        return max(0.0, self.expire_at - time.monotonic())

    @staticmethod
    def from_payload(
        payload: Mapping, *, client: str = "anonymous"
    ) -> "SynthesisRequest":
        """Parse and validate a JSON request body.

        Accepts ``{"function": "8ff8", "vars": 4}`` or
        ``{"functions": ["8ff8", "0660"], "vars": 4}`` plus optional
        ``timeout`` (seconds), ``max_chains``, ``priority`` (band name
        ``high``/``normal``/``low`` or integer band), and
        ``deadline_ms`` (milliseconds of budget from *now* — past it
        the request is answered 504 without occupying a worker).
        Raises :class:`ValueError` with a client-safe message on any
        malformed field.
        """
        if not isinstance(payload, Mapping):
            raise ValueError("request body must be a JSON object")
        num_vars = payload.get("vars")
        if not isinstance(num_vars, int) or isinstance(num_vars, bool):
            raise ValueError('"vars" must be an integer')
        if not 1 <= num_vars <= MAX_REQUEST_VARS:
            raise ValueError(
                f'"vars" must be between 1 and {MAX_REQUEST_VARS}'
            )
        if "functions" in payload:
            raw = payload["functions"]
            if (
                not isinstance(raw, Sequence)
                or isinstance(raw, (str, bytes))
                or not raw
            ):
                raise ValueError('"functions" must be a non-empty list')
            if len(raw) > 8:
                raise ValueError("at most 8 outputs per request")
            hexes = list(raw)
        elif "function" in payload:
            hexes = [payload["function"]]
        else:
            raise ValueError('missing "function" or "functions"')
        tables = []
        for entry in hexes:
            if not isinstance(entry, str):
                raise ValueError("truth tables must be hex strings")
            tables.append(from_hex(entry, num_vars))
        timeout = payload.get("timeout")
        if timeout is not None:
            if isinstance(timeout, bool) or not isinstance(
                timeout, (int, float)
            ):
                raise ValueError('"timeout" must be a number')
            timeout = float(timeout)
            if timeout <= 0:
                raise ValueError('"timeout" must be positive')
        max_chains = payload.get("max_chains", 4)
        if (
            isinstance(max_chains, bool)
            or not isinstance(max_chains, int)
            or max_chains < 1
        ):
            raise ValueError('"max_chains" must be a positive integer')
        priority = normalize_priority(payload.get("priority", "normal"))
        deadline_ms = payload.get("deadline_ms")
        expire_at = None
        if deadline_ms is not None:
            if isinstance(deadline_ms, bool) or not isinstance(
                deadline_ms, (int, float)
            ):
                raise ValueError('"deadline_ms" must be a number')
            if deadline_ms <= 0:
                raise ValueError('"deadline_ms" must be positive')
            expire_at = time.monotonic() + float(deadline_ms) / 1000.0
        return SynthesisRequest(
            functions=tuple(tables),
            timeout=timeout,
            max_chains=min(max_chains, 64),
            client=client,
            priority=priority,
            expire_at=expire_at,
        )


@dataclass
class SynthesisResponse:
    """What the service answered for one request."""

    status: str  # "ok" | "degraded" | "timeout" | "expired" | ...
    exact: bool = False
    source: str = ""  # "store" | "engine" | ""
    engine: str = ""
    num_gates: int = -1
    num_solutions: int = 0
    chains: list = field(default_factory=list)
    runtime: float = 0.0
    npn_class: str = ""
    coalesced: bool = False
    error: str = ""
    #: Monotone per-process admission id (1, 2, 3, ...); 0 before the
    #: service stamps it.
    request_id: int = 0
    priority: str = "normal"

    @property
    def answered(self) -> bool:
        """True when a circuit was served (exact or degraded)."""
        return self.status in _ANSWERED

    def to_payload(self) -> dict:
        """JSON body for the HTTP layer."""
        from ..store.serialize import chain_to_record

        return {
            "status": self.status,
            "exact": self.exact,
            "source": self.source,
            "engine": self.engine,
            "num_gates": self.num_gates,
            "num_solutions": self.num_solutions,
            "npn_class": self.npn_class,
            "coalesced": self.coalesced,
            "runtime": round(self.runtime, 6),
            "error": self.error,
            "request_id": self.request_id,
            "priority": self.priority,
            "chains": [chain_to_record(c) for c in self.chains],
        }


class SynthesisService:
    """NPN-coalescing synthesis front-end over the resident runtime.

    Parameters
    ----------
    scheduler:
        A **started** :class:`~repro.parallel.BatchScheduler` (resident
        mode).  The service only uses ``submit_call``/``backlog``; it
        does not own the pool's lifecycle.
    store:
        Optional :class:`~repro.store.ChainStore` for the warm path,
        write-back, and degraded upper bounds.
    engines:
        Exact-lane preference order.  Health-filtered per dispatch.
    race:
        Race the healthy lanes in isolated workers per miss instead of
        walking them as an in-process fallback chain.
    default_timeout / max_timeout:
        Per-request synthesis budget when the caller names none, and
        the hard cap a caller may request.
    max_backlog:
        Load-shedding threshold: new engine-path work is rejected
        (``overloaded``) while the scheduler backlog is at or past it.
        Coalescing joins and warm hits are never shed.
    fault_plan:
        Deterministic fault injection, threaded into the exact lanes
        (tests drive the degraded path with a wildcard crash plan).
    """

    def __init__(
        self,
        scheduler,
        *,
        store=None,
        engines: Sequence[str] = DEFAULT_FALLBACK_CHAIN,
        race: bool = False,
        health: EngineHealth | None = None,
        metrics: ServingMetrics | None = None,
        default_timeout: float = 20.0,
        max_timeout: float = 120.0,
        max_backlog: int = 256,
        fault_plan=None,
        engine_kwargs: dict[str, dict] | None = None,
        verify_responses: bool = True,
    ) -> None:
        if not engines:
            raise ValueError("need at least one engine")
        self._scheduler = scheduler
        self._store = store
        self._engines = tuple(engines)
        self._race = race
        self.health = health if health is not None else EngineHealth()
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self._default_timeout = default_timeout
        self._max_timeout = max_timeout
        self._max_backlog = max(1, max_backlog)
        self._fault_plan = fault_plan
        self._engine_kwargs = engine_kwargs or {}
        self._verify_responses = verify_responses
        #: Monotone admission ids: every admitted request gets the
        #: next integer, so a gap-free, strictly increasing sequence
        #: is an invariant the soak harness can assert.
        self._request_seq = itertools.count(1)
        #: (num_vars, num_outputs, canon_key) -> shared asyncio future
        #: resolving to the canonical-space ExecutionOutcome.
        self._inflight: dict[tuple, asyncio.Future] = {}
        #: Aggregated search effort across every engine run this
        #: process served; feeds the ``synthesis`` /metrics section.
        self.stats = SynthesisStats()

    @property
    def scheduler(self):
        """The resident pool this service dispatches onto."""
        return self._scheduler

    @property
    def inflight_classes(self) -> int:
        """NPN classes with a synthesis currently in flight."""
        return len(self._inflight)

    # ------------------------------------------------------------------
    # request funnel
    # ------------------------------------------------------------------
    async def synthesize(
        self, request: SynthesisRequest
    ) -> SynthesisResponse:
        """Serve one admitted request (rate limiting happens upstream)."""
        started = time.perf_counter()
        self.metrics.requests += 1
        request_id = next(self._request_seq)
        response = await self._synthesize(request)
        response.runtime = time.perf_counter() - started
        response.request_id = request_id
        response.priority = request.priority_label
        self.metrics.observe_latency(
            response.runtime, request.priority_label
        )
        return response

    def _expired_response(
        self, request: SynthesisRequest, where: str, **kwargs
    ) -> SynthesisResponse:
        """A 504-mapped answer for a lapsed deadline; never ran."""
        self.metrics.expired += 1
        return SynthesisResponse(
            status="expired",
            error=f"deadline lapsed {where}",
            **kwargs,
        )

    async def _synthesize(
        self, request: SynthesisRequest
    ) -> SynthesisResponse:
        timeout = min(
            request.timeout
            if request.timeout is not None
            else self._default_timeout,
            self._max_timeout,
        )
        # 0. A request that arrives already past its deadline is
        # answered 504 up front — it must never occupy a worker.
        if request.expired():
            return self._expired_response(request, "before admission")

        # 1. Warm path: the store rewrites chains into the caller's own
        # input space, so no transform is needed here.
        if self._store is not None:
            result = await asyncio.to_thread(
                self._store_lookup, request.functions
            )
            if result is not None:
                self.metrics.store_hits += 1
                return self._finish(
                    request,
                    status="ok",
                    exact=True,
                    source="store",
                    engine="store",
                    chains=result.chains,
                    num_gates=result.num_gates,
                )

        # 2. Canonicalize and coalesce.
        canon_tables, inverse = self._canonicalize(request.functions)
        key = (
            request.num_vars,
            len(canon_tables),
            ",".join(t.to_hex() for t in canon_tables),
        )
        # Two admission attempts: if this caller coalesced onto (or
        # launched) a shared job that then expired in the queue on the
        # *launcher's* tighter deadline, a caller with budget left
        # relaunches once instead of inheriting the 504.
        outcome = None
        coalesced = False
        for attempt in (0, 1):
            shared = self._inflight.get(key)
            coalesced = shared is not None
            if shared is None:
                if self._scheduler.backlog() >= self._max_backlog:
                    self.metrics.shed += 1
                    return SynthesisResponse(
                        status="overloaded",
                        error="scheduler backlog full; retry later",
                        npn_class=key[2],
                    )
                shared = self._launch(key, canon_tables, timeout, request)
                if shared is None:
                    self.metrics.failures += 1
                    return SynthesisResponse(
                        status="unavailable",
                        error="scheduler is not accepting work",
                        npn_class=key[2],
                    )
                self.metrics.engine_runs += 1
            else:
                self.metrics.coalesced += 1

            # 3. Await the shared canonical outcome.  shield(): one
            # caller timing out or disconnecting must not cancel the
            # synthesis the other coalesced callers are waiting on.
            wait_budget = timeout * 3.0 + 30.0
            remaining = request.remaining()
            if remaining is not None:
                # A deadline'd caller stops waiting shortly after its
                # own deadline (small grace: an answer that resolves
                # right at the boundary is still worth serving).
                wait_budget = min(wait_budget, remaining + 0.05)
            try:
                outcome = await asyncio.wait_for(
                    asyncio.shield(shared), wait_budget
                )
            except (asyncio.TimeoutError, TimeoutError):
                if request.expired():
                    return self._expired_response(
                        request,
                        "awaiting the in-flight synthesis",
                        npn_class=key[2],
                        coalesced=coalesced,
                    )
                self.metrics.failures += 1
                return SynthesisResponse(
                    status="timeout",
                    error="timed out waiting for the in-flight synthesis",
                    npn_class=key[2],
                    coalesced=coalesced,
                )
            if (
                outcome.status == "expired"
                and attempt == 0
                and not request.expired()
            ):
                continue
            break

        if outcome.status == "expired":
            return self._expired_response(
                request,
                "in the dispatch queue",
                npn_class=key[2],
                coalesced=coalesced,
            )

        # 4. Map the canonical outcome into the caller's space.
        return self._materialize(
            request, key[2], inverse, outcome, coalesced
        )

    # ------------------------------------------------------------------
    # canonical-space synthesis (runs on dispatcher threads)
    # ------------------------------------------------------------------
    def _launch(
        self,
        key: tuple,
        canon_tables: tuple[TruthTable, ...],
        timeout: float,
        request: SynthesisRequest,
    ) -> asyncio.Future | None:
        """Submit the canonical representative; register the shared future.

        The launcher's priority band orders the job in the dispatch
        queue (earliest-deadline-first within the band) and its
        ``expire_at`` rides along twice: as the queue deadline (a job
        still queued past it is answered without running) and into the
        engine budget (a dispatched job only gets the wall clock the
        deadline has left).
        """
        loop = asyncio.get_running_loop()
        shared: asyncio.Future = loop.create_future()
        expire_at = request.expire_at
        if len(canon_tables) == 1:
            canon = canon_tables[0]

            def job() -> ExecutionOutcome:
                return self._run_canonical_single(
                    canon, timeout, expire_at
                )

        else:

            def job() -> ExecutionOutcome:
                return self._run_canonical_multi(
                    canon_tables, timeout, expire_at
                )

        try:
            handle = self._scheduler.submit_call(
                f"serve {key[2]}",
                job,
                priority=request.priority,
                deadline=expire_at,
            )
        except RuntimeError:
            return None
        self._inflight[key] = shared

        def relay(done: Future) -> None:
            loop.call_soon_threadsafe(self._resolve, key, shared, done)

        handle.add_done_callback(relay)
        return shared

    def _resolve(
        self, key: tuple, shared: asyncio.Future, done: Future
    ) -> None:
        """Event-loop side: publish the outcome, retire the class."""
        self._inflight.pop(key, None)
        if shared.done():  # pragma: no cover - defensive
            return
        if done.cancelled():
            outcome = ExecutionOutcome(
                function_hex=key[2],
                num_vars=key[0],
                status="unavailable",
                error="synthesis cancelled during shutdown",
            )
        else:
            exc = done.exception()
            if isinstance(exc, DeadlineExpired):
                # The dispatch queue answered the job without running
                # it; waiters map this onto HTTP 504 (or relaunch if
                # their own deadline still has budget).
                outcome = ExecutionOutcome(
                    function_hex=key[2],
                    num_vars=key[0],
                    status="expired",
                    error=str(exc),
                )
            elif exc is not None:
                outcome = ExecutionOutcome(
                    function_hex=key[2],
                    num_vars=key[0],
                    status="crash",
                    error=f"{type(exc).__name__}: {exc}",
                )
            else:
                outcome = done.result()
        if outcome.result is not None and outcome.result.stats is not None:
            self.stats.merge(outcome.result.stats)
        shared.set_result(outcome)

    def _run_canonical_single(
        self,
        canon: TruthTable,
        timeout: float,
        expire_at: float | None = None,
    ) -> ExecutionOutcome:
        """One exact synthesis of a canonical representative.

        Health-aware: the breaker picks the lanes; outcomes are folded
        back so a persistently failing engine stops being dispatched.
        Failures degrade to the store's best upper bound for the class.
        ``expire_at`` caps the engine budget at the request deadline's
        remaining wall clock (computed here, at dispatch, so queueing
        time is charged against the deadline).
        """
        lanes = tuple(self.health.select(self._engines))
        if not lanes:  # pragma: no cover - select() never returns empty
            lanes = self._engines
        if self._race and len(lanes) > 1:
            from ..runtime.racing import RacingExecutor

            if expire_at is not None:
                timeout = min(
                    timeout, max(0.05, expire_at - time.monotonic())
                )
            executor = RacingExecutor(
                lanes,
                health=self.health,
                store=self._store,
                fault_plan=self._fault_plan,
                engine_kwargs={
                    name: dict(self._engine_kwargs.get(name, {}))
                    for name in lanes
                },
            )
            return executor.run(canon, timeout=timeout)
        executor = FaultTolerantExecutor(
            lanes,
            store=self._store,
            fault_plan=self._fault_plan,
            engine_kwargs=self._engine_kwargs,
        )
        outcome = executor.run(canon, timeout=timeout, expire_at=expire_at)
        for record in outcome.trail:
            self.health.record(
                record.engine,
                record.status,
                record.runtime,
                function=canon if record.status == "ok" else None,
            )
        if not outcome.solved and self._store is not None:
            outcome = self._degrade_from_store(canon, outcome)
        return outcome

    def _degrade_from_store(
        self, canon: TruthTable, outcome: ExecutionOutcome
    ) -> ExecutionOutcome:
        """Swap a hard failure for the class's best stored upper bound."""
        try:
            found = self._store.lookup_upper_bound(canon)
        except Exception:
            found = None
        if found is None:
            return outcome
        result, _exact = found
        outcome.status = "degraded"
        outcome.engine = "store"
        outcome.exact = False
        outcome.result = result
        return outcome

    def _run_canonical_multi(
        self,
        canon_tables: tuple[TruthTable, ...],
        timeout: float,
        expire_at: float | None = None,
    ) -> ExecutionOutcome:
        """Joint multi-output synthesis of a canonical vector.

        Walks the healthy lanes through decompose-and-share; solved
        results are written back under the joint canonical key.  The
        fault plan does not apply here — injection targets the
        single-output executor path.
        """
        from ..engine import create_engine, engine_capabilities
        from ..engine.multioutput import decompose_and_share

        if expire_at is not None:
            timeout = min(
                timeout, max(0.05, expire_at - time.monotonic())
            )
        key_hex = ",".join(t.to_hex() for t in canon_tables)
        outcome = ExecutionOutcome(
            function_hex=key_hex,
            num_vars=canon_tables[0].num_vars,
            status="crash",
        )
        started = time.perf_counter()
        if self._store is not None:
            try:
                stored = self._store.lookup_multi(list(canon_tables))
            except Exception:
                stored = None
            if stored is not None:
                outcome.status = "ok"
                outcome.engine = "store"
                outcome.result = stored
                outcome.runtime = time.perf_counter() - started
                return outcome
        min_gates = 0
        if self._store is not None and len(canon_tables) == 1:
            try:
                min_gates = int(
                    self._store.min_feasible_gates(canon_tables[0])
                )
            except Exception:
                min_gates = 0
        spec = SynthesisSpec(
            function=canon_tables[0],
            functions=tuple(canon_tables),
            timeout=timeout,
            min_gates=min_gates,
        )
        for name in self.health.select(self._engines) or list(
            self._engines
        ):
            attempt_started = time.perf_counter()
            try:
                engine = create_engine(
                    name, **self._engine_kwargs.get(name, {})
                )
                result = engine_run = decompose_and_share(engine, spec)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                status = classify_failure(exc)
                self.health.record(
                    name, status, time.perf_counter() - attempt_started
                )
                outcome.status = status
                outcome.error = f"{type(exc).__name__}: {exc}"
                if status in ("timeout", "infeasible"):
                    break
                continue
            self.health.record(
                name, "ok", time.perf_counter() - attempt_started
            )
            outcome.status = "ok"
            outcome.engine = name
            outcome.result = result
            outcome.runtime = time.perf_counter() - started
            if self._store is not None:
                try:
                    exact = bool(engine_capabilities(name).exact)
                    self._store.put_multi(
                        list(canon_tables),
                        engine_run,
                        engine=name,
                        exact=exact,
                    )
                    if (
                        exact
                        and len(canon_tables) == 1
                        and engine_run.num_gates > 0
                    ):
                        self._store.mark_infeasible(
                            canon_tables[0], engine_run.num_gates - 1
                        )
                except Exception:
                    pass
            return outcome
        outcome.runtime = time.perf_counter() - started
        return outcome

    # ------------------------------------------------------------------
    # caller-space mapping
    # ------------------------------------------------------------------
    def _materialize(
        self,
        request: SynthesisRequest,
        npn_class: str,
        inverse,
        outcome: ExecutionOutcome,
        coalesced: bool,
    ) -> SynthesisResponse:
        """Rewrite the shared canonical outcome for this caller."""
        if not (outcome.solved or outcome.degraded):
            self.metrics.failures += 1
            return SynthesisResponse(
                status=outcome.status,
                engine=outcome.engine,
                error=outcome.error or "synthesis failed",
                npn_class=npn_class,
                coalesced=coalesced,
            )
        rewrite = (
            npn_transform_chain_multi
            if request.is_multi
            else npn_transform_chain
        )
        chains = [
            rewrite(chain, inverse)
            for chain in outcome.result.chains[: request.max_chains]
        ]
        degraded = outcome.degraded
        if degraded:
            self.metrics.degraded += 1
        return self._finish(
            request,
            status="degraded" if degraded else "ok",
            exact=not degraded,
            source="engine" if outcome.engine != "store" else "store",
            engine=outcome.engine,
            chains=chains,
            num_gates=outcome.result.num_gates,
            npn_class=npn_class,
            coalesced=coalesced,
        )

    def _finish(
        self,
        request: SynthesisRequest,
        *,
        status: str,
        exact: bool,
        source: str,
        engine: str,
        chains: list,
        num_gates: int,
        npn_class: str = "",
        coalesced: bool = False,
    ) -> SynthesisResponse:
        """Final response assembly + the caller-space verification gate."""
        chains = list(chains[: request.max_chains])
        if self._verify_responses and chains:
            ok = (
                verify_chain_outputs(chains[0], request.functions)
                if request.is_multi
                else verify_chain(chains[0], request.functions[0])
            )
            if not ok:
                self.metrics.verify_failures += 1
                self.metrics.failures += 1
                return SynthesisResponse(
                    status="corrupt",
                    engine=engine,
                    error="response failed packed verification",
                    npn_class=npn_class,
                    coalesced=coalesced,
                )
        return SynthesisResponse(
            status=status,
            exact=exact,
            source=source,
            engine=engine,
            num_gates=num_gates,
            num_solutions=len(chains),
            chains=chains,
            npn_class=npn_class,
            coalesced=coalesced,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _store_lookup(self, functions: tuple[TruthTable, ...]):
        """Exact warm-path lookup, caller space (worker thread)."""
        try:
            if len(functions) == 1:
                return self._store.lookup(functions[0])
            return self._store.lookup_multi(list(functions))
        except Exception:
            return None

    @staticmethod
    def _canonicalize(functions: tuple[TruthTable, ...]):
        """Canonical tables + the inverse transform for this caller."""
        if len(functions) == 1:
            canon, transform = canonicalize(functions[0])
            return (canon,), transform.inverse()
        canon_tables, transform = canonicalize_multi(functions)
        return canon_tables, transform.inverse()

    def metrics_snapshot(self, extra: Mapping | None = None) -> dict:
        """The merged ``/metrics`` document (JSON-safe).

        ``extra`` adds caller-owned sections (the HTTP layer injects
        its rate-limiter gauges; colliding keys last-win).
        """
        from ..stats import stats_snapshot

        sections: dict = {
            "serving": self.metrics.to_record(
                queue_depth=self._scheduler.backlog(),
                inflight_classes=self.inflight_classes,
            ),
            "health": self.health.to_record(),
            "scheduler": {
                "jobs": self._scheduler.jobs,
                "backlog": self._scheduler.backlog(),
                "expired_in_queue": sum(
                    stats.expired
                    for stats in self._scheduler.worker_stats
                ),
                "workers": [
                    stats.to_record()
                    for stats in self._scheduler.worker_stats
                ],
            },
        }
        if extra:
            sections.update(extra)
        return stats_snapshot(
            stats=self.stats,
            store=self._store,
            extra=sections,
        )
