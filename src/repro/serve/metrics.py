"""Serving-side gauges and latency percentiles.

The batch layer already counts everything about *synthesis*
(:class:`~repro.core.spec.SynthesisStats`, ``KERNEL_STATS``, the
store's hit/miss counters).  What it cannot see is the *serving*
picture: how many requests arrived, how many coalesced onto an
in-flight class, how deep the scheduler backlog is, and what the
request latency distribution looks like.  :class:`ServingMetrics`
keeps exactly those gauges and feeds them into
:func:`repro.stats.stats_snapshot` as the ``serving`` section of
``/metrics``.

Everything here is mutated from the event-loop thread only, so no
locking is needed; the percentile window is bounded so a long-lived
server cannot grow without bound.
"""

from __future__ import annotations

import math
import time
from collections import deque

__all__ = ["LatencyWindow", "ServingMetrics"]


class LatencyWindow:
    """Bounded reservoir of recent request latencies (seconds).

    Percentiles are computed over the last ``maxlen`` observations —
    a sliding window, not lifetime — which is what an operator
    watching ``/metrics`` actually wants: "what is p99 *now*", not
    "what was p99 averaged over the last week".
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self._samples.append(seconds)
        self.count += 1
        self.total += seconds

    def percentile(self, pct: float) -> float:
        """The ``pct``-th percentile (nearest-rank) of the window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(
            0, min(len(ordered) - 1, math.ceil(pct / 100.0 * len(ordered)) - 1)
        )
        return ordered[rank]

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count


class ServingMetrics:
    """Request-level counters + latency window for the serving layer.

    ``requests`` counts every synthesis request that was admitted
    (past rate limiting and drain checks).  The disposition counters
    partition them: ``store_hits`` answered warm from the chain
    store, ``engine_runs`` owned an engine synthesis, ``coalesced``
    piggybacked on another request's in-flight synthesis,
    ``degraded`` served a non-exact upper bound, ``failures`` got a
    hard failure.  Rejections (``rate_limited``, ``shed``,
    ``draining``) never enter ``requests``.
    """

    def __init__(self, *, window: int = 4096, clock=time.monotonic) -> None:
        self._clock = clock
        self._window = window
        self.started_at = clock()
        self.requests = 0
        self.store_hits = 0
        self.engine_runs = 0
        self.coalesced = 0
        self.degraded = 0
        self.failures = 0
        self.rate_limited = 0
        self.shed = 0
        self.draining_rejected = 0
        self.bad_requests = 0
        self.verify_failures = 0
        #: Requests answered 504 because their deadline lapsed (at
        #: admission, in the dispatch queue, or awaiting a coalesced
        #: in-flight synthesis) — none of them occupied a worker.
        self.expired = 0
        #: Connections refused 503 at accept because the concurrent
        #: socket cap was already full.
        self.connections_shed = 0
        #: Connections closed because they hit the per-connection
        #: pipelined-request cap.
        self.pipeline_closed = 0
        #: Live socket gauge + high-water mark.
        self.connections_active = 0
        self.connections_peak = 0
        self.latency = LatencyWindow(window)
        #: Per-priority-band latency windows, keyed by band label
        #: ("high"/"normal"/"low"/"band<N>"), created lazily.
        self.latency_by_priority: dict[str, LatencyWindow] = {}

    def observe_latency(
        self, seconds: float, priority: str | None = None
    ) -> None:
        self.latency.observe(seconds)
        if priority is not None:
            window = self.latency_by_priority.get(priority)
            if window is None:
                window = self.latency_by_priority[priority] = (
                    LatencyWindow(self._window)
                )
            window.observe(seconds)

    def connection_opened(self) -> None:
        self.connections_active += 1
        self.connections_peak = max(
            self.connections_peak, self.connections_active
        )

    def connection_closed(self) -> None:
        self.connections_active -= 1

    @property
    def coalesce_ratio(self) -> float:
        """Fraction of admitted requests that rode an in-flight class."""
        if self.requests == 0:
            return 0.0
        return self.coalesced / self.requests

    @property
    def hit_ratio(self) -> float:
        """Fraction of admitted requests answered warm from the store."""
        if self.requests == 0:
            return 0.0
        return self.store_hits / self.requests

    @staticmethod
    def _latency_record(window: LatencyWindow) -> dict:
        return {
            "count": window.count,
            "mean": round(window.mean() * 1000.0, 3),
            "p50": round(window.percentile(50) * 1000.0, 3),
            "p90": round(window.percentile(90) * 1000.0, 3),
            "p99": round(window.percentile(99) * 1000.0, 3),
        }

    def to_record(
        self, *, queue_depth: int = 0, inflight_classes: int = 0
    ) -> dict:
        """JSON-safe gauge snapshot for the ``/metrics`` endpoint."""
        return {
            "uptime_seconds": round(self._clock() - self.started_at, 3),
            "requests": self.requests,
            "store_hits": self.store_hits,
            "engine_runs": self.engine_runs,
            "coalesced": self.coalesced,
            "degraded": self.degraded,
            "failures": self.failures,
            "rate_limited": self.rate_limited,
            "shed": self.shed,
            "draining_rejected": self.draining_rejected,
            "bad_requests": self.bad_requests,
            "verify_failures": self.verify_failures,
            "expired": self.expired,
            "connections_shed": self.connections_shed,
            "pipeline_closed": self.pipeline_closed,
            "connections_active": self.connections_active,
            "connections_peak": self.connections_peak,
            "coalesce_ratio": round(self.coalesce_ratio, 4),
            "hit_ratio": round(self.hit_ratio, 4),
            "queue_depth": queue_depth,
            "inflight_classes": inflight_classes,
            "latency_ms": self._latency_record(self.latency),
            "latency_by_priority_ms": {
                band: self._latency_record(window)
                for band, window in sorted(
                    self.latency_by_priority.items()
                )
            },
        }
