"""Minimal asyncio HTTP/1.1 front-end for the synthesis service.

No third-party web framework is available in the target environment,
so this is a deliberately small hand-rolled HTTP/1.1 server over
``asyncio.start_server`` streams: request-line + headers + sized body
in, JSON + ``Content-Length`` out, keep-alive by default.  It serves
four routes:

``POST /synthesize``
    The request funnel (rate limit → drain check → service).  The
    service status maps onto distinct HTTP codes so load generators
    and operators can tell outcomes apart without parsing bodies —
    in particular **degraded** answers are 203 (an answer, just not
    authoritative/optimal), not a 5xx, and **expired** deadlines are
    504 without the request ever having occupied a worker.
``GET /metrics``
    The merged counter snapshot (:meth:`SynthesisService
    .metrics_snapshot`), content-negotiated: JSON by default,
    Prometheus text exposition when the ``Accept`` header asks for
    ``text/plain`` (what a Prometheus scraper sends).
``GET /metrics/all``
    Multi-process aggregation: this worker's snapshot merged with
    every registered sibling's (scraped over their admin listeners).
    Single-process servers answer with a one-entry aggregate.
``GET /healthz``
    Liveness + drain state.

Backpressure is connection-level and independent of the scheduler's
backlog shed: at most ``max_connections`` sockets are served
concurrently (excess connections get an immediate 503 and close —
fast shedding, no queueing), and one connection may pipeline at most
``max_requests_per_conn`` requests before the server forces
``Connection: close`` (so long-lived clients rotate and load spreads
across multi-process workers).

Graceful drain: :meth:`SynthesisServer.shutdown` (wired to SIGTERM by
the CLI) stops admitting synthesis work (503 with ``Connection:
close``), waits for in-flight requests to finish, drains the
scheduler, and only then closes the listener — no request is ever
dropped mid-synthesis.  With ``pause_accept_on_drain`` (the
multi-process default) the listener closes at drain *start* instead,
ejecting the worker from the ``SO_REUSEPORT`` group so the kernel
routes new connections to its siblings rather than at a 503 wall.
"""

from __future__ import annotations

import asyncio
import json

from .multiproc import SiblingRegistry, aggregate_snapshots
from .prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from .prometheus import render_prometheus
from .ratelimit import RateLimiter
from .service import SynthesisRequest, SynthesisService

__all__ = ["SynthesisServer", "STATUS_HTTP"]

#: Service status → HTTP status.  Degraded is deliberately a 2xx
#: (203 Non-Authoritative Information): an answer was served, it is
#: just not proven optimal — ``exact: false`` in the body says so.
STATUS_HTTP = {
    "ok": 200,
    "degraded": 203,
    "infeasible": 422,
    "timeout": 504,
    "expired": 504,
    "crash": 500,
    "corrupt": 500,
    "unavailable": 503,
    "overloaded": 503,
}

_REASONS = {
    200: "OK",
    203: "Non-Authoritative Information",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_HEADER_LINE = 16 * 1024
_MAX_BODY = 1024 * 1024

#: Internal marker a route puts in its ``extra`` dict to force
#: ``Connection: close`` on the response; popped before headers render.
_CLOSE = "__close__"


class _BadRequest(Exception):
    """Unparseable HTTP — the connection is answered 400 and closed."""


def _wants_prometheus(accept: str) -> bool:
    """True when an ``Accept`` header asks for the text exposition."""
    accept = accept.lower()
    return "text/plain" in accept or "openmetrics" in accept


class SynthesisServer:
    """The resident HTTP front-end.  Owns connections, not the pool."""

    def __init__(
        self,
        service: SynthesisService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        rate_limiter: RateLimiter | None = None,
        max_connections: int = 512,
        max_requests_per_conn: int = 1000,
        pause_accept_on_drain: bool = False,
        registry: SiblingRegistry | None = None,
        proc_index: int = 0,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._limiter = (
            rate_limiter if rate_limiter is not None else RateLimiter(None)
        )
        self._max_connections = max(1, int(max_connections))
        self._max_requests_per_conn = max(1, int(max_requests_per_conn))
        self._pause_accept_on_drain = pause_accept_on_drain
        self._registry = registry
        self._proc_index = proc_index
        self._server: asyncio.AbstractServer | None = None
        self._admin_server: asyncio.AbstractServer | None = None
        self._address: tuple[str, int] | None = None
        self._admin_address: tuple[str, int] | None = None
        self._draining = False
        self._active = 0
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, *, reuse_port: bool = False) -> None:
        """Bind and start accepting connections.

        ``reuse_port`` joins an ``SO_REUSEPORT`` listener group — the
        multi-process mode, where sibling workers bind the same port
        and the kernel load-balances accepted connections.
        """
        kwargs = {"reuse_port": True} if reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=_MAX_HEADER_LINE,
            **kwargs,
        )
        sock = self._server.sockets[0].getsockname()
        self._address = (sock[0], sock[1])

    async def start_admin(self, host: str = "127.0.0.1") -> tuple[str, int]:
        """Start the private admin listener (ephemeral loopback port).

        Serves the same routes as the public listener; siblings scrape
        ``/metrics`` here because the shared reuseport port cannot
        target a *specific* process.  Stays up through drain so a
        dying worker's counters remain scrapable until exit.
        """
        self._admin_server = await asyncio.start_server(
            self._handle_connection,
            host,
            0,
            limit=_MAX_HEADER_LINE,
        )
        sock = self._admin_server.sockets[0].getsockname()
        self._admin_address = (sock[0], sock[1])
        return self._admin_address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (actual port when 0 was asked)."""
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    @property
    def admin_address(self) -> tuple[str, int] | None:
        return self._admin_address

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def active_connections(self) -> int:
        return self._service.metrics.connections_active

    def begin_drain(self, *, pause_accept: bool | None = None) -> None:
        """Stop admitting synthesis work; metrics/health stay up.

        With ``pause_accept`` (default: the constructor's
        ``pause_accept_on_drain``) the public listener closes now, so
        new connections go to reuseport siblings instead of being
        answered 503.  The admin listener always stays up.
        """
        self._draining = True
        if pause_accept is None:
            pause_accept = self._pause_accept_on_drain
        if pause_accept and self._server is not None:
            self._server.close()

    async def shutdown(self, *, drain_timeout: float = 30.0) -> None:
        """Graceful stop: drain in-flight work, then close the listener.

        Idempotent.  The scheduler pool and store are owned by the
        caller (CLI/tests) and are shut down there, after this returns.
        """
        self.begin_drain()
        deadline = asyncio.get_running_loop().time() + drain_timeout
        while self._active > 0:
            if asyncio.get_running_loop().time() >= deadline:
                break
            await asyncio.sleep(0.02)
        await asyncio.to_thread(
            self._service.scheduler.drain,
            max(0.1, deadline - asyncio.get_running_loop().time()),
        )
        for server in (self._server, self._admin_server):
            if server is not None:
                server.close()
        # Idle keep-alive connections would otherwise hold wait_closed
        # open forever; in-flight work is already drained, so force
        # the stragglers shut.
        for writer in list(self._writers):
            writer.close()
        for server in (self._server, self._admin_server):
            if server is not None:
                await server.wait_closed()

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then drain gracefully."""
        if self._server is None:
            await self.start()
        await stop.wait()
        await self.shutdown()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        metrics = self._service.metrics
        if metrics.connections_active >= self._max_connections:
            # Fast shed: one 503, no accounting, socket closed.  The
            # cap bounds event-loop memory no matter how hard clients
            # push — the scheduler backlog shed never sees these.
            # The client's request bytes are deliberately never read,
            # so close with a short linger (FIN, then drain to EOF)
            # or the kernel answers the unread data with an RST that
            # can destroy the in-flight 503.
            metrics.connections_shed += 1
            try:
                await self._respond(
                    writer,
                    503,
                    {"error": "overloaded", "status": "overloaded"},
                    close=True,
                )
                writer.write_eof()
                async def _drain_to_eof():
                    while await reader.read(_MAX_HEADER_LINE):
                        pass
                await asyncio.wait_for(_drain_to_eof(), 1.0)
            except (
                ConnectionError,
                OSError,
                RuntimeError,
                asyncio.TimeoutError,
            ):
                pass
            finally:
                await self._close_writer(writer)
            return
        peername = writer.get_extra_info("peername")
        peer = peername[0] if peername else "unknown"
        metrics.connection_opened()
        self._writers.add(writer)
        served = 0
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._respond(
                        writer, 400, {"error": str(exc)}, close=True
                    )
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                status, payload, extra = await self._route(
                    method, path, headers, body, peer
                )
                served += 1
                close = (
                    not keep_alive
                    or status in (400, 413)
                    or bool(extra.pop(_CLOSE, False))
                )
                if served >= self._max_requests_per_conn and not close:
                    metrics.pipeline_closed += 1
                    close = True
                await self._respond(
                    writer, status, payload, close=close, extra=extra
                )
                if close:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            self._writers.discard(writer)
            metrics.connection_closed()
            await self._close_writer(writer)

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One HTTP/1.1 request, or None on a clean EOF between requests."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, version = (
                line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise _BadRequest("malformed request line") from None
        if not version.startswith("HTTP/1."):
            raise _BadRequest(f"unsupported protocol {version!r}")
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if not raw:
                raise _BadRequest("connection closed inside headers")
            decoded = raw.decode("latin-1").strip()
            if not decoded:
                break
            name, _, value = decoded.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_header = headers.get("content-length", "0")
        try:
            length = int(length_header)
        except ValueError:
            raise _BadRequest("bad Content-Length") from None
        if length < 0 or length > _MAX_BODY:
            raise _BadRequest("body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        return self._service.metrics_snapshot(
            extra={"ratelimit": self._limiter.stats()}
        )

    async def _route(
        self,
        method: str,
        path: str,
        headers: dict[str, str],
        body: bytes,
        peer: str,
    ) -> tuple[int, dict | str, dict]:
        path = path.split("?", 1)[0]
        if path == "/synthesize":
            if method != "POST":
                return 405, {"error": "POST required"}, {}
            return await self._route_synthesize(headers, body, peer)
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "GET required"}, {}
            snapshot = self._snapshot()
            if _wants_prometheus(headers.get("accept", "")):
                return (
                    200,
                    render_prometheus(snapshot),
                    {"Content-Type": _PROM_CONTENT_TYPE},
                )
            return 200, snapshot, {}
        if path == "/metrics/all":
            if method != "GET":
                return 405, {"error": "GET required"}, {}
            aggregate = await aggregate_snapshots(
                self._registry, self._proc_index, self._snapshot()
            )
            return 200, aggregate, {}
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET required"}, {}
            status = "draining" if self._draining else "ok"
            return 200, {"status": status}, {}
        return 404, {"error": f"no route {path!r}"}, {}

    async def _route_synthesize(
        self, headers: dict[str, str], body: bytes, peer: str
    ) -> tuple[int, dict, dict]:
        metrics = self._service.metrics
        if self._draining:
            metrics.draining_rejected += 1
            return (
                503,
                {"error": "draining", "status": "draining"},
                {_CLOSE: True},
            )
        client = headers.get("x-client", peer) or peer
        if not self._limiter.allow(client):
            metrics.rate_limited += 1
            retry = max(0.05, self._limiter.retry_after(client))
            return (
                429,
                {"error": "rate limited", "status": "rate_limited"},
                {"Retry-After": f"{retry:.3f}"},
            )
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            request = SynthesisRequest.from_payload(
                payload, client=client
            )
        except (ValueError, UnicodeDecodeError) as exc:
            metrics.bad_requests += 1
            return 400, {"error": str(exc), "status": "bad_request"}, {}
        self._active += 1
        try:
            response = await self._service.synthesize(request)
        finally:
            self._active -= 1
        status = STATUS_HTTP.get(response.status, 500)
        return status, response.to_payload(), {}

    # ------------------------------------------------------------------
    # response writing
    # ------------------------------------------------------------------
    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | str,
        *,
        close: bool,
        extra: dict | None = None,
    ) -> None:
        extra = dict(extra) if extra else {}
        extra.pop(_CLOSE, None)
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = extra.pop(
                "Content-Type", "text/plain; charset=utf-8"
            )
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = extra.pop("Content-Type", "application/json")
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in extra.items():
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()
