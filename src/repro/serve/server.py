"""Minimal asyncio HTTP/1.1 front-end for the synthesis service.

No third-party web framework is available in the target environment,
so this is a deliberately small hand-rolled HTTP/1.1 server over
``asyncio.start_server`` streams: request-line + headers + sized body
in, JSON + ``Content-Length`` out, keep-alive by default.  It serves
three routes:

``POST /synthesize``
    The request funnel (rate limit → drain check → service).  The
    service status maps onto distinct HTTP codes so load generators
    and operators can tell outcomes apart without parsing bodies —
    in particular **degraded** answers are 203 (an answer, just not
    authoritative/optimal), not a 5xx.
``GET /metrics``
    The merged counter snapshot (:meth:`SynthesisService
    .metrics_snapshot`).
``GET /healthz``
    Liveness + drain state.

Graceful drain: :meth:`SynthesisServer.shutdown` (wired to SIGTERM by
the CLI) stops accepting synthesis work (503 with ``Connection:
close``), waits for in-flight requests to finish, drains the
scheduler, and only then closes the listener — no request is ever
dropped mid-synthesis.
"""

from __future__ import annotations

import asyncio
import json

from .ratelimit import RateLimiter
from .service import SynthesisRequest, SynthesisService

__all__ = ["SynthesisServer", "STATUS_HTTP"]

#: Service status → HTTP status.  Degraded is deliberately a 2xx
#: (203 Non-Authoritative Information): an answer was served, it is
#: just not proven optimal — ``exact: false`` in the body says so.
STATUS_HTTP = {
    "ok": 200,
    "degraded": 203,
    "infeasible": 422,
    "timeout": 504,
    "crash": 500,
    "corrupt": 500,
    "unavailable": 503,
    "overloaded": 503,
}

_REASONS = {
    200: "OK",
    203: "Non-Authoritative Information",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_HEADER_LINE = 16 * 1024
_MAX_BODY = 1024 * 1024


class _BadRequest(Exception):
    """Unparseable HTTP — the connection is answered 400 and closed."""


class SynthesisServer:
    """The resident HTTP front-end.  Owns connections, not the pool."""

    def __init__(
        self,
        service: SynthesisService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        rate_limiter: RateLimiter | None = None,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._limiter = (
            rate_limiter if rate_limiter is not None else RateLimiter(None)
        )
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._active = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=_MAX_HEADER_LINE,
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (actual port when 0 was asked)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting synthesis work; metrics/health stay up."""
        self._draining = True

    async def shutdown(self, *, drain_timeout: float = 30.0) -> None:
        """Graceful stop: drain in-flight work, then close the listener.

        Idempotent.  The scheduler pool and store are owned by the
        caller (CLI/tests) and are shut down there, after this returns.
        """
        self.begin_drain()
        deadline = asyncio.get_running_loop().time() + drain_timeout
        while self._active > 0:
            if asyncio.get_running_loop().time() >= deadline:
                break
            await asyncio.sleep(0.02)
        await asyncio.to_thread(
            self._service.scheduler.drain,
            max(0.1, deadline - asyncio.get_running_loop().time()),
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then drain gracefully."""
        if self._server is None:
            await self.start()
        await stop.wait()
        await self.shutdown()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = peername[0] if peername else "unknown"
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._respond(
                        writer, 400, {"error": str(exc)}, close=True
                    )
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                status, payload, extra = await self._route(
                    method, path, headers, body, peer
                )
                close = not keep_alive or status in (400, 413)
                await self._respond(
                    writer, status, payload, close=close, extra=extra
                )
                if close:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One HTTP/1.1 request, or None on a clean EOF between requests."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, version = (
                line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise _BadRequest("malformed request line") from None
        if not version.startswith("HTTP/1."):
            raise _BadRequest(f"unsupported protocol {version!r}")
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if not raw:
                raise _BadRequest("connection closed inside headers")
            decoded = raw.decode("latin-1").strip()
            if not decoded:
                break
            name, _, value = decoded.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_header = headers.get("content-length", "0")
        try:
            length = int(length_header)
        except ValueError:
            raise _BadRequest("bad Content-Length") from None
        if length < 0 or length > _MAX_BODY:
            raise _BadRequest("body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        path: str,
        headers: dict[str, str],
        body: bytes,
        peer: str,
    ) -> tuple[int, dict, dict]:
        path = path.split("?", 1)[0]
        if path == "/synthesize":
            if method != "POST":
                return 405, {"error": "POST required"}, {}
            return await self._route_synthesize(headers, body, peer)
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "GET required"}, {}
            return 200, self._service.metrics_snapshot(), {}
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET required"}, {}
            status = "draining" if self._draining else "ok"
            return 200, {"status": status}, {}
        return 404, {"error": f"no route {path!r}"}, {}

    async def _route_synthesize(
        self, headers: dict[str, str], body: bytes, peer: str
    ) -> tuple[int, dict, dict]:
        metrics = self._service.metrics
        if self._draining:
            metrics.draining_rejected += 1
            return 503, {"error": "draining", "status": "draining"}, {}
        client = headers.get("x-client", peer) or peer
        if not self._limiter.allow(client):
            metrics.rate_limited += 1
            retry = max(0.05, self._limiter.retry_after(client))
            return (
                429,
                {"error": "rate limited", "status": "rate_limited"},
                {"Retry-After": f"{retry:.3f}"},
            )
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            request = SynthesisRequest.from_payload(
                payload, client=client
            )
        except (ValueError, UnicodeDecodeError) as exc:
            metrics.bad_requests += 1
            return 400, {"error": str(exc), "status": "bad_request"}, {}
        self._active += 1
        try:
            response = await self._service.synthesize(request)
        finally:
            self._active -= 1
        status = STATUS_HTTP.get(response.status, 500)
        return status, response.to_payload(), {}

    # ------------------------------------------------------------------
    # response writing
    # ------------------------------------------------------------------
    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        close: bool,
        extra: dict | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra or {}).items():
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()
