"""Per-client token-bucket rate limiting for the serving layer.

The classic token bucket: each client key owns a bucket of capacity
``burst`` that refills at ``rate`` tokens per second; a request
consumes one token, and an empty bucket means HTTP 429.  Buckets are
created lazily per client and reaped once they have been idle long
enough to be full again, so an adversarial spray of distinct client
ids cannot grow the table without bound.

Mutated from the event-loop thread only — no locks.  The clock is
injectable so tests can drive refill deterministically.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """One client's bucket: ``burst`` capacity, ``rate`` tokens/sec."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; refill lazily."""
        elapsed = max(0.0, now - self.updated)
        self.updated = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after(self, now: float, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will be available."""
        deficit = cost - self.tokens
        if deficit <= 0 or self.rate <= 0:
            return 0.0
        return deficit / self.rate


class RateLimiter:
    """Lazily-created per-client token buckets.

    Parameters
    ----------
    rate:
        Sustained tokens per second per client.  ``None`` disables
        limiting entirely (every ``allow`` succeeds).
    burst:
        Bucket capacity — the number of back-to-back requests a quiet
        client may fire before the sustained rate applies.
    max_clients:
        Reap idle (full-again) buckets when the table grows past this.
    """

    def __init__(
        self,
        rate: float | None = 50.0,
        burst: float = 100.0,
        *,
        max_clients: int = 10_000,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self._rate = rate
        self._burst = burst
        self._max_clients = max(1, max_clients)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self._rate is not None

    def allow(self, client: str) -> bool:
        """True when ``client`` may proceed; consumes one token."""
        if self._rate is None:
            return True
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self._max_clients:
                self._reap(now)
            bucket = self._buckets[client] = TokenBucket(
                self._rate, self._burst, now
            )
        return bucket.allow(now)

    def retry_after(self, client: str) -> float:
        """Advisory ``Retry-After`` seconds for a limited client."""
        bucket = self._buckets.get(client)
        if bucket is None:
            return 0.0
        return bucket.retry_after(self._clock())

    def stats(self) -> dict:
        """Gauges for ``/metrics``: configuration + table pressure."""
        exhausted = sum(
            1 for b in self._buckets.values() if b.tokens < 1.0
        ) if self._rate is not None else 0
        return {
            "enabled": self._rate is not None,
            "rate": self._rate if self._rate is not None else 0.0,
            "burst": self._burst if self._rate is not None else 0.0,
            "clients_tracked": len(self._buckets),
            "clients_exhausted": exhausted,
            "max_clients": self._max_clients,
        }

    def _reap(self, now: float) -> None:
        """Drop buckets idle long enough to have refilled completely."""
        assert self._rate is not None
        full_after = self._burst / self._rate
        for client in [
            c
            for c, b in self._buckets.items()
            if now - b.updated >= full_after
        ]:
            del self._buckets[client]
