"""Multi-process serving: SO_REUSEPORT workers under one supervisor.

A single asyncio event loop saturates one core parsing HTTP long
before the synthesis pool does; ``repro-serve --procs N`` forks N
fully independent serving processes — each with its own event loop,
scheduler pool, and :class:`~repro.store.ChainStore` handle — all
listening on **one** TCP port via ``SO_REUSEPORT`` (the kernel
load-balances accepted connections across the listeners).  The store
is shared safely because SQLite WAL already supports concurrent
multi-process readers with serialized writers, which is exactly the
store's access pattern.

Three small pieces live here:

* :func:`reserve_port` — the parent binds the requested port once
  (resolving ``--port 0`` to a concrete ephemeral port) and *holds*
  the bound-but-never-listening socket, so the port stays reserved
  while children bind their own listening sockets with
  ``SO_REUSEPORT``.  A TCP socket that never listens receives no
  connections, so the placeholder never steals traffic.
* :class:`SiblingRegistry` — a directory of ``proc-<i>.json`` files,
  one per worker, each naming the worker's private **admin** address
  (a loopback listener *outside* the reuseport group).  Any worker
  answering ``GET /metrics/all`` on the public port scrapes its
  siblings' admin ``/metrics`` and merges the snapshots
  (:func:`repro.stats.merge_numeric`) — the "tiny aggregator"
  endpoint, no extra daemon.
* :func:`supervise` — forks the workers, forwards SIGTERM/SIGINT to
  every child (coordinated graceful drain: each child stops
  accepting, finishes in-flight work, drains its pool), and reaps
  them all before returning the worst exit code.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
from typing import Callable

from ..stats import merge_numeric

__all__ = [
    "SiblingRegistry",
    "fetch_json",
    "aggregate_snapshots",
    "reserve_port",
    "supervise",
]


def reserve_port(host: str, port: int) -> tuple[socket.socket, int]:
    """Bind (but never listen on) ``host:port`` with ``SO_REUSEPORT``.

    Returns the placeholder socket — the caller must keep it open for
    as long as the port should stay reserved — and the concrete port
    (meaningful when ``port`` was 0).  Raises :class:`RuntimeError`
    where the platform has no ``SO_REUSEPORT``.
    """
    if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover - linux CI
        raise RuntimeError(
            "multi-process serving needs SO_REUSEPORT, which this "
            "platform does not provide"
        )
    placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        placeholder.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
        )
        placeholder.bind((host, port))
    except BaseException:
        placeholder.close()
        raise
    return placeholder, placeholder.getsockname()[1]


class SiblingRegistry:
    """Directory-backed registry of per-worker admin addresses.

    Registration is an atomic write (temp file + rename), so a
    sibling scraping mid-register sees either the old file or the new
    one, never a torn JSON document.
    """

    def __init__(self, procdir: str) -> None:
        self._dir = procdir
        os.makedirs(procdir, exist_ok=True)

    @property
    def procdir(self) -> str:
        return self._dir

    def _path(self, index: int) -> str:
        return os.path.join(self._dir, f"proc-{index}.json")

    def register(
        self, index: int, host: str, port: int, pid: int | None = None
    ) -> None:
        entry = {
            "index": index,
            "host": host,
            "port": port,
            "pid": pid if pid is not None else os.getpid(),
        }
        tmp = f"{self._path(index)}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(entry, handle)
        os.replace(tmp, self._path(index))

    def unregister(self, index: int) -> None:
        try:
            os.unlink(self._path(index))
        except FileNotFoundError:
            pass

    def entries(self) -> list[dict]:
        """Every registered worker, sorted by index."""
        found = []
        try:
            names = os.listdir(self._dir)
        except FileNotFoundError:
            return []
        for name in names:
            if not (name.startswith("proc-") and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(self._dir, name)) as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue
            if isinstance(entry, dict) and "port" in entry:
                found.append(entry)
        return sorted(found, key=lambda e: e.get("index", 0))


async def fetch_json(
    host: str, port: int, path: str, timeout: float = 5.0
):
    """Minimal async HTTP GET returning the decoded JSON body."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: aggregator\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    if status != 200:
        raise RuntimeError(f"sibling scrape failed: HTTP {status}")
    return json.loads(body)


async def aggregate_snapshots(
    registry: SiblingRegistry | None,
    local_index: int,
    local_snapshot: dict,
    *,
    timeout: float = 5.0,
) -> dict:
    """The ``/metrics/all`` document: every worker's snapshot, merged.

    The scraped worker contributes its own snapshot locally (no HTTP
    round-trip to itself) and fetches each registered sibling's admin
    ``/metrics``.  Unreachable siblings (mid-restart, crashed) are
    reported by index instead of failing the whole scrape.
    """
    per_proc: dict[str, dict] = {str(local_index): local_snapshot}
    unreachable: list[int] = []
    if registry is not None:
        for entry in registry.entries():
            index = int(entry.get("index", -1))
            if index == local_index:
                continue
            try:
                per_proc[str(index)] = await fetch_json(
                    entry["host"], entry["port"], "/metrics", timeout
                )
            except (OSError, RuntimeError, ValueError, asyncio.TimeoutError):
                unreachable.append(index)
    return {
        "procs": len(per_proc),
        "aggregated_from": local_index,
        "unreachable": sorted(unreachable),
        "merged": merge_numeric(list(per_proc.values())),
        "per_proc": per_proc,
    }


def supervise(
    count: int,
    child_main: Callable[[int], int],
    *,
    signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
    after_fork: Callable[[], None] | None = None,
) -> int:
    """Fork ``count`` workers, forward signals, reap them all.

    ``child_main(index)`` runs in each forked child; its return value
    becomes the child's exit code (children never return here —
    ``os._exit`` guarantees no double-running of parent cleanup).
    The parent's SIGTERM/SIGINT are forwarded to every child so the
    whole group drains together; the worst child exit code is
    returned.  ``after_fork`` runs in the parent once every child is
    forked, before reaping — the CLI uses it to wait for worker
    readiness and print the single banner.
    """
    pids: list[int] = []
    for index in range(count):
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                code = int(child_main(index) or 0)
            except KeyboardInterrupt:
                code = 0
            except SystemExit as exc:  # argparse/CLI exits
                code = int(exc.code or 0)
            finally:
                os._exit(code & 0xFF)
        pids.append(pid)

    def forward(signum, _frame):
        for pid in pids:
            try:
                os.kill(pid, signum)
            except ProcessLookupError:
                pass

    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, forward)
    worst = 0
    try:
        if after_fork is not None:
            after_fork()
        for pid in pids:
            try:
                _, status = os.waitpid(pid, 0)
            except ChildProcessError:  # pragma: no cover - already reaped
                continue
            code = os.waitstatus_to_exitcode(status)
            worst = max(worst, abs(code))
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return worst
