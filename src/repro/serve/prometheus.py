"""Prometheus text-exposition rendering of the ``/metrics`` snapshot.

No Prometheus client library is available in the target environment,
and the merged :func:`repro.stats.stats_snapshot` document is already
a plain nested dict of numeric leaves — so exposition is a small,
dependency-free rendering problem: flatten the snapshot
(:func:`repro.stats.flatten_numeric`), sanitize names, and emit the
`text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_::

    # HELP repro_serving_requests repro metric serving_requests
    # TYPE repro_serving_requests counter
    repro_serving_requests 1042

The HTTP layer content-negotiates: ``GET /metrics`` with ``Accept:
text/plain`` (what a Prometheus scraper sends) gets this form, the
JSON document stays the default — one snapshot, two encodings, so the
two views can never drift apart.

Counter-vs-gauge typing is a name heuristic (monotone series like
``*_requests``, ``*_hits``, ``*_calls`` are counters; everything else
— queue depths, ratios, percentiles — is a gauge).  The distinction
is advisory to scrapers; the golden test locks the grammar and the
name set, not the types.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from ..stats import flatten_numeric

__all__ = [
    "METRIC_PREFIX",
    "CONTENT_TYPE",
    "metric_name",
    "metric_type",
    "render_prometheus",
]

#: Every exposed series is namespaced under this prefix.
METRIC_PREFIX = "repro"

#: The content type Prometheus expects for the text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_START = re.compile(r"^[^a-zA-Z_:]")

#: Name fragments marking a monotone (counter) series.  Matched
#: against the *last* path component so ``store_hit_ratio`` (a gauge)
#: is not misread via its ``store_hits`` sibling.
_COUNTER_LEAVES = (
    "requests",
    "hits",
    "misses",
    "writes",
    "calls",
    "count",
    "coalesced",
    "degraded",
    "failures",
    "expired",
    "shed",
    "rejected",
    "quarantined",
    "solved",
    "timeouts",
    "crashes",
    "recycled",
    "tasks",
    "engine_runs",
    "rate_limited",
    "bad_requests",
    "verify_failures",
    "pipeline_closed",
    "connections_shed",
    "connections_peak",
)


def metric_name(flat_key: str) -> str:
    """A valid, prefixed Prometheus metric name for a flattened key."""
    name = _INVALID_CHARS.sub("_", flat_key)
    if _INVALID_START.match(name):
        name = f"_{name}"
    return f"{METRIC_PREFIX}_{name}"


def metric_type(flat_key: str) -> str:
    """``counter`` or ``gauge`` for a flattened snapshot key."""
    leaf = flat_key.rsplit("_", 1)[-1]
    tail = flat_key.lower()
    for marker in _COUNTER_LEAVES:
        if tail.endswith(marker) or leaf == marker:
            return "counter"
    return "gauge"


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: Mapping) -> str:
    """Render a (nested, JSON-safe) metrics snapshot as exposition text.

    Every numeric leaf of ``snapshot`` becomes exactly one series; the
    set of exposed names is therefore
    ``{metric_name(k) for k in flatten_numeric(snapshot)}`` — the
    parity the golden test asserts against the JSON document.
    """
    flat = flatten_numeric(snapshot)
    lines: list[str] = []
    for key in sorted(flat):
        name = metric_name(key)
        lines.append(f"# HELP {name} repro metric {key}")
        lines.append(f"# TYPE {name} {metric_type(key)}")
        lines.append(f"{name} {_format_value(flat[key])}")
    return "\n".join(lines) + "\n"
