"""repro — exact logic synthesis based on a semi-tensor product (STP)
circuit solver.

A from-scratch Python reproduction of *"Exact Synthesis Based on
Semi-Tensor Product Circuit Solver"* (Pan & Chu, DATE 2023): the STP
matrix substrate, the STP canonical-form AllSAT solver, DAG topology
families, STP matrix factorization, the circuit-based AllSAT verifier,
and the surrounding evaluation machinery (NPN/DSD workloads, a CDCL
SAT solver, and three baseline exact synthesizers).

Quick start::

    from repro import synthesize, from_hex

    result = synthesize(from_hex("8ff8", 4))
    for chain in result.chains:        # ALL optimal 2-LUT chains
        print(chain.format())
"""

from .truthtable import TruthTable, from_function, from_hex, projection
from .chain import BooleanChain, select_best
from .runtime.errors import (
    BudgetExceeded,
    EngineUnavailable,
    SynthesisError,
    SynthesisInfeasible,
    VerificationFailed,
    WorkerCrash,
)
from .core import (
    HierarchicalSynthesizer,
    STPSynthesizer,
    SynthesisContext,
    SynthesisResult,
    SynthesisSpec,
    hierarchical_synthesize,
    synthesize,
    synthesize_all,
    verify_chain,
)
from .cache import SynthesisCache, get_cache, reset_cache, set_cache
from .engine import (
    Engine,
    EngineCapabilities,
    create_engine,
    engine_names,
    run_engine,
)

__version__ = "1.0.0"

__all__ = [
    "TruthTable",
    "from_function",
    "from_hex",
    "projection",
    "BooleanChain",
    "select_best",
    "SynthesisError",
    "BudgetExceeded",
    "SynthesisInfeasible",
    "WorkerCrash",
    "VerificationFailed",
    "EngineUnavailable",
    "HierarchicalSynthesizer",
    "STPSynthesizer",
    "SynthesisContext",
    "SynthesisResult",
    "SynthesisSpec",
    "SynthesisCache",
    "get_cache",
    "set_cache",
    "reset_cache",
    "Engine",
    "EngineCapabilities",
    "create_engine",
    "engine_names",
    "run_engine",
    "hierarchical_synthesize",
    "synthesize",
    "synthesize_all",
    "verify_chain",
    "__version__",
]
