"""Command-line exact synthesis.

Installed as ``repro-synth`` (also ``python -m repro.cli``)::

    repro-synth 8ff8 --vars 4                 # all optimal chains
    repro-synth 8ff8 --vars 4 --engine fen    # baseline comparison
    repro-synth e8 --vars 3 --cost depth --best-only
    repro-synth 8ff8 --vars 4 --blif out.blif # export the best chain
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .baselines import bms_synthesize, fence_synthesize, lutexact_synthesize
from .chain.costs import COST_MODELS, rank_solutions
from .core import hierarchical_synthesize, synthesize
from .network import LogicNetwork, network_to_blif
from .truthtable import from_hex

_ENGINES = {
    "stp": synthesize,
    "hier": hierarchical_synthesize,
    "bms": bms_synthesize,
    "fen": fence_synthesize,
    "lutexact": lutexact_synthesize,
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-synth`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-synth",
        description="Exact synthesis of a Boolean function into "
        "optimal 2-LUT chains.",
    )
    parser.add_argument(
        "function",
        help="truth table in hexadecimal (e.g. 8ff8)",
    )
    parser.add_argument(
        "--vars", type=int, required=True, help="number of inputs"
    )
    parser.add_argument(
        "--engine",
        choices=sorted(_ENGINES),
        default="stp",
        help="synthesis engine (default: stp)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="seconds"
    )
    parser.add_argument(
        "--max-solutions", type=int, default=64, help="solution cap"
    )
    parser.add_argument(
        "--cost",
        choices=sorted(COST_MODELS),
        default="gates",
        help="ranking cost for the solution list",
    )
    parser.add_argument(
        "--best-only",
        action="store_true",
        help="print only the cheapest chain",
    )
    parser.add_argument(
        "--blif",
        type=str,
        default=None,
        help="write the best chain as BLIF to this path",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        target = from_hex(args.function, args.vars)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    engine = _ENGINES[args.engine]
    kwargs = {}
    if args.engine in ("stp", "hier"):
        kwargs["max_solutions"] = args.max_solutions
    try:
        result = engine(target, timeout=args.timeout, **kwargs)
    except TimeoutError:
        print(
            f"timeout after {args.timeout:.0f}s", file=sys.stderr
        )
        return 1

    ranked = rank_solutions(result.chains, args.cost)
    shown = ranked[:1] if args.best_only else ranked
    print(
        f"0x{target.to_hex()}: optimum {result.num_gates} gates, "
        f"{result.num_solutions} solution(s) in {result.runtime:.3f}s "
        f"[{args.engine}]"
    )
    for rank, (cost, chain) in enumerate(shown, start=1):
        print(f"-- solution {rank} ({args.cost}={cost:g})")
        print(chain.format())

    if args.blif and ranked:
        network = LogicNetwork.from_chain(
            ranked[0][1], name=f"f{target.to_hex()}"
        )
        with open(args.blif, "w") as handle:
            handle.write(network_to_blif(network))
        print(f"wrote {args.blif}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
