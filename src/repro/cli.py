"""Command-line exact synthesis.

Installed as ``repro-synth`` (also ``python -m repro.cli``)::

    repro-synth 8ff8 --vars 4                 # all optimal chains
    repro-synth 8ff8 --vars 4 --engine fen    # baseline comparison
    repro-synth e8 --vars 3 --cost depth --best-only
    repro-synth 8ff8 --vars 4 --blif out.blif # export the best chain
    repro-synth 8ff8 --vars 4 --isolate       # hard-timeout worker
    repro-synth 8ff8 --vars 4 --store db.sqlite  # lookup-before-synthesize

Synthesis runs through the fault-tolerant runtime: by default the
selected engine degrades to the CNF fence baseline on a crash, and the
per-engine trail is printed on stderr.  Failures map to distinct exit
codes so scripts can branch on them:

With ``--race`` several engines run concurrently in isolated workers
(first verified exact answer wins, losers are killed); when every
exact lane exhausts its budget the run *degrades* to the best-known
upper bound from the chain store, reported with its own exit code so
scripts can tell "non-optimal answer served" from "no answer at all".

====  =============================================
code  meaning
====  =============================================
0     solved
2     budget exceeded (timeout)
3     worker crashed / engine unavailable
4     infeasible within the gate cap
5     degraded: non-exact upper bound served
65    malformed input (bad hex / arity)
====  =============================================
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .chain.costs import COST_MODELS, rank_solutions
from .network import LogicNetwork, network_to_blif
from .runtime.engines import ENGINE_NAMES
from .runtime.executor import FaultTolerantExecutor, format_trail
from .runtime.faults import FaultPlan, FaultSpec
from .truthtable import from_hex

#: Exit codes for the structured failure modes.
EXIT_OK = 0
EXIT_TIMEOUT = 2
EXIT_CRASH = 3
EXIT_INFEASIBLE = 4
EXIT_DEGRADED = 5
EXIT_BAD_INPUT = 65

_STATUS_EXIT_CODES = {
    "ok": EXIT_OK,
    "timeout": EXIT_TIMEOUT,
    "crash": EXIT_CRASH,
    "unavailable": EXIT_CRASH,
    "corrupt": EXIT_CRASH,
    "infeasible": EXIT_INFEASIBLE,
    "degraded": EXIT_DEGRADED,
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-synth`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-synth",
        description="Exact synthesis of a Boolean function into "
        "optimal 2-LUT chains.",
    )
    parser.add_argument(
        "function",
        help="truth table in hexadecimal (e.g. 8ff8)",
    )
    parser.add_argument(
        "--vars", type=int, required=True, help="number of inputs"
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="stp",
        help="synthesis engine (default: stp)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="seconds"
    )
    parser.add_argument(
        "--max-solutions", type=int, default=64, help="solution cap"
    )
    parser.add_argument(
        "--max-gates",
        type=int,
        default=None,
        help="gate cap (exit 4 when no chain fits)",
    )
    parser.add_argument(
        "--cost",
        choices=sorted(COST_MODELS),
        default="gates",
        help="ranking cost for the solution list",
    )
    parser.add_argument(
        "--best-only",
        action="store_true",
        help="print only the cheapest chain",
    )
    parser.add_argument(
        "--blif",
        type=str,
        default=None,
        help="write the best chain as BLIF to this path",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print search counters, per-stage timings, and cache "
        "hit/miss counts after the solutions",
    )
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        help="persistent chain-store path (SQLite): serve the "
        "function's NPN class from the store when present, write "
        "back after synthesizing on a miss",
    )
    parser.add_argument(
        "--isolate",
        action="store_true",
        help="run the engine in a killable worker process "
        "(hard wall-clock timeout)",
    )
    parser.add_argument(
        "--race",
        action="store_true",
        help="race the engine against the default lanes in concurrent "
        "workers; first verified exact answer wins, and exhausted "
        "budgets degrade to a stored upper bound (exit 5)",
    )
    parser.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the CNF fence-engine fallback on crashes",
    )
    parser.add_argument(
        "--memory-limit-mb",
        type=int,
        default=None,
        help="per-worker RLIMIT_AS cap (requires --isolate)",
    )
    parser.add_argument(
        "--inject-fault",
        choices=("hang", "crash", "hard-crash", "corrupt", "timeout"),
        default=None,
        help=argparse.SUPPRESS,  # test hook: fault the primary engine
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        target = from_hex(args.function, args.vars)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT

    engines: tuple[str, ...] = (args.engine,)
    if not args.no_fallback and args.engine != "fen":
        engines = (args.engine, "fen")
    engine_kwargs = {
        name: {
            "max_solutions": args.max_solutions,
            "max_gates": args.max_gates,
        }
        for name in engines
    }
    fault_plan = None
    if args.inject_fault:
        fault_plan = FaultPlan(
            {
                target.to_hex(): FaultSpec(
                    kind=args.inject_fault,
                    engine=args.engine,
                    times=None,
                )
            }
        )
    store = None
    if args.store:
        from .store import ChainStore

        store = ChainStore(args.store)
    if args.race:
        from .runtime.racing import DEFAULT_RACE_ENGINES, RacingExecutor

        lanes = tuple(dict.fromkeys(engines + DEFAULT_RACE_ENGINES))
        executor = RacingExecutor(
            lanes,
            memory_limit_mb=args.memory_limit_mb,
            fault_plan=fault_plan,
            engine_kwargs={
                name: dict(engine_kwargs.get(args.engine, {}))
                for name in lanes
            },
            store=store,
        )
    else:
        executor = FaultTolerantExecutor(
            engines,
            isolate=args.isolate,
            memory_limit_mb=args.memory_limit_mb,
            fault_plan=fault_plan,
            engine_kwargs=engine_kwargs,
            store=store,
        )
    store_counters = None
    try:
        outcome = executor.run(target, timeout=args.timeout)
        if store is not None:
            store_counters = store.counters()
    finally:
        if store is not None:
            store.close()

    # The engine trail goes to stderr so stdout stays parseable; each
    # hop names the engine, the error class, and the seconds it cost.
    for record, line in zip(outcome.trail, format_trail(outcome.trail)):
        if record.status != "ok":
            print(line, file=sys.stderr)
    if outcome.fallback_from:
        print(
            f"fell back: {outcome.fallback_from} -> {outcome.engine}",
            file=sys.stderr,
        )
    if args.race and getattr(executor, "last_cancellations", None):
        cancelled = ", ".join(
            f"{c.engine} ({c.seconds * 1000:.1f}ms)"
            for c in executor.last_cancellations
        )
        print(f"cancelled losers: {cancelled}", file=sys.stderr)

    if not outcome.solved and not outcome.degraded:
        print(
            f"{outcome.status}: {outcome.error or 'synthesis failed'} "
            f"[after {outcome.runtime:.3f}s, "
            f"{outcome.attempts} attempt(s)]",
            file=sys.stderr,
        )
        return _STATUS_EXIT_CODES.get(outcome.status, EXIT_CRASH)

    result = outcome.result
    if outcome.degraded:
        print(
            "degraded: every exact engine exhausted its budget; "
            f"serving a verified upper bound g<={result.num_gates} "
            f"[{outcome.engine}]",
            file=sys.stderr,
        )
        print(
            f"0x{target.to_hex()}: upper bound {result.num_gates} "
            f"gates (NOT proven optimal), {result.num_solutions} "
            f"solution(s) in {outcome.runtime:.3f}s [{outcome.engine}]"
        )
        for rank, (cost, chain) in enumerate(
            rank_solutions(result.chains, args.cost)[:1], start=1
        ):
            print(f"-- solution {rank} ({args.cost}={cost:g})")
            print(chain.format())
        return EXIT_DEGRADED
    ranked = rank_solutions(result.chains, args.cost)
    shown = ranked[:1] if args.best_only else ranked
    print(
        f"0x{target.to_hex()}: optimum {result.num_gates} gates, "
        f"{result.num_solutions} solution(s) in {result.runtime:.3f}s "
        f"[{outcome.engine}]"
    )
    for rank, (cost, chain) in enumerate(shown, start=1):
        print(f"-- solution {rank} ({args.cost}={cost:g})")
        print(chain.format())

    if args.stats:
        from .stats import stats_snapshot

        _print_stats(
            stats_snapshot(
                stats=result.stats, store_counters=store_counters
            )
        )

    if args.blif and ranked:
        network = LogicNetwork.from_chain(
            ranked[0][1], name=f"f{target.to_hex()}"
        )
        with open(args.blif, "w") as handle:
            handle.write(network_to_blif(network))
        print(f"wrote {args.blif}")
    return EXIT_OK


def _print_stats(snapshot: dict) -> None:
    """Render a :func:`repro.stats.stats_snapshot` dict on stdout.

    The same merged snapshot backs the serving layer's ``/metrics``
    endpoint; here it is flattened to greppable lines.
    """
    print("-- stats")
    record = snapshot.get("synthesis")
    if record:
        print(
            "search: "
            f"fences={record['fences_examined']} "
            f"dags={record['dags_examined']} "
            f"candidates={record['candidates_generated']} "
            f"verified={record['candidates_verified']} "
            f"verify_failures={record['verification_failures']}"
        )
        for stage, seconds in sorted(record["stage_seconds"].items()):
            print(f"stage {stage}: {seconds:.4f}s")
        hits = record["cache_hits"]
        misses = record["cache_misses"]
        for cache in sorted(set(hits) | set(misses)):
            print(
                f"cache {cache}: hits={hits.get(cache, 0)} "
                f"misses={misses.get(cache, 0)}"
            )
        calls = record.get("kernel_calls", {})
        seconds = record.get("kernel_seconds", {})
        for kernel in sorted(set(calls) | set(seconds)):
            line = f"kernel {kernel}: calls={calls.get(kernel, 0)}"
            if kernel in seconds:
                line += f" time={seconds[kernel]:.4f}s"
            print(line)
    store = snapshot.get("store")
    if store:
        print(
            "store: "
            + " ".join(f"{k}={store[k]}" for k in sorted(store))
        )


if __name__ == "__main__":
    raise SystemExit(main())
