"""One merged, JSON-able view of every counter the system keeps.

Three counter families grew up independently — per-run
:class:`~repro.core.spec.SynthesisStats` (search effort, stage
timers, cache hits), the process-global
:data:`~repro.kernels.KERNEL_STATS` registry (bit-parallel kernel
calls/seconds), and :meth:`ChainStore.counters`
(hit/miss/write/quarantine) — and every surface that reported them
(``repro-synth --stats``, the serving layer's ``/metrics``, bench
JSON) re-merged them by hand.  :func:`stats_snapshot` is the single
merge point: callers pass whichever sources they have and get one
nested, JSON-safe dict with a stable layout.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["stats_snapshot"]


def stats_snapshot(
    *,
    stats=None,
    store=None,
    store_counters: Mapping | None = None,
    kernels: bool = True,
    extra: Mapping | None = None,
) -> dict:
    """Merge the system's counter families into one JSON-able dict.

    Parameters
    ----------
    stats:
        A :class:`~repro.core.spec.SynthesisStats` (or anything with
        its ``to_record()`` contract); omitted sections simply do not
        appear, so callers never need placeholder objects.
    store / store_counters:
        Either a live :class:`~repro.store.ChainStore` (its
        :meth:`~repro.store.ChainStore.counters` is called) or an
        already-captured counters mapping — the CLI captures before
        closing the store, the server reads live.
    kernels:
        Include the process-global kernel registry (default on).
    extra:
        Additional top-level sections (the serving layer contributes
        its ``serving`` gauges here).  Keys collide last-wins.
    """
    snapshot: dict = {}
    if stats is not None:
        snapshot["synthesis"] = stats.to_record()
    if kernels:
        from .kernels import KERNEL_STATS

        snapshot["kernels"] = {
            "calls": dict(KERNEL_STATS.calls),
            "seconds": {
                name: round(secs, 6)
                for name, secs in KERNEL_STATS.seconds.items()
            },
        }
    if store_counters is None and store is not None:
        store_counters = store.counters()
    if store_counters is not None:
        snapshot["store"] = dict(store_counters)
    if extra:
        for key, value in extra.items():
            snapshot[key] = value
    return snapshot
