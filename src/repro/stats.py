"""One merged, JSON-able view of every counter the system keeps.

Three counter families grew up independently — per-run
:class:`~repro.core.spec.SynthesisStats` (search effort, stage
timers, cache hits), the process-global
:data:`~repro.kernels.KERNEL_STATS` registry (bit-parallel kernel
calls/seconds), and :meth:`ChainStore.counters`
(hit/miss/write/quarantine) — and every surface that reported them
(``repro-synth --stats``, the serving layer's ``/metrics``, bench
JSON) re-merged them by hand.  :func:`stats_snapshot` is the single
merge point: callers pass whichever sources they have and get one
nested, JSON-safe dict with a stable layout.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["stats_snapshot", "flatten_numeric", "merge_numeric"]


def stats_snapshot(
    *,
    stats=None,
    store=None,
    store_counters: Mapping | None = None,
    kernels: bool = True,
    extra: Mapping | None = None,
) -> dict:
    """Merge the system's counter families into one JSON-able dict.

    Parameters
    ----------
    stats:
        A :class:`~repro.core.spec.SynthesisStats` (or anything with
        its ``to_record()`` contract); omitted sections simply do not
        appear, so callers never need placeholder objects.
    store / store_counters:
        Either a live :class:`~repro.store.ChainStore` (its
        :meth:`~repro.store.ChainStore.counters` is called) or an
        already-captured counters mapping — the CLI captures before
        closing the store, the server reads live.
    kernels:
        Include the process-global kernel registry (default on).
    extra:
        Additional top-level sections (the serving layer contributes
        its ``serving`` gauges here).  Keys collide last-wins.
    """
    snapshot: dict = {}
    if stats is not None:
        snapshot["synthesis"] = stats.to_record()
    if kernels:
        from .kernels import KERNEL_STATS

        snapshot["kernels"] = {
            "calls": dict(KERNEL_STATS.calls),
            "seconds": {
                name: round(secs, 6)
                for name, secs in KERNEL_STATS.seconds.items()
            },
        }
    if store_counters is None and store is not None:
        store_counters = store.counters()
    if store_counters is not None:
        snapshot["store"] = dict(store_counters)
    if extra:
        for key, value in extra.items():
            snapshot[key] = value
    return snapshot


#: Leaf keys that are point-in-time distribution statistics, not
#: accumulating counters.  Cross-process merges take their max (a
#: conservative operator view), everything else sums.
_GAUGE_LEAVES = frozenset(
    {"p50", "p90", "p99", "mean", "uptime_seconds"}
)
_RATIO_SUFFIXES = ("_ratio",)


def flatten_numeric(
    snapshot: Mapping, prefix: str = ""
) -> dict[str, float]:
    """Flatten a nested snapshot into ``{"a_b_c": value}`` leaves.

    Only numeric leaves survive (bools count as 0/1); strings, lists,
    and ``None`` are dropped — the result is exactly the series a
    text-exposition scrape can carry.  Nested keys join with ``_``.
    """
    flat: dict[str, float] = {}
    for key, value in snapshot.items():
        name = f"{prefix}_{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            flat.update(flatten_numeric(value, name))
        elif isinstance(value, bool):
            flat[name] = float(value)
        elif isinstance(value, (int, float)):
            flat[name] = float(value)
    return flat


def merge_numeric(snapshots: list) -> dict:
    """Merge per-process snapshots into one operator view.

    Counters (the default) sum across processes; distribution leaves
    (percentiles, means, uptimes — :data:`_GAUGE_LEAVES`) and ratio
    leaves take the max, which is the conservative reading ("the worst
    process's p99").  Non-numeric leaves keep the first process's
    value.  The shape of the result is the union of the inputs'
    shapes, so a scrape of the merged view exposes the same series as
    any single process.
    """
    merged: dict = {}
    for snapshot in snapshots:
        if not isinstance(snapshot, Mapping):
            continue
        _merge_into(merged, snapshot)
    return merged


def _merge_into(merged: dict, snapshot: Mapping) -> None:
    for key, value in snapshot.items():
        if isinstance(value, Mapping):
            slot = merged.setdefault(key, {})
            if isinstance(slot, dict):
                _merge_into(slot, value)
            continue
        if isinstance(value, bool) or not isinstance(
            value, (int, float)
        ):
            merged.setdefault(key, value)
            continue
        current = merged.get(key)
        if not isinstance(current, (int, float)) or isinstance(
            current, bool
        ):
            merged[key] = value
        elif str(key) in _GAUGE_LEAVES or str(key).endswith(
            _RATIO_SUFFIXES
        ):
            merged[key] = max(current, value)
        else:
            merged[key] = current + value

