"""String-keyed engine registry.

Engines are registered under short names (``"stp"``, ``"hier"``,
``"fen"``, ``"bms"``, ``"lutexact"``) so dispatch sites — and the
pickle boundary of isolated worker processes — can refer to them by
key instead of by object.  Unknown names raise
:class:`~repro.runtime.errors.EngineUnavailable`, which the
fault-tolerant executor treats as "skip to the next engine in the
chain" rather than a crash.
"""

from __future__ import annotations

from typing import Callable

from ..runtime.errors import EngineUnavailable
from .protocol import Engine

__all__ = [
    "register_engine",
    "create_engine",
    "engine_names",
    "engine_capabilities",
]

#: name -> factory returning a configured Engine instance.
_FACTORIES: dict[str, Callable[..., Engine]] = {}


def register_engine(name: str):
    """Class decorator registering an engine factory under ``name``.

    The decorated class must implement the
    :class:`~repro.engine.protocol.Engine` protocol; its constructor
    receives the keyword arguments handed to :func:`create_engine`.
    """

    def decorate(cls):
        cls.name = name
        _FACTORIES[name] = cls
        return cls

    return decorate


def create_engine(name: str, **kwargs) -> Engine:
    """Instantiate a registered engine by name.

    Unknown tuning knobs are ignored by the adapters (each keeps only
    what its backend supports), so one shared kwargs dict can configure
    a heterogeneous fallback chain.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise EngineUnavailable(
            f"unknown synthesis engine {name!r}; "
            f"available: {', '.join(engine_names())}"
        ) from None
    return factory(**kwargs)


def engine_names() -> tuple[str, ...]:
    """All registered engine names, sorted."""
    return tuple(sorted(_FACTORIES))


def engine_capabilities(name: str):
    """The static capabilities of a registered engine."""
    try:
        return _FACTORIES[name].capabilities
    except KeyError:
        raise EngineUnavailable(
            f"unknown synthesis engine {name!r}; "
            f"available: {', '.join(engine_names())}"
        ) from None
