"""Decompose-and-share synthesis of multi-output specs.

Multi-output exact synthesis (Riener et al.'s ESOP formulation, and
the direction the SAT-sweeping STP paper points at for network-level
verification) asks for one chain computing *all* outputs with shared
interior gates.  A full joint search is exponential in the output
count; this module implements the standard practical formulation
instead: synthesize each distinct output function exactly, then fuse
the per-output optimal chains into one multi-output chain with
structural gate sharing.

The fusion is sharing-*aware*, not just sharing-tolerant: engines
that enumerate the full optimal-solution set (the paper's headline
mode) hand the merger many equally-sized chains per output, and the
merger greedily picks, for each output in turn, the candidate that
adds the fewest *new* gates on top of the already-merged prefix.
Identical output functions are synthesized once and merged twice —
the second merge costs zero gates by construction.

The resulting chain is optimal per output cone; the shared total is
an upper bound on the joint optimum (exact joint synthesis over the
shared topology space is the open item ROADMAP names).  Every merged
chain is verified output-by-output with the packed AllSAT verifier
before it is returned.
"""

from __future__ import annotations

import time

from ..chain.transform import SharedChainBuilder
from ..core.circuit_sat import verify_chain_outputs
from ..core.spec import (
    SynthesisResult,
    SynthesisSpec,
    SynthesisStats,
)
from ..runtime.errors import SynthesisInfeasible, VerificationFailed

__all__ = ["decompose_and_share"]


def decompose_and_share(
    engine, spec: SynthesisSpec, ctx=None
) -> SynthesisResult:
    """Synthesize a multi-output spec through ``engine``'s
    single-output path plus max-sharing chain fusion.

    ``engine`` is any object with the Engine protocol's
    ``synthesize(spec, ctx)``; each *distinct* output function is
    synthesized once through it (identical outputs share one search),
    and the per-output optimal chains are fused with
    :class:`~repro.chain.transform.SharedChainBuilder`.
    """
    started = time.perf_counter()
    stats = SynthesisStats()
    n = spec.functions[0].num_vars

    per_output: list[SynthesisResult] = []
    solved: dict[int, SynthesisResult] = {}
    for index in range(spec.num_outputs):
        single = spec.output_spec(index)
        key = single.function.bits
        result = solved.get(key)
        if result is None:
            result = engine.synthesize(single, ctx)
            if not result.chains:
                raise SynthesisInfeasible(
                    f"no chain for output {index} "
                    f"(0x{single.function.to_hex()})"
                )
            solved[key] = result
            stats.merge(result.stats)
        per_output.append(result)

    builder = SharedChainBuilder(n)
    for result in per_output:
        candidates = result.chains
        best = candidates[0]
        if len(candidates) > 1:
            best_cost = builder.cost(best)
            for candidate in candidates[1:]:
                cost = builder.cost(candidate)
                if cost < best_cost:
                    best, best_cost = candidate, cost
                    if best_cost == 0:
                        break
        builder.append(best)
    merged = builder.chain

    if spec.max_gates is not None and merged.num_gates > spec.max_gates:
        raise SynthesisInfeasible(
            f"shared chain needs {merged.num_gates} gates, "
            f"cap is {spec.max_gates}"
        )
    if spec.verify and not verify_chain_outputs(merged, spec.functions):
        raise VerificationFailed(
            "merged multi-output chain failed packed verification"
        )
    return SynthesisResult(
        spec=spec,
        chains=[merged],
        num_gates=merged.num_gates,
        runtime=time.perf_counter() - started,
        stats=stats,
    )
