"""First-class synthesis engines.

The protocol (:mod:`~repro.engine.protocol`), the string-keyed
registry (:mod:`~repro.engine.registry`), and one adapter per
synthesizer (:mod:`~repro.engine.adapters`).  Importing this package
registers the six built-in engines: ``stp``, ``hier``, ``fen``,
``bms``, ``lutexact``, and ``cegis``.

:func:`run_engine` is the convenience dispatch used by the runtime's
named-engine shim: it builds a :class:`SynthesisSpec` from a bare
``(function, timeout)`` pair, instantiates the named engine with any
extra knobs as spec overrides, and runs it.
"""

from __future__ import annotations

from ..core.spec import SynthesisResult, SynthesisSpec
from ..truthtable.table import TruthTable
from . import adapters as _adapters  # noqa: F401  (registers engines)
from .adapters import (
    BMSEngine,
    CegisEngine,
    FENEngine,
    HierEngine,
    LutExactEngine,
    STPEngine,
)
from .protocol import Engine, EngineCapabilities
from .registry import (
    create_engine,
    engine_capabilities,
    engine_names,
    register_engine,
)

__all__ = [
    "Engine",
    "EngineCapabilities",
    "register_engine",
    "create_engine",
    "engine_names",
    "engine_capabilities",
    "run_engine",
    "STPEngine",
    "HierEngine",
    "FENEngine",
    "BMSEngine",
    "LutExactEngine",
    "CegisEngine",
]


def run_engine(
    name: str,
    function: TruthTable,
    timeout: float | None = None,
    ctx=None,
    **kwargs,
) -> SynthesisResult:
    """Dispatch a bare ``(function, timeout)`` call to a named engine.

    ``kwargs`` become spec overrides for knobs the engine supports;
    the rest are ignored (the fallback-chain contract).  ``min_gates``
    is a spec knob shared by every engine: the store's negative cache
    passes the proven-infeasible gate floor through it.
    """
    min_gates = int(kwargs.pop("min_gates", 0) or 0)
    engine = create_engine(name, **kwargs)
    spec = SynthesisSpec(
        function=function, timeout=timeout, min_gates=min_gates
    )
    return engine.synthesize(spec, ctx)
