"""Engine-protocol adapters for every synthesizer in the repository.

Each adapter maps :class:`~repro.core.spec.SynthesisSpec` fields onto
its backend's knobs and exposes the uniform
``synthesize(spec, ctx)`` entry point.  Constructor keyword arguments
act as *spec overrides*: the fault-tolerant runtime configures engines
with a shared ``engine_kwargs`` dict (e.g. ``{"max_solutions": 64}``),
and each adapter keeps only the keys its backend honours — unknown
knobs are silently ignored so one dict can configure a heterogeneous
fallback chain.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.context import SynthesisContext
from ..core.spec import SynthesisResult, SynthesisSpec
from .protocol import EngineCapabilities
from .registry import register_engine

__all__ = [
    "STPEngine",
    "HierEngine",
    "FENEngine",
    "BMSEngine",
    "LutExactEngine",
    "CegisEngine",
]


class _SpecAdapter:
    """Shared plumbing: spec overrides, context-aware timeouts, and
    the multi-output route.

    ``synthesize`` is the protocol entry point for every adapter: a
    multi-output spec is dispatched to the decompose-and-share fusion
    (which calls back into this adapter once per distinct output),
    while single-output specs go straight to the engine's own
    ``_synthesize_single``.
    """

    #: Spec fields this engine's backend honours as ctor overrides.
    _SPEC_KEYS: tuple[str, ...] = ()

    def __init__(self, **kwargs) -> None:
        self._overrides = {
            key: value
            for key, value in kwargs.items()
            if key in self._SPEC_KEYS and value is not None
        }

    def synthesize(
        self, spec: SynthesisSpec, ctx: SynthesisContext | None = None
    ) -> SynthesisResult:
        if spec.is_multi_output:
            from .multioutput import decompose_and_share

            return decompose_and_share(self, spec, ctx)
        return self._synthesize_single(spec, ctx)

    def _synthesize_single(
        self, spec: SynthesisSpec, ctx: SynthesisContext | None
    ) -> SynthesisResult:
        raise NotImplementedError

    def _effective_spec(self, spec: SynthesisSpec) -> SynthesisSpec:
        if not self._overrides:
            return spec
        return replace(spec, **self._overrides)

    @staticmethod
    def _timeout(
        spec: SynthesisSpec, ctx: SynthesisContext | None
    ) -> float | None:
        if ctx is not None:
            return ctx.deadline.remaining()
        return spec.timeout


@register_engine("stp")
class STPEngine(_SpecAdapter):
    """The paper's STP factorization pipeline (Section III)."""

    capabilities = EngineCapabilities(
        all_solutions=True,
        verification=True,
        custom_operators=True,
        exact=True,
        multi_output=True,
    )
    _SPEC_KEYS = (
        "operators",
        "max_gates",
        "all_solutions",
        "verify",
        "max_solutions",
        "canonicalize_dont_cares",
        "npn_canonicalize",
    )

    def _synthesize_single(
        self, spec: SynthesisSpec, ctx: SynthesisContext | None = None
    ) -> SynthesisResult:
        from ..core.pipeline import run_pipeline

        return run_pipeline(self._effective_spec(spec), ctx)


@register_engine("hier")
class HierEngine(_SpecAdapter):
    """DSD-hierarchical synthesis with exact prime blocks."""

    capabilities = EngineCapabilities(
        all_solutions=True,
        verification=True,
        custom_operators=True,
        exact=False,
        multi_output=True,
    )
    _SPEC_KEYS = ("operators", "all_solutions", "max_solutions")

    def _synthesize_single(
        self, spec: SynthesisSpec, ctx: SynthesisContext | None = None
    ) -> SynthesisResult:
        from ..core.hierarchical import HierarchicalSynthesizer

        eff = self._effective_spec(spec)
        return HierarchicalSynthesizer(
            operators=eff.operators,
            max_solutions=eff.max_solutions,
            all_solutions=eff.all_solutions,
        ).run(eff, ctx=ctx)


class _BaselineAdapter(_SpecAdapter):
    """Shared dispatch for the single-solution SSV baselines."""

    _SPEC_KEYS = ("max_gates",)

    def _backend(self, spec: SynthesisSpec):
        raise NotImplementedError

    def _synthesize_single(
        self, spec: SynthesisSpec, ctx: SynthesisContext | None = None
    ) -> SynthesisResult:
        eff = self._effective_spec(spec)
        result = self._backend(eff).synthesize(
            eff.function, timeout=self._timeout(eff, ctx)
        )
        if ctx is not None:
            ctx.stats.merge(result.stats)
        return result


@register_engine("fen")
class FENEngine(_BaselineAdapter):
    """Fence-enumerating CNF baseline (FEN)."""

    capabilities = EngineCapabilities(
        all_solutions=False,
        verification=True,
        custom_operators=False,
        exact=True,
        multi_output=True,
    )

    def _backend(self, spec: SynthesisSpec):
        from ..baselines.fence_synth import FenceSynthesizer

        return FenceSynthesizer(max_gates=spec.max_gates)


@register_engine("bms")
class BMSEngine(_BaselineAdapter):
    """Topology-free CNF baseline (BMS)."""

    capabilities = EngineCapabilities(
        all_solutions=False,
        verification=True,
        custom_operators=False,
        exact=True,
        multi_output=True,
    )

    def _backend(self, spec: SynthesisSpec):
        from ..baselines.bms import BMSSynthesizer

        return BMSSynthesizer(max_gates=spec.max_gates)


@register_engine("lutexact")
class LutExactEngine(_BaselineAdapter):
    """CEGAR-refined SSV baseline (ABC lutexact-style)."""

    capabilities = EngineCapabilities(
        all_solutions=False,
        verification=True,
        custom_operators=False,
        exact=True,
        multi_output=True,
    )

    def _backend(self, spec: SynthesisSpec):
        from ..baselines.lutexact import LutExactSynthesizer

        return LutExactSynthesizer(max_gates=spec.max_gates)


@register_engine("cegis")
class CegisEngine(_BaselineAdapter):
    """Counterexample-guided sample-based exact synthesis (CEGIS)."""

    capabilities = EngineCapabilities(
        all_solutions=False,
        verification=True,
        custom_operators=False,
        exact=True,
        multi_output=True,
    )

    def _backend(self, spec: SynthesisSpec):
        from ..core.cegis import CegisSynthesizer

        return CegisSynthesizer(max_gates=spec.max_gates)
