"""The first-class synthesis-engine protocol.

Every synthesis algorithm in the repository — the paper's STP
factorization engine, the DSD-hierarchical fast path, and the three
baselines — is exposed as an :class:`Engine`: a named object with a
static :class:`EngineCapabilities` description and a single
``synthesize(spec, ctx)`` entry point.  The CLI, the benchmark runner,
the NPN database, hierarchical prime-block synthesis, and the
fault-tolerant fallback chain all dispatch through this protocol, so
adding an engine means registering one adapter, not editing five call
sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..core.context import SynthesisContext
from ..core.spec import SynthesisResult, SynthesisSpec

__all__ = ["EngineCapabilities", "Engine"]


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine can honour from a :class:`SynthesisSpec`.

    Attributes
    ----------
    all_solutions:
        The engine can enumerate the *full* optimal-solution set (the
        paper's headline mode); engines without it return one chain.
    verification:
        Candidates are verified (AllSAT or simulation) before being
        returned.
    custom_operators:
        ``spec.operators`` restricts the gate library; engines without
        it always use the full nontrivial binary set.
    exact:
        Returned chains are guaranteed gate-count optimal.
    multi_output:
        Multi-output specs (``spec.functions`` longer than one) are
        accepted and answered with a single shared-gate chain.  For
        the built-in adapters this is the decompose-and-share path
        (per-output exact, sharing-aware fusion); ``exact`` continues
        to describe the per-output guarantee.
    """

    all_solutions: bool = False
    verification: bool = True
    custom_operators: bool = False
    exact: bool = True
    multi_output: bool = False


@runtime_checkable
class Engine(Protocol):
    """A synthesis engine: ``name``, ``capabilities``, ``synthesize``.

    ``synthesize`` consumes a full :class:`SynthesisSpec` and an
    optional :class:`SynthesisContext`; when ``ctx`` is ``None`` the
    engine creates a fresh one from the spec's timeout and the
    process-global cache.
    """

    name: str
    capabilities: EngineCapabilities

    def synthesize(
        self, spec: SynthesisSpec, ctx: SynthesisContext | None = None
    ) -> SynthesisResult:
        ...
