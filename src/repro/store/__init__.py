"""Persistent chain store: synthesize once, serve the orbit forever.

:class:`ChainStore` keeps every optimal chain the engines produce in a
single SQLite file, keyed by NPN class and gate count.  The
fault-tolerant executor consults it lookup-before-synthesize (the
inverse NPN transform maps stored canonical chains onto any orbit
member) and writes back on miss, so ``repro-synth --store``, the batch
scheduler, and ``run_suite(store_path=...)`` all share one growing
database.
"""

from .chainstore import ChainStore, DEFAULT_MAX_CHAINS_PER_CLASS
from .serialize import chain_from_record, chain_to_record

__all__ = [
    "ChainStore",
    "DEFAULT_MAX_CHAINS_PER_CLASS",
    "chain_to_record",
    "chain_from_record",
]
