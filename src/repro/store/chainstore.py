"""Persistent NPN-keyed store of optimal chains.

Exact synthesis is expensive and its answers never change: once any
engine has produced the optimal chains of a function, every future
request for any member of the same NPN class can be served by a
transform instead of a search (the database idea behind Soeken et
al.'s BMS and Haaswijk et al.'s fence flows).  The store records each
solution set once, in *canonical* space — chains are rewritten through
the class transform before being stored — and a lookup maps them back
through the inverse transform of the queried orbit member, so one row
serves the whole orbit.

Multi-output solution sets share the same table: the key is the
comma-joined per-output canonical hex under the *joint* NPN transform
(one shared input permutation/negation, per-output output negations),
which can never collide with a single-output hex, and the row's
``num_outputs`` column records the vector width.  Old single-output
databases migrate in place (``ALTER TABLE`` adds the column with
DEFAULT 1) and keep serving unmodified.

Rows are keyed by ``(num_vars, canonical_hex, num_gates)`` in SQLite:
a single file, safe under concurrent readers and writers (WAL journal
plus a busy timeout), queryable with ordinary tooling, and append-
cheap.  Within one process each thread gets its **own** connection
(created lazily, used only by its owning thread), so concurrent
lookups from the serving layer's worker pool read in parallel instead
of serializing on a shared handle; writes still serialize on one
process-wide lock because a merge is a read-modify-write.  Every lookup re-verifies the first reconstructed chain against
the queried function (packed-cube AllSAT); a corrupt row is
**quarantined** — marked in place, skipped by every later lookup, and
counted — so one bad record degrades to a miss exactly once instead of
re-verifying (or worse, raising) on every suite instance that touches
the class.

Two row grades share the table: ``exact = 1`` rows are optimal chains
from engines whose capabilities claim exactness (the store's original
contract), while ``exact = 0`` rows are verified **upper bounds** from
heuristic engines.  Plain :meth:`ChainStore.lookup` serves only exact
rows; :meth:`ChainStore.lookup_upper_bound` serves the best row of
either grade and is the graceful-degradation path — when every exact
engine exhausts its budget, the runtime answers with the best-known
bound (clearly flagged non-exact) instead of a bare failure.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time

from ..core.circuit_sat import verify_chain, verify_chain_outputs
from ..core.spec import SynthesisResult, SynthesisSpec
from ..chain.transform import npn_transform_chain, npn_transform_chain_multi
from ..truthtable.table import TruthTable
from .serialize import chain_from_record, chain_to_record

__all__ = ["ChainStore", "DEFAULT_MAX_CHAINS_PER_CLASS"]

#: Cap on the stored solution set per class — the paper's all-solutions
#: sets are capped at 256 in the harness as well.
DEFAULT_MAX_CHAINS_PER_CLASS = 256

_SCHEMA = """
CREATE TABLE IF NOT EXISTS chains (
    num_vars    INTEGER NOT NULL,
    canon_hex   TEXT    NOT NULL,
    num_gates   INTEGER NOT NULL,
    engine      TEXT    NOT NULL,
    solutions   TEXT    NOT NULL,
    created     REAL    NOT NULL,
    exact       INTEGER NOT NULL DEFAULT 1,
    quarantined INTEGER NOT NULL DEFAULT 0,
    num_outputs INTEGER NOT NULL DEFAULT 1,
    PRIMARY KEY (num_vars, canon_hex, num_gates)
)
"""

#: Negative cache: the largest gate count proven to admit *no* chain
#: for an NPN class.  Gate counts are NPN-invariant and the exact
#: search is bottom-up, so one monotone mark per class is enough —
#: warm runs and ``repro-serve`` resume at ``max_gates + 1`` instead
#: of re-proving the exhausted sizes.
_INFEASIBLE_SCHEMA = """
CREATE TABLE IF NOT EXISTS infeasible (
    num_vars  INTEGER NOT NULL,
    canon_hex TEXT    NOT NULL,
    max_gates INTEGER NOT NULL,
    created   REAL    NOT NULL,
    PRIMARY KEY (num_vars, canon_hex)
)
"""

#: Columns added after the first shipped schema; existing databases
#: are migrated in place with ``ALTER TABLE`` on open.
_MIGRATIONS = (
    ("exact", "INTEGER NOT NULL DEFAULT 1"),
    ("quarantined", "INTEGER NOT NULL DEFAULT 0"),
    ("num_outputs", "INTEGER NOT NULL DEFAULT 1"),
)


class ChainStore:
    """SQLite-backed store of optimal chains, keyed by NPN class.

    All chains are stored in the NPN-canonical input space; ``lookup``
    rewrites them back through the inverse transform of the queried
    function.  One instance may be shared across threads: each thread
    reads through its own lazily-created connection (WAL readers never
    block each other), while writes and counter updates serialize on an
    internal lock; separate processes sharing the same path coordinate
    through SQLite's own locking.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        max_chains_per_class: int = DEFAULT_MAX_CHAINS_PER_CLASS,
    ) -> None:
        self._path = os.fspath(path)
        self._max_chains = max_chains_per_class
        self._lock = threading.Lock()
        directory = os.path.dirname(self._path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Per-thread connections: ``check_same_thread=False`` is safe
        # here because each connection is only ever *used* by the thread
        # that created it (the thread-local below enforces that); the
        # flag is relaxed solely so ``close()`` can shut every
        # connection down from whichever thread calls it.
        self._local = threading.local()
        self._conns: dict[int, sqlite3.Connection] = {}
        self._conns_lock = threading.Lock()
        self._closed = False
        conn = self._connection()
        with self._lock:
            with conn:
                conn.execute(_SCHEMA)
                conn.execute(_INFEASIBLE_SCHEMA)
                self._migrate(conn)
        #: Served lookups / fell-through lookups / completed write-backs,
        #: plus total wall-clock spent inside *served* lookups and the
        #: number of corrupt rows quarantined by failed re-simulation.
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        self.hit_seconds = 0.0

    def _connection(self) -> sqlite3.Connection:
        """This thread's connection, created on first use.

        Dead threads' connections are reaped opportunistically whenever
        a new one is opened, so long-lived processes with worker
        recycling do not accumulate handles.
        """
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        if self._closed:
            raise sqlite3.ProgrammingError(
                "Cannot operate on a closed database."
            )
        conn = sqlite3.connect(
            self._path, timeout=30.0, check_same_thread=False
        )
        conn.execute("PRAGMA journal_mode=WAL")
        self._local.conn = conn
        with self._conns_lock:
            alive = {t.ident for t in threading.enumerate()}
            for ident in list(self._conns):
                if ident not in alive:
                    try:
                        self._conns.pop(ident).close()
                    except sqlite3.Error:  # pragma: no cover
                        pass
            self._conns[threading.get_ident()] = conn
        return conn

    def _migrate(self, conn: sqlite3.Connection) -> None:
        """Add post-v1 columns to databases created by older code."""
        present = {
            row[1] for row in conn.execute("PRAGMA table_info(chains)")
        }
        for column, decl in _MIGRATIONS:
            if column not in present:
                conn.execute(
                    f"ALTER TABLE chains ADD COLUMN {column} {decl}"
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Filesystem location of the SQLite database."""
        return self._path

    def _canonical(self, function: TruthTable):
        from ..cache import get_cache

        return get_cache().npn_canonical(function)

    @staticmethod
    def _canonical_multi(functions):
        from ..truthtable.npn import canonicalize_multi

        return canonicalize_multi(functions)

    @staticmethod
    def _multi_key(canon_tables) -> str:
        """Comma-joined per-output canonical hexes.

        Commas never occur in a single-output hex key, so multi-output
        rows share the ``chains`` table without colliding with the
        single-output keyspace — old databases keep serving unmodified.
        """
        return ",".join(t.to_hex() for t in canon_tables)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def lookup(
        self,
        function: TruthTable,
        *,
        events: list | None = None,
    ) -> SynthesisResult | None:
        """Serve ``function``'s optimal chains from the store, or miss.

        Picks the smallest non-quarantined *exact* gate-count row for
        the class, rebuilds every chain in the queried function's own
        input space, and re-simulates the first one as a corruption
        guard.  A row that fails the guard is **quarantined** — marked
        in the database, skipped by all later lookups, and counted in
        :attr:`quarantined` — and the lookup reports a miss rather
        than escalating to the next row (a larger gate count must not
        be served as the optimum).

        ``events``, when given, receives ``("quarantined",
        num_gates)`` tuples for per-call accounting (the executor
        surfaces them in suite worker summaries).
        """
        return self._lookup(function, exact_only=True, events=events)

    def lookup_upper_bound(
        self,
        function: TruthTable,
        *,
        events: list | None = None,
    ) -> tuple[SynthesisResult, bool] | None:
        """Serve the best-known chain of *either* grade, or miss.

        The graceful-degradation read path: exact and upper-bound rows
        compete on gate count, corrupt rows are quarantined and the
        *next* row is tried (any verified bound beats a bare failure).
        Returns ``(result, exact_flag)``.
        """
        result = self._lookup(
            function, exact_only=False, events=events
        )
        if result is None:
            return None
        return result, bool(getattr(result, "_store_exact", True))

    # ------------------------------------------------------------------
    # negative cache: proven-infeasible gate counts
    # ------------------------------------------------------------------
    def min_feasible_gates(self, function: TruthTable) -> int:
        """Smallest gate count not yet proven infeasible for the class.

        Returns 0 when nothing is known.  The result is safe to pass
        as :attr:`~repro.core.spec.SynthesisSpec.min_gates`: gate
        counts are NPN-invariant, so a size exhausted for the class
        representative is exhausted for every orbit member.
        """
        canon, _ = self._canonical(function)
        row = (
            self._connection()
            .execute(
                "SELECT max_gates FROM infeasible "
                "WHERE num_vars = ? AND canon_hex = ?",
                (canon.num_vars, canon.to_hex()),
            )
            .fetchone()
        )
        return 0 if row is None else int(row[0]) + 1

    def mark_infeasible(
        self, function: TruthTable, num_gates: int
    ) -> None:
        """Record that no chain of up to ``num_gates`` gates realizes
        the class (monotone: only ever raises the stored mark).

        Call sites derive the mark from *exact* evidence only — an
        exhaustive search that came up empty, or an optimal result of
        ``r`` gates proving sizes below ``r`` empty.
        """
        if num_gates < 1:
            return
        canon, _ = self._canonical(function)
        conn = self._connection()
        with self._lock:
            with conn:
                conn.execute(
                    "INSERT INTO infeasible "
                    "(num_vars, canon_hex, max_gates, created) "
                    "VALUES (?, ?, ?, ?) "
                    "ON CONFLICT(num_vars, canon_hex) DO UPDATE SET "
                    "max_gates = excluded.max_gates, "
                    "created = excluded.created "
                    "WHERE excluded.max_gates > infeasible.max_gates",
                    (
                        canon.num_vars,
                        canon.to_hex(),
                        int(num_gates),
                        time.time(),
                    ),
                )

    def _lookup(
        self,
        function: TruthTable,
        *,
        exact_only: bool,
        events: list | None,
    ) -> SynthesisResult | None:
        started = time.perf_counter()
        canon, transform = self._canonical(function)
        canon_hex = canon.to_hex()
        rows = self._fetch_rows(
            function.num_vars, canon_hex, exact_only=exact_only
        )
        inverse = transform.inverse()
        for num_gates, _engine, payload, exact in rows:
            chains = None
            try:
                records = json.loads(payload)
                chains = [
                    npn_transform_chain(chain_from_record(r), inverse)
                    for r in records
                ]
            except (ValueError, TypeError, json.JSONDecodeError):
                chains = None
            # Corruption guard on the packed-cube AllSAT path: the
            # chain is genuine iff its onset expands exactly to the
            # queried function.
            try:
                valid = bool(chains) and verify_chain(
                    chains[0], function
                )
            except ValueError:
                valid = False
            if not valid:
                self._quarantine(
                    function.num_vars, canon_hex, num_gates, events
                )
                if exact_only:
                    break  # never serve a larger count as the optimum
                continue
            runtime = time.perf_counter() - started
            with self._lock:
                self.hits += 1
                self.hit_seconds += runtime
            spec = SynthesisSpec(function=function)
            result = SynthesisResult(
                spec=spec,
                chains=chains,
                num_gates=num_gates,
                runtime=runtime,
            )
            result._store_exact = bool(exact)
            return result
        self._miss()
        return None

    def lookup_multi(
        self,
        functions,
        *,
        events: list | None = None,
    ) -> SynthesisResult | None:
        """Serve a multi-output function vector from the store, or miss.

        The vector is canonicalized jointly (one shared input
        permutation/negation, per-output output negations), the row is
        fetched under the comma-joined canonical key, and every stored
        chain is rewritten back through the inverse transform.  The
        first chain is re-simulated output-by-output with the packed
        verifier; corruption quarantines the row exactly as in the
        single-output path.  A one-element vector delegates to
        :meth:`lookup`, so multi-output callers transparently share
        the single-output keyspace.
        """
        functions = list(functions)
        if not functions:
            raise ValueError("need at least one output function")
        if len(functions) == 1:
            return self.lookup(functions[0], events=events)
        started = time.perf_counter()
        canon_tables, transform = self._canonical_multi(functions)
        canon_hex = self._multi_key(canon_tables)
        num_vars = functions[0].num_vars
        rows = self._fetch_rows(num_vars, canon_hex, exact_only=True)
        inverse = transform.inverse()
        for num_gates, _engine, payload, _exact in rows:
            chains = None
            try:
                records = json.loads(payload)
                chains = [
                    npn_transform_chain_multi(
                        chain_from_record(r), inverse
                    )
                    for r in records
                ]
            except (ValueError, TypeError, json.JSONDecodeError):
                chains = None
            try:
                valid = bool(chains) and verify_chain_outputs(
                    chains[0], functions
                )
            except ValueError:
                valid = False
            if not valid:
                self._quarantine(num_vars, canon_hex, num_gates, events)
                break  # never serve a larger count as the optimum
            runtime = time.perf_counter() - started
            with self._lock:
                self.hits += 1
                self.hit_seconds += runtime
            spec = SynthesisSpec(functions=tuple(functions))
            result = SynthesisResult(
                spec=spec,
                chains=chains,
                num_gates=num_gates,
                runtime=runtime,
            )
            result._store_exact = True
            return result
        self._miss()
        return None

    def _fetch_rows(
        self, num_vars: int, canon_hex: str, *, exact_only: bool
    ) -> list[tuple[int, str, str, int]]:
        query = (
            "SELECT num_gates, engine, solutions, exact FROM chains "
            "WHERE num_vars = ? AND canon_hex = ? AND quarantined = 0 "
        )
        if exact_only:
            query += "AND exact = 1 "
        query += "ORDER BY num_gates ASC"
        try:
            cursor = self._connection().execute(
                query, (num_vars, canon_hex)
            )
            return cursor.fetchall()
        except sqlite3.Error:
            return []

    def _quarantine(
        self,
        num_vars: int,
        canon_hex: str,
        num_gates: int,
        events: list | None,
    ) -> None:
        """Mark a corrupt row so no later lookup re-verifies it."""
        with self._lock:
            try:
                conn = self._connection()
                with conn:
                    conn.execute(
                        "UPDATE chains SET quarantined = 1 WHERE "
                        "num_vars = ? AND canon_hex = ? AND "
                        "num_gates = ?",
                        (num_vars, canon_hex, num_gates),
                    )
            except sqlite3.Error:
                pass  # mark is best-effort; the skip still happens
            self.quarantined += 1
        if events is not None:
            events.append(("quarantined", num_gates))

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(
        self,
        function: TruthTable,
        result: SynthesisResult,
        engine: str = "",
        *,
        exact: bool = True,
    ) -> bool:
        """Record a solution set for ``function``'s NPN class.

        Chains are rewritten into canonical space before storage.  An
        existing row at the same gate count is merged (union of
        solution sets, capped); chains that fail to re-simulate are
        dropped rather than stored.  ``exact=False`` grades the row as
        a verified upper bound (heuristic engines); merging with an
        existing row keeps the *stronger* grade, and a fresh write
        clears any quarantine mark on the row.  Returns True when a
        row was written.
        """
        if not result.chains or result.num_gates < 0:
            return False
        canon, transform = self._canonical(function)
        canonical_chains = []
        for chain in result.chains[: self._max_chains]:
            rewritten = npn_transform_chain(chain, transform)
            try:
                if not verify_chain(rewritten, canon):
                    continue
            except ValueError:
                continue
            canonical_chains.append(rewritten)
        if not canonical_chains:
            return False
        key = (function.num_vars, canon.to_hex(), result.num_gates)
        with self._lock:
            try:
                conn = self._connection()
                with conn:
                    self._merge_row(
                        conn, key, canonical_chains, engine, exact
                    )
            except sqlite3.Error:
                return False
            self.writes += 1
        return True

    def put_multi(
        self,
        functions,
        result: SynthesisResult,
        engine: str = "",
        *,
        exact: bool = True,
    ) -> bool:
        """Record a shared multi-output chain for a function vector.

        Chains are rewritten into the joint canonical space (shared
        input transform, per-output negations) and re-verified against
        the canonical tables before storage; the row carries its
        output count in ``num_outputs``.  A one-element vector
        delegates to :meth:`put`.  Returns True when a row was written.
        """
        functions = list(functions)
        if not functions:
            raise ValueError("need at least one output function")
        if len(functions) == 1:
            return self.put(functions[0], result, engine, exact=exact)
        if not result.chains or result.num_gates < 0:
            return False
        canon_tables, transform = self._canonical_multi(functions)
        canonical_chains = []
        for chain in result.chains[: self._max_chains]:
            if len(chain.outputs) != len(functions):
                continue
            rewritten = npn_transform_chain_multi(chain, transform)
            try:
                if not verify_chain_outputs(rewritten, canon_tables):
                    continue
            except ValueError:
                continue
            canonical_chains.append(rewritten)
        if not canonical_chains:
            return False
        key = (
            functions[0].num_vars,
            self._multi_key(canon_tables),
            result.num_gates,
        )
        with self._lock:
            try:
                conn = self._connection()
                with conn:
                    self._merge_row(
                        conn,
                        key,
                        canonical_chains,
                        engine,
                        exact,
                        num_outputs=len(functions),
                    )
            except sqlite3.Error:
                return False
            self.writes += 1
        return True

    def _merge_row(
        self,
        conn: sqlite3.Connection,
        key,
        canonical_chains,
        engine: str,
        exact: bool,
        num_outputs: int = 1,
    ) -> None:
        num_vars, canon_hex, num_gates = key
        cursor = conn.execute(
            "SELECT solutions, exact FROM chains WHERE num_vars = ? "
            "AND canon_hex = ? AND num_gates = ?",
            key,
        )
        row = cursor.fetchone()
        grade = 1 if exact else 0
        merged = {chain.signature(): chain for chain in canonical_chains}
        if row is not None:
            grade = max(grade, int(row[1]))  # grades only escalate
            try:
                for record in json.loads(row[0]):
                    chain = chain_from_record(record)
                    merged.setdefault(chain.signature(), chain)
            except (ValueError, TypeError, json.JSONDecodeError):
                pass  # corrupt row: overwrite with the fresh set
        chains = sorted(merged.values(), key=lambda c: c.signature())
        chains = chains[: self._max_chains]
        payload = json.dumps([chain_to_record(c) for c in chains])
        # A fresh verified write supersedes any quarantine mark.
        conn.execute(
            "INSERT OR REPLACE INTO chains "
            "(num_vars, canon_hex, num_gates, engine, solutions, "
            "created, exact, quarantined, num_outputs) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, 0, ?)",
            (
                num_vars,
                canon_hex,
                num_gates,
                engine,
                payload,
                time.time(),
                grade,
                num_outputs,
            ),
        )

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        cursor = self._connection().execute(
            "SELECT COUNT(*) FROM chains"
        )
        return int(cursor.fetchone()[0])

    def counters(self) -> dict:
        """JSON-safe hit/miss/write counters plus the row count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
            "classes": len(self),
        }

    def close(self) -> None:
        """Close every thread's connection (idempotent).

        Connections were opened with ``check_same_thread=False``
        precisely so this teardown may run from any thread; after
        closing, threads that still hold a thread-local reference get
        SQLite's own ``ProgrammingError`` instead of undefined
        behaviour.
        """
        with self._conns_lock:
            self._closed = True
            conns, self._conns = list(self._conns.values()), {}
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "ChainStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
