"""Persistent NPN-keyed store of optimal chains.

Exact synthesis is expensive and its answers never change: once any
engine has produced the optimal chains of a function, every future
request for any member of the same NPN class can be served by a
transform instead of a search (the database idea behind Soeken et
al.'s BMS and Haaswijk et al.'s fence flows).  The store records each
solution set once, in *canonical* space — chains are rewritten through
the class transform before being stored — and a lookup maps them back
through the inverse transform of the queried orbit member, so one row
serves the whole orbit.

Rows are keyed by ``(num_vars, canonical_hex, num_gates)`` in SQLite:
a single file, safe under concurrent readers and writers (WAL journal
plus a busy timeout), queryable with ordinary tooling, and append-
cheap.  Every lookup re-verifies the first reconstructed chain against
the queried function (packed-cube AllSAT), so a corrupt row degrades
to a miss instead of serving a wrong circuit.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time

from ..core.circuit_sat import verify_chain
from ..core.spec import SynthesisResult, SynthesisSpec
from ..chain.transform import npn_transform_chain
from ..truthtable.table import TruthTable
from .serialize import chain_from_record, chain_to_record

__all__ = ["ChainStore", "DEFAULT_MAX_CHAINS_PER_CLASS"]

#: Cap on the stored solution set per class — the paper's all-solutions
#: sets are capped at 256 in the harness as well.
DEFAULT_MAX_CHAINS_PER_CLASS = 256

_SCHEMA = """
CREATE TABLE IF NOT EXISTS chains (
    num_vars  INTEGER NOT NULL,
    canon_hex TEXT    NOT NULL,
    num_gates INTEGER NOT NULL,
    engine    TEXT    NOT NULL,
    solutions TEXT    NOT NULL,
    created   REAL    NOT NULL,
    PRIMARY KEY (num_vars, canon_hex, num_gates)
)
"""


class ChainStore:
    """SQLite-backed store of optimal chains, keyed by NPN class.

    All chains are stored in the NPN-canonical input space; ``lookup``
    rewrites them back through the inverse transform of the queried
    function.  One instance may be shared across threads (operations
    serialize on an internal lock); separate processes sharing the same
    path coordinate through SQLite's own locking.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        max_chains_per_class: int = DEFAULT_MAX_CHAINS_PER_CLASS,
    ) -> None:
        self._path = os.fspath(path)
        self._max_chains = max_chains_per_class
        self._lock = threading.Lock()
        directory = os.path.dirname(self._path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(
            self._path, timeout=30.0, check_same_thread=False
        )
        with self._conn:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(_SCHEMA)
        #: Served lookups / fell-through lookups / completed write-backs,
        #: plus total wall-clock spent inside *served* lookups.
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.hit_seconds = 0.0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Filesystem location of the SQLite database."""
        return self._path

    def _canonical(self, function: TruthTable):
        from ..cache import get_cache

        return get_cache().npn_canonical(function)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def lookup(self, function: TruthTable) -> SynthesisResult | None:
        """Serve ``function``'s optimal chains from the store, or miss.

        Picks the smallest recorded gate count for the class, rebuilds
        every chain in the queried function's own input space, and
        re-simulates the first one as a corruption guard.  Any failure
        along the way (bad row, wrong simulation) counts as a miss.
        """
        started = time.perf_counter()
        canon, transform = self._canonical(function)
        row = self._fetch_row(function.num_vars, canon.to_hex())
        if row is None:
            self._miss()
            return None
        num_gates, engine, payload = row
        try:
            records = json.loads(payload)
            inverse = transform.inverse()
            chains = [
                npn_transform_chain(chain_from_record(r), inverse)
                for r in records
            ]
        except (ValueError, TypeError, json.JSONDecodeError):
            self._miss()
            return None
        # Corruption guard on the packed-cube AllSAT path: the chain is
        # genuine iff its onset expands exactly to the queried function.
        try:
            valid = bool(chains) and verify_chain(chains[0], function)
        except ValueError:
            valid = False
        if not valid:
            self._miss()
            return None
        runtime = time.perf_counter() - started
        with self._lock:
            self.hits += 1
            self.hit_seconds += runtime
        spec = SynthesisSpec(function=function)
        return SynthesisResult(
            spec=spec,
            chains=chains,
            num_gates=num_gates,
            runtime=runtime,
        )

    def _fetch_row(
        self, num_vars: int, canon_hex: str
    ) -> tuple[int, str, str] | None:
        with self._lock:
            try:
                cursor = self._conn.execute(
                    "SELECT num_gates, engine, solutions FROM chains "
                    "WHERE num_vars = ? AND canon_hex = ? "
                    "ORDER BY num_gates ASC LIMIT 1",
                    (num_vars, canon_hex),
                )
                return cursor.fetchone()
            except sqlite3.Error:
                return None

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(
        self,
        function: TruthTable,
        result: SynthesisResult,
        engine: str = "",
    ) -> bool:
        """Record a solution set for ``function``'s NPN class.

        Chains are rewritten into canonical space before storage.  An
        existing row at the same gate count is merged (union of
        solution sets, capped); chains that fail to re-simulate are
        dropped rather than stored.  Returns True when a row was
        written.
        """
        if not result.chains or result.num_gates < 0:
            return False
        canon, transform = self._canonical(function)
        canonical_chains = []
        for chain in result.chains[: self._max_chains]:
            rewritten = npn_transform_chain(chain, transform)
            try:
                if not verify_chain(rewritten, canon):
                    continue
            except ValueError:
                continue
            canonical_chains.append(rewritten)
        if not canonical_chains:
            return False
        key = (function.num_vars, canon.to_hex(), result.num_gates)
        with self._lock:
            try:
                with self._conn:
                    self._merge_row(key, canonical_chains, engine)
            except sqlite3.Error:
                return False
            self.writes += 1
        return True

    def _merge_row(self, key, canonical_chains, engine: str) -> None:
        num_vars, canon_hex, num_gates = key
        cursor = self._conn.execute(
            "SELECT solutions FROM chains WHERE num_vars = ? AND "
            "canon_hex = ? AND num_gates = ?",
            key,
        )
        row = cursor.fetchone()
        merged = {chain.signature(): chain for chain in canonical_chains}
        if row is not None:
            try:
                for record in json.loads(row[0]):
                    chain = chain_from_record(record)
                    merged.setdefault(chain.signature(), chain)
            except (ValueError, TypeError, json.JSONDecodeError):
                pass  # corrupt row: overwrite with the fresh set
        chains = sorted(merged.values(), key=lambda c: c.signature())
        chains = chains[: self._max_chains]
        payload = json.dumps([chain_to_record(c) for c in chains])
        self._conn.execute(
            "INSERT OR REPLACE INTO chains "
            "(num_vars, canon_hex, num_gates, engine, solutions, created) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (num_vars, canon_hex, num_gates, engine, payload, time.time()),
        )

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            cursor = self._conn.execute("SELECT COUNT(*) FROM chains")
            return int(cursor.fetchone()[0])

    def counters(self) -> dict:
        """JSON-safe hit/miss/write counters plus the row count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "classes": len(self),
        }

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "ChainStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
