"""JSON-safe serialization of Boolean chains.

The chain store persists whole optimal-solution sets; checkpoint logs
and the store both need a representation that is greppable, diffable,
and stable across interpreter versions — so chains are stored as plain
JSON objects rather than pickles.  The format mirrors the chain's
construction API directly: a gate is ``[op, [fanins...]]`` and an
output is ``[signal, complemented]``.
"""

from __future__ import annotations

from ..chain.chain import BooleanChain

__all__ = ["chain_to_record", "chain_from_record"]

#: Bumped when the record layout changes; readers skip unknown versions.
RECORD_VERSION = 1


def chain_to_record(chain: BooleanChain) -> dict:
    """A plain-data (JSON-safe) representation of ``chain``."""
    return {
        "v": RECORD_VERSION,
        "inputs": chain.num_inputs,
        "gates": [[gate.op, list(gate.fanins)] for gate in chain.gates],
        "outputs": [
            [signal, bool(complemented)]
            for signal, complemented in chain.outputs
        ],
    }


def chain_from_record(record: dict) -> BooleanChain:
    """Rebuild a chain from :func:`chain_to_record` output.

    Raises ``ValueError`` on malformed or unknown-version records so
    callers can treat a corrupt store row as a cache miss.
    """
    if not isinstance(record, dict):
        raise ValueError("chain record must be a dict")
    if record.get("v") != RECORD_VERSION:
        raise ValueError(f"unknown chain record version {record.get('v')!r}")
    try:
        chain = BooleanChain(int(record["inputs"]))
        for op, fanins in record["gates"]:
            chain.add_gate(int(op), tuple(int(f) for f in fanins))
        for signal, complemented in record["outputs"]:
            chain.set_output(int(signal), bool(complemented))
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed chain record: {exc}") from None
    chain.validate()
    return chain
