"""Logic expressions and their STP canonical forms (Property 2).

An :class:`Expression` is a small AST over named Boolean variables.
Its headline operation is :meth:`Expression.canonical_form`: the
2×2^n logic matrix ``M_Φ`` with ``Φ(x_1, …, x_n) = M_Φ ⋉ x_1 ⋉ … ⋉ x_n``
computed *by STP matrix algebra* — structural matrices are combined
with column-wise Kronecker products, which is the closed form of the
paper's variable power-reducing (``M_r``) and swapping (``M_w``) steps.

A tiny recursive-descent parser is included so examples can write
``parse("(a <-> ~b) & (b <-> ~c)")`` instead of building ASTs by hand.

Operator precedence, loosest first: ``<->`` (equiv), ``->`` (implies),
``|``, ``^``, ``&``, ``~`` (not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..truthtable.table import TruthTable, from_function
from .matrix import (
    front_retrieval_matrix,
    khatri_rao,
    canonical_to_truth_table,
)
from .structural import NAMED_STRUCTURAL

__all__ = [
    "Expression",
    "Var",
    "Const",
    "Not",
    "BinOp",
    "parse",
    "canonical_form",
    "expression_to_truth_table",
]

_BINOP_EVAL = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "xnor": lambda a, b: 1 - (a ^ b),
    "equiv": lambda a, b: 1 - (a ^ b),
    "nand": lambda a, b: 1 - (a & b),
    "nor": lambda a, b: 1 - (a | b),
    "implies": lambda a, b: (1 - a) | b,
}

_BINOP_SYMBOL = {
    "and": "&",
    "or": "|",
    "xor": "^",
    "xnor": "<->",
    "equiv": "<->",
    "implies": "->",
}


class Expression:
    """Base class of the expression AST."""

    def variables(self) -> tuple[str, ...]:
        """All variable names, in first-appearance order."""
        seen: dict[str, None] = {}
        self._collect(seen)
        return tuple(seen)

    def _collect(self, seen: dict[str, None]) -> None:
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a name → {0,1} environment."""
        raise NotImplementedError

    def canonical_form(
        self, variables: Sequence[str] | None = None
    ) -> np.ndarray:
        """The STP canonical form over the given variable order
        (defaults to first-appearance order)."""
        order = tuple(variables) if variables is not None else self.variables()
        for v in self.variables():
            if v not in order:
                raise ValueError(f"variable {v!r} missing from order")
        return self._canonical(order)

    def _canonical(self, order: tuple[str, ...]) -> np.ndarray:
        raise NotImplementedError

    def to_truth_table(
        self, variables: Sequence[str] | None = None
    ) -> TruthTable:
        """Tabulate the expression; table variable ``i`` is
        ``variables[n-1-i]`` (the canonical-form correspondence)."""
        return canonical_to_truth_table(self.canonical_form(variables))

    # Operator sugar -----------------------------------------------------
    def __and__(self, other: "Expression") -> "Expression":
        return BinOp("and", self, other)

    def __or__(self, other: "Expression") -> "Expression":
        return BinOp("or", self, other)

    def __xor__(self, other: "Expression") -> "Expression":
        return BinOp("xor", self, other)

    def __invert__(self) -> "Expression":
        return Not(self)

    def implies(self, other: "Expression") -> "Expression":
        """Material implication ``self -> other``."""
        return BinOp("implies", self, other)

    def equiv(self, other: "Expression") -> "Expression":
        """Logical equivalence ``self <-> other``."""
        return BinOp("equiv", self, other)


@dataclass(frozen=True)
class Var(Expression):
    """A named Boolean variable."""

    name: str

    def _collect(self, seen: dict[str, None]) -> None:
        seen.setdefault(self.name, None)

    def evaluate(self, env: Mapping[str, int]) -> int:
        if self.name not in env:
            raise KeyError(f"variable {self.name!r} unassigned")
        return int(bool(env[self.name]))

    def _canonical(self, order: tuple[str, ...]) -> np.ndarray:
        position = order.index(self.name) + 1  # paper is 1-indexed
        return front_retrieval_matrix(position, len(order))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expression):
    """A Boolean constant."""

    value: bool

    def _collect(self, seen: dict[str, None]) -> None:
        return None

    def evaluate(self, env: Mapping[str, int]) -> int:
        return int(self.value)

    def _canonical(self, order: tuple[str, ...]) -> np.ndarray:
        cols = 1 << len(order)
        row = np.ones(cols, dtype=np.int64)
        if self.value:
            return np.vstack([row, np.zeros(cols, dtype=np.int64)])
        return np.vstack([np.zeros(cols, dtype=np.int64), row])

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    child: Expression

    def _collect(self, seen: dict[str, None]) -> None:
        self.child._collect(seen)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return 1 - self.child.evaluate(env)

    def _canonical(self, order: tuple[str, ...]) -> np.ndarray:
        inner = self.child._canonical(order)
        return inner[::-1].copy()  # M_n ⋉ inner swaps the two rows

    def __str__(self) -> str:
        return f"~{_paren(self.child)}"


@dataclass(frozen=True)
class BinOp(Expression):
    """A binary operator node; ``op`` is a name in ``NAMED_STRUCTURAL``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _BINOP_EVAL:
            raise ValueError(f"unknown operator {self.op!r}")

    def _collect(self, seen: dict[str, None]) -> None:
        self.left._collect(seen)
        self.right._collect(seen)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return _BINOP_EVAL[self.op](
            self.left.evaluate(env), self.right.evaluate(env)
        )

    def _canonical(self, order: tuple[str, ...]) -> np.ndarray:
        m_sigma = NAMED_STRUCTURAL[self.op]
        m_left = self.left._canonical(order)
        m_right = self.right._canonical(order)
        # M_σ (M_l x)(M_r x) = M_σ (M_l ⊗ M_r)(x ⋉ x)
        #                    = M_σ · KhatriRao(M_l, M_r) · x.
        return m_sigma @ khatri_rao(m_left, m_right)

    def __str__(self) -> str:
        # nand/nor have no infix token; print the equivalent negation.
        if self.op == "nand":
            return f"~({_paren(self.left)} & {_paren(self.right)})"
        if self.op == "nor":
            return f"~({_paren(self.left)} | {_paren(self.right)})"
        symbol = _BINOP_SYMBOL[self.op]
        return f"{_paren(self.left)} {symbol} {_paren(self.right)}"


def _paren(expr: Expression) -> str:
    text = str(expr)
    if isinstance(expr, (Var, Const, Not)):
        return text
    return f"({text})"


def canonical_form(
    expr: Expression, variables: Sequence[str] | None = None
) -> np.ndarray:
    """Module-level alias of :meth:`Expression.canonical_form`."""
    return expr.canonical_form(variables)


def expression_to_truth_table(
    expr: Expression, variables: Sequence[str] | None = None
) -> TruthTable:
    """Tabulate by direct evaluation (reference path used in tests to
    cross-check the STP algebra)."""
    order = tuple(variables) if variables is not None else expr.variables()
    n = len(order)

    def fn(*xs: int) -> int:
        # Table variable i corresponds to order[n-1-i].
        env = {order[n - 1 - i]: xs[i] for i in range(n)}
        return expr.evaluate(env)

    return from_function(fn, n)


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
_TOKEN_OPS = ("<->", "<=>", "->", "=>", "(", ")", "~", "!", "&", "|", "^")


def _tokenize(text: str) -> Iterator[str]:
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        matched = False
        for op in _TOKEN_OPS:
            if text.startswith(op, i):
                yield op
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch.isalnum() or ch == "_":
            j = i
            while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                j += 1
            yield text[i:j]
            i = j
            continue
        raise ValueError(f"unexpected character {ch!r} at position {i}")


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._pos = 0

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _take(self) -> str:
        token = self._peek()
        if token is None:
            raise ValueError("unexpected end of expression")
        self._pos += 1
        return token

    def parse(self) -> Expression:
        expr = self._equiv()
        if self._peek() is not None:
            raise ValueError(f"trailing input at token {self._peek()!r}")
        return expr

    def _equiv(self) -> Expression:
        left = self._implies()
        while self._peek() in ("<->", "<=>"):
            self._take()
            left = BinOp("equiv", left, self._implies())
        return left

    def _implies(self) -> Expression:
        left = self._or()
        if self._peek() in ("->", "=>"):
            self._take()
            # right-associative
            return BinOp("implies", left, self._implies())
        return left

    def _or(self) -> Expression:
        left = self._xor()
        while self._peek() == "|":
            self._take()
            left = BinOp("or", left, self._xor())
        return left

    def _xor(self) -> Expression:
        left = self._and()
        while self._peek() == "^":
            self._take()
            left = BinOp("xor", left, self._and())
        return left

    def _and(self) -> Expression:
        left = self._unary()
        while self._peek() == "&":
            self._take()
            left = BinOp("and", left, self._unary())
        return left

    def _unary(self) -> Expression:
        token = self._peek()
        if token in ("~", "!"):
            self._take()
            return Not(self._unary())
        if token == "(":
            self._take()
            inner = self._equiv()
            if self._take() != ")":
                raise ValueError("expected ')'")
            return inner
        name = self._take()
        if name in ("0", "1"):
            return Const(name == "1")
        if not (name[0].isalpha() or name[0] == "_"):
            raise ValueError(f"bad variable name {name!r}")
        return Var(name)


def parse(text: str) -> Expression:
    """Parse an infix Boolean expression into an AST.

    >>> str(parse("(a <-> ~b) & c"))
    '(a <-> ~b) & c'
    """
    return _Parser(text).parse()
