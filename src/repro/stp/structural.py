"""Structural matrices of Boolean operators (Definition 3).

A *structural matrix* ``M_σ`` is the 2×2^k logic matrix whose columns
spell the truth table of a ``k``-ary operator ``σ`` read right-to-left,
so that ``σ(x_1, …, x_k) = M_σ ⋉ x_1 ⋉ … ⋉ x_k`` for Boolean column
vectors ``x_i``.

The module exposes the named matrices used throughout the paper
(negation ``M_n``, conjunction ``M_c``, disjunction ``M_d``,
implication ``M_i``, equivalence ``M_e``, …) plus conversions between
2-input operator *codes* (the 4-bit truth tables of
:mod:`repro.truthtable.operations`) and their structural matrices.

Operand-order convention: ``M_σ ⋉ u ⋉ v`` evaluates the operator code
at truth-table row ``(u << 1) | v`` — the first STP operand is the
*high* truth-table variable ``x1``, matching the paper where the
canonical form's leftmost variable is the most significant.
"""

from __future__ import annotations

import numpy as np

from ..truthtable.operations import binary_op_table
from ..truthtable.table import TruthTable
from .matrix import (
    canonical_to_truth_table,
    column_index,
    is_logic_matrix,
    stp_chain,
    bool_vector,
    truth_table_to_canonical,
)

__all__ = [
    "M_N",
    "M_C",
    "M_D",
    "M_I",
    "M_E",
    "M_X",
    "M_NAND",
    "M_NOR",
    "NAMED_STRUCTURAL",
    "structural_matrix",
    "structural_matrix_of_table",
    "code_of_structural_matrix",
    "table_of_structural_matrix",
    "eval_structural",
]


def structural_matrix(code: int) -> np.ndarray:
    """Structural matrix of a 2-input operator code (0..15)."""
    return truth_table_to_canonical(binary_op_table(code))


def structural_matrix_of_table(table: TruthTable) -> np.ndarray:
    """Structural matrix of an arbitrary ``k``-ary operator given as a
    truth table (``2 × 2^k``)."""
    return truth_table_to_canonical(table)


def table_of_structural_matrix(matrix: np.ndarray) -> TruthTable:
    """Recover the operator truth table from its structural matrix."""
    return canonical_to_truth_table(matrix)


def code_of_structural_matrix(matrix: np.ndarray) -> int:
    """Recover the 4-bit code of a 2-input structural matrix."""
    table = canonical_to_truth_table(matrix)
    if table.num_vars != 2:
        raise ValueError("not a 2-input structural matrix")
    return table.bits


def eval_structural(matrix: np.ndarray, values: list[int]) -> int:
    """Evaluate ``M_σ ⋉ x_1 ⋉ … ⋉ x_k`` on scalar Boolean values.

    ``values[0]`` is the paper's ``x_1`` (most significant operand).
    Returns the Boolean result as 0/1.
    """
    if not is_logic_matrix(matrix):
        raise ValueError("not a logic matrix")
    vec = stp_chain([matrix] + [bool_vector(v) for v in values])
    return 1 - column_index(vec)


#: Negation ``M_n`` (Example 1).
M_N = np.array([[0, 1], [1, 0]], dtype=np.int64)

#: Conjunction (AND) ``M_c``.
M_C = structural_matrix(0x8)

#: Disjunction (OR) ``M_d`` (Example 2).
M_D = structural_matrix(0xE)

#: Implication ``M_i`` (Example 2): columns 1011 / read right-to-left.
M_I = structural_matrix(0xB)

#: Equivalence (XNOR) ``M_e``.
M_E = structural_matrix(0x9)

#: Exclusive-or ``M_x``.
M_X = structural_matrix(0x6)

#: NAND.
M_NAND = structural_matrix(0x7)

#: NOR.
M_NOR = structural_matrix(0x1)

#: Name → structural matrix, for the expression layer and pretty output.
NAMED_STRUCTURAL: dict[str, np.ndarray] = {
    "not": M_N,
    "and": M_C,
    "or": M_D,
    "implies": M_I,
    "equiv": M_E,
    "xnor": M_E,
    "xor": M_X,
    "nand": M_NAND,
    "nor": M_NOR,
}
