"""Logical reasoning with STP canonical forms (Section II-A).

Identities between Boolean expressions become *matrix equalities*
between canonical forms — Example 2 of the paper proves
``a -> b  ==  ~a | b`` by checking ``M_d · M_n == M_i``.  This module
offers that style of reasoning as a small API: identity proving,
tautology/contradiction checks, and verification helpers for the
algebraic properties (Property 1) the factorization engine relies on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .expression import Expression
from .matrix import identity, stp

__all__ = [
    "prove_identity",
    "are_equivalent",
    "is_tautology",
    "is_contradiction",
    "swap_property_holds",
]


def _joint_order(
    lhs: Expression, rhs: Expression, variables: Sequence[str] | None
) -> tuple[str, ...]:
    if variables is not None:
        return tuple(variables)
    order: dict[str, None] = {}
    for name in lhs.variables() + rhs.variables():
        order.setdefault(name, None)
    return tuple(order)


def prove_identity(
    lhs: Expression,
    rhs: Expression,
    variables: Sequence[str] | None = None,
) -> bool:
    """Prove (or refute) ``lhs == rhs`` by canonical-form equality.

    Both sides are brought into STP canonical form over a shared
    variable order; the identity holds iff the two 2×2^n logic matrices
    are equal entry-wise.
    """
    order = _joint_order(lhs, rhs, variables)
    return bool(
        np.array_equal(lhs.canonical_form(order), rhs.canonical_form(order))
    )


def are_equivalent(lhs: Expression, rhs: Expression) -> bool:
    """Alias of :func:`prove_identity` with the default variable order."""
    return prove_identity(lhs, rhs)


def is_tautology(expr: Expression) -> bool:
    """True when the canonical form's top row is all ones."""
    m = expr.canonical_form()
    return bool(np.all(m[0] == 1))


def is_contradiction(expr: Expression) -> bool:
    """True when the canonical form's top row is all zeros."""
    m = expr.canonical_form()
    return bool(np.all(m[0] == 0))


def swap_property_holds(x: np.ndarray, z_r: np.ndarray) -> bool:
    """Check Property 1 for a row vector: ``X ⋉ Z_r == Z_r ⋉ (I_t ⊗ X)``.

    ``z_r`` must be a 1×t row vector.  Used by tests to validate the
    swap machinery underpinning matrix factorization.
    """
    z = np.asarray(z_r)
    if z.ndim == 1:
        z = z.reshape(1, -1)
    if z.shape[0] != 1:
        raise ValueError("z_r must be a row vector")
    t = z.shape[1]
    lhs = stp(x, z)
    rhs = stp(z, np.kron(identity(t), np.asarray(x)))
    return bool(np.array_equal(lhs, rhs))
