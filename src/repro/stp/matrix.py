"""Semi-tensor product (STP) of matrices and logic-matrix primitives.

This module implements Definition 1 and Properties 1–2 of the paper:
the STP ``X ⋉ Y`` of arbitrary matrices, the Boolean-variable vectors
``TRUE = [1 0]^T`` / ``FALSE = [0 1]^T``, logic matrices (2×2^n matrices
whose columns are Boolean vectors), the power-reducing matrix ``M_r``
and the variable-swap matrix ``M_w``, together with their generalised
``n``-dimensional versions, and conversions between logic matrices and
:class:`~repro.truthtable.TruthTable` objects.

All matrices are small dense ``numpy`` integer arrays.  The column
convention follows the paper: for variables ``x_1 … x_n`` (each a unit
column vector), the STP ``x_1 ⋉ … ⋉ x_n`` equals the unit vector
``e_j`` with ``j = Σ b_i · 2^(n-i)`` where ``b_i = 0`` when ``x_i`` is
true — i.e. the *leftmost* column of a canonical form is the all-true
assignment and the truth table is read right-to-left.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..truthtable.table import TruthTable

__all__ = [
    "TRUE",
    "FALSE",
    "bool_vector",
    "stp",
    "stp_chain",
    "identity",
    "is_logic_matrix",
    "is_unit_column",
    "column_index",
    "unit_vector",
    "swap_matrix",
    "power_reduce_matrix",
    "khatri_rao",
    "M_R",
    "M_W",
    "front_retrieval_matrix",
    "canonical_to_truth_table",
    "truth_table_to_canonical",
    "assignment_to_column",
    "column_to_assignment",
]

_DTYPE = np.int64

#: The Boolean TRUE column vector of the paper's ``S_V``.
TRUE = np.array([[1], [0]], dtype=_DTYPE)

#: The Boolean FALSE column vector of the paper's ``S_V``.
FALSE = np.array([[0], [1]], dtype=_DTYPE)


def bool_vector(value: int | bool) -> np.ndarray:
    """The ``S_V`` column vector of a Boolean scalar."""
    return TRUE.copy() if value else FALSE.copy()


def _as_matrix(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x, dtype=_DTYPE)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"expected a matrix, got ndim={arr.ndim}")
    return arr


def stp(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Semi-tensor product ``X ⋉ Y`` (Definition 1).

    ``X ⋉ Y = (X ⊗ I_{t/n}) · (Y ⊗ I_{t/p})`` with ``t = lcm(n, p)``
    where ``X`` is ``m×n`` and ``Y`` is ``p×q``.  Generalises ordinary
    matrix multiplication (recovered when ``n == p``).
    """
    a = _as_matrix(x)
    b = _as_matrix(y)
    n = a.shape[1]
    p = b.shape[0]
    t = math.lcm(n, p)
    left = np.kron(a, np.eye(t // n, dtype=_DTYPE)) if t != n else a
    right = np.kron(b, np.eye(t // p, dtype=_DTYPE)) if t != p else b
    return left @ right


def stp_chain(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Left-to-right STP of a sequence of matrices."""
    if not matrices:
        raise ValueError("need at least one matrix")
    result = _as_matrix(matrices[0])
    for m in matrices[1:]:
        result = stp(result, m)
    return result


def identity(n: int) -> np.ndarray:
    """Integer identity matrix ``I_n``."""
    return np.eye(n, dtype=_DTYPE)


def is_unit_column(column: np.ndarray) -> bool:
    """True when the column is a 0/1 unit vector (an element of Δ_k)."""
    col = np.asarray(column).ravel()
    return bool(
        np.all((col == 0) | (col == 1)) and col.sum() == 1
    )


def is_logic_matrix(matrix: np.ndarray) -> bool:
    """Definition 2: every column is a Boolean unit vector."""
    m = _as_matrix(matrix)
    if np.any((m != 0) & (m != 1)):
        return False
    return bool(np.all(m.sum(axis=0) == 1))


def column_index(column: np.ndarray) -> int:
    """Index of the 1 in a unit column vector."""
    col = np.asarray(column).ravel()
    if not is_unit_column(col):
        raise ValueError("not a unit column vector")
    return int(np.argmax(col))


def unit_vector(index: int, size: int) -> np.ndarray:
    """The unit column vector ``e_index`` of dimension ``size``."""
    if not 0 <= index < size:
        raise IndexError(f"index {index} out of range for size {size}")
    vec = np.zeros((size, 1), dtype=_DTYPE)
    vec[index, 0] = 1
    return vec


def swap_matrix(m: int, n: int) -> np.ndarray:
    """The swap matrix ``W_[m,n]`` with ``W (u ⊗ v) = v ⊗ u``
    for ``u ∈ Δ_m``, ``v ∈ Δ_n``.

    ``W_[2,2]`` is the paper's ``M_w`` of equation (4).
    """
    # Column index of u=e_i ⊗ v=e_j is i*n + j; it must map to
    # v ⊗ u = e_{j*m + i}.  One fancy-indexed assignment instead of an
    # m×n Python loop.
    w = np.zeros((m * n, m * n), dtype=_DTYPE)
    cols = np.arange(m * n)
    i, j = np.divmod(cols, n)
    w[j * m + i, cols] = 1
    return w


def power_reduce_matrix(dim: int) -> np.ndarray:
    """The power-reducing matrix ``PR_dim`` with ``u ⋉ u = PR_dim u``
    for any unit vector ``u ∈ Δ_dim``.

    ``PR_2`` is the paper's ``M_r`` of equation (3).
    """
    pr = np.zeros((dim * dim, dim), dtype=_DTYPE)
    j = np.arange(dim)
    pr[j * dim + j, j] = 1
    return pr


#: The paper's variable power-reducing matrix ``M_r`` (equation 3).
M_R = power_reduce_matrix(2)

#: The paper's variable swap matrix ``M_w`` (equation 4).
M_W = swap_matrix(2, 2)


def khatri_rao(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Column-wise Kronecker (Khatri–Rao) product.

    For logic matrices this equals ``(A ⊗ B) ⋉ PR`` with the
    power-reducing matrix ``PR`` of matching dimension: column ``j`` of
    the result is ``A[:, j] ⊗ B[:, j]``.  Using it avoids materialising
    the ``4^n × 2^n`` power-reduce matrix when composing canonical
    forms of wide functions.
    """
    am = _as_matrix(a)
    bm = _as_matrix(b)
    if am.shape[1] != bm.shape[1]:
        raise ValueError("column counts must match")
    stacked = np.einsum("ij,kj->ikj", am, bm)
    return stacked.reshape(am.shape[0] * bm.shape[0], am.shape[1])


def front_retrieval_matrix(var: int, num_vars: int) -> np.ndarray:
    """Canonical form of the bare variable ``x_var`` (paper indexing,
    ``var`` in ``1..num_vars``): the 2×2^n logic matrix ``M`` with
    ``M x_1 … x_n = x_var``."""
    if not 1 <= var <= num_vars:
        raise ValueError(f"var must be in 1..{num_vars}, got {var}")
    cols = 1 << num_vars
    m = np.zeros((2, cols), dtype=_DTYPE)
    bit = num_vars - var
    j = np.arange(cols)
    value = 1 - ((j >> bit) & 1)  # bit 0 of j-slot means x_var true
    m[1 - value, j] = 1
    return m


def assignment_to_column(values: Sequence[int], num_vars: int) -> int:
    """Column index of the assignment ``x_1 = values[0], …`` in a
    canonical form (paper order: ``x_1`` most significant, true = 0)."""
    if len(values) != num_vars:
        raise ValueError("assignment length mismatch")
    j = 0
    for i, v in enumerate(values):
        if v not in (0, 1):
            raise ValueError("assignment entries must be 0/1")
        j |= (1 - v) << (num_vars - 1 - i)
    return j


def column_to_assignment(column: int, num_vars: int) -> tuple[int, ...]:
    """Inverse of :func:`assignment_to_column`."""
    if not 0 <= column < (1 << num_vars):
        raise IndexError("column out of range")
    return tuple(
        1 - ((column >> (num_vars - 1 - i)) & 1) for i in range(num_vars)
    )


def truth_table_to_canonical(table: TruthTable) -> np.ndarray:
    """The STP canonical form ``M_Φ ∈ M^{2×2^n}`` of a truth table.

    Column ``j`` holds the function value at the assignment
    :func:`column_to_assignment` ``(j)``; since the truth-table row for
    that assignment is the bit-complement of ``j``, the canonical form
    is the truth table "read from right to left" (Definition 3).
    """
    n = table.num_vars
    cols = 1 << n
    m = np.zeros((2, cols), dtype=_DTYPE)
    # Row (cols-1) ^ j is the bit-complement of j, i.e. row cols-1-j:
    # the canonical form is the truth table read right-to-left.
    values = np.fromiter(
        (table.value(row) for row in range(cols)),
        dtype=_DTYPE,
        count=cols,
    )[::-1]
    m[1 - values, np.arange(cols)] = 1
    return m


def canonical_to_truth_table(matrix: np.ndarray) -> TruthTable:
    """Inverse of :func:`truth_table_to_canonical`."""
    m = _as_matrix(matrix)
    if m.shape[0] != 2 or not is_logic_matrix(m):
        raise ValueError("not a 2-row logic matrix")
    cols = m.shape[1]
    n = cols.bit_length() - 1
    if 1 << n != cols:
        raise ValueError("column count must be a power of two")
    bits = 0
    for j in range(cols):
        if m[0, j]:
            bits |= 1 << ((cols - 1) ^ j)
    return TruthTable(bits, n)
