"""STP-based AllSAT over CNF inputs (divide and conquer).

The paper's solver lineage (reference [14], Pan & Chu, "A Semi-Tensor
Product Based All Solutions Boolean Satisfiability Solver", JCST 2022;
also Ren et al., ICCC 2018 [11]) solves CNF formulas by matrix algebra:
each clause becomes a 2×2^k structural matrix, clauses are conjoined
into canonical forms over growing variable sets, and unsatisfying
columns are pruned eagerly — a divide-and-conquer AllSAT.

This module implements that solver on top of
:class:`repro.sat.cnf.CNF`, giving the repository a second, fully
independent AllSAT engine (the CDCL solver being the first), which the
test suite cross-checks on random formulas.

The working representation of a partial conjunction is the *onset
bitmask* of the clause-group function over its variable set — i.e. the
top row of its STP canonical form — so conjunction is a bitwise AND
once operands are aligned to a common variable order (the alignment is
exactly the swap/Kronecker lifting of Property 1, performed on row
masks).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..sat.cnf import CNF

__all__ = ["STPCnfSolver", "stp_all_sat_cnf"]


class STPCnfSolver:
    """Divide-and-conquer STP AllSAT for CNF formulas."""

    def __init__(self, cnf: CNF) -> None:
        self._cnf = cnf
        self._num_vars = cnf.num_vars

    # ------------------------------------------------------------------
    # clause → local onset
    # ------------------------------------------------------------------
    @staticmethod
    def _clause_onset(
        clause: Sequence[int], variables: Sequence[int]
    ) -> int:
        """Onset bitmask of one clause over its own variable list.

        Row ``m``: bit ``i`` of ``m`` is the value of ``variables[i]``.
        A clause is false on exactly one local assignment.
        """
        position = {v: i for i, v in enumerate(variables)}
        rows = 1 << len(variables)
        onset = 0
        for m in range(rows):
            ok = False
            for lit in clause:
                value = (m >> position[abs(lit)]) & 1
                if (value == 1) == (lit > 0):
                    ok = True
                    break
            if ok:
                onset |= 1 << m
        return onset

    @staticmethod
    def _lift(
        onset: int, variables: Sequence[int], superset: Sequence[int]
    ) -> int:
        """Re-express an onset over a variable superset (Property 1's
        identity-Kronecker lifting, computed on row masks)."""
        position = {v: i for i, v in enumerate(variables)}
        rows = 1 << len(superset)
        lifted = 0
        for m in range(rows):
            local = 0
            for j, v in enumerate(superset):
                if v in position and (m >> j) & 1:
                    local |= 1 << position[v]
            if (onset >> local) & 1:
                lifted |= 1 << m
        return lifted

    # ------------------------------------------------------------------
    # divide and conquer
    # ------------------------------------------------------------------
    def _conjoin_group(
        self, clauses: Sequence[tuple[int, ...]]
    ) -> tuple[int, tuple[int, ...]]:
        """Conjoin a clause group; returns (onset, variable order)."""
        if len(clauses) == 1:
            variables = tuple(sorted({abs(l) for l in clauses[0]}))
            return self._clause_onset(clauses[0], variables), variables
        mid = len(clauses) // 2
        left_onset, left_vars = self._conjoin_group(clauses[:mid])
        right_onset, right_vars = self._conjoin_group(clauses[mid:])
        union = tuple(sorted(set(left_vars) | set(right_vars)))
        lifted_left = self._lift(left_onset, left_vars, union)
        lifted_right = self._lift(right_onset, right_vars, union)
        return lifted_left & lifted_right, union

    def solve_onset(self) -> tuple[int, tuple[int, ...]]:
        """Full conjunction: (onset bitmask, variable order).

        An empty CNF is vacuously true over zero variables.
        """
        clauses = self._cnf.clauses
        for clause in clauses:
            if not clause:
                return 0, ()
        if not clauses:
            return 1, ()
        return self._conjoin_group(clauses)

    def is_satisfiable(self) -> bool:
        """SAT/UNSAT decision."""
        onset, _ = self.solve_onset()
        return onset != 0

    def iter_solutions(self) -> Iterator[dict[int, bool]]:
        """All models over *all* CNF variables (variables absent from
        every clause are free and enumerated both ways)."""
        onset, variables = self.solve_onset()
        if onset == 0:
            return
        free = [
            v
            for v in range(1, self._num_vars + 1)
            if v not in variables
        ]
        rows = 1 << len(variables)
        for m in range(rows):
            if not (onset >> m) & 1:
                continue
            base = {
                v: bool((m >> i) & 1) for i, v in enumerate(variables)
            }
            for combo in range(1 << len(free)):
                model = dict(base)
                for j, v in enumerate(free):
                    model[v] = bool((combo >> j) & 1)
                yield model

    def all_solutions(self) -> list[dict[int, bool]]:
        """All models as a list."""
        return list(self.iter_solutions())

    def count_solutions(self) -> int:
        """Model count (free variables included)."""
        onset, variables = self.solve_onset()
        free = self._num_vars - len(variables)
        return onset.bit_count() << free


def stp_all_sat_cnf(cnf: CNF) -> list[dict[int, bool]]:
    """Convenience wrapper: all models of a CNF via the STP solver."""
    return STPCnfSolver(cnf).all_solutions()
