"""STP-based SAT and AllSAT on canonical forms (Section II-A, Fig. 1).

The SAT question for a formula in canonical form ``M_Φ`` is: choose a
value for each ``x_i`` so that ``M_Φ ⋉ x_1 ⋉ … ⋉ x_n == [1 0]^T``.
Assigning ``x_1`` halves the matrix — ``x_1 = TRUE`` keeps the left
half of the columns, ``FALSE`` the right half — so the solver walks a
binary tree of matrix slices, pruning any branch whose slice no longer
contains a ``[1 0]^T`` column (exactly the procedure pictured in the
paper's Fig. 1).  Collecting every leaf that survives yields AllSAT.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..kernels import stp_assignments
from ..truthtable.table import TruthTable
from .expression import Expression
from .matrix import truth_table_to_canonical

__all__ = [
    "STPSolver",
    "all_sat",
    "solve_one",
    "count_solutions",
]


class STPSolver:
    """AllSAT solver over an STP canonical form.

    Accepts a 2×2^n logic matrix, a :class:`TruthTable`, or an
    :class:`Expression` (canonicalised over its natural variable
    order).  Solutions are tuples assigning ``x_1 … x_n`` in the
    paper's order (most significant variable first).
    """

    def __init__(
        self,
        formula: np.ndarray | TruthTable | Expression,
        variables: Sequence[str] | None = None,
    ) -> None:
        if isinstance(formula, Expression):
            self._names = tuple(
                variables if variables is not None else formula.variables()
            )
            matrix = formula.canonical_form(self._names)
        elif isinstance(formula, TruthTable):
            matrix = truth_table_to_canonical(formula)
            self._names = _default_names(formula.num_vars, variables)
        else:
            matrix = np.asarray(formula, dtype=np.int64)
            if matrix.ndim != 2 or matrix.shape[0] != 2:
                raise ValueError("canonical form must be a 2-row matrix")
            n = matrix.shape[1].bit_length() - 1
            if 1 << n != matrix.shape[1]:
                raise ValueError("column count must be a power of two")
            self._names = _default_names(n, variables)
        self._matrix = matrix
        self._num_vars = len(self._names)

    @property
    def variable_names(self) -> tuple[str, ...]:
        """Names reported alongside solutions."""
        return self._names

    @property
    def canonical_form(self) -> np.ndarray:
        """The 2×2^n matrix being solved."""
        return self._matrix

    def iter_solutions(self) -> Iterator[tuple[int, ...]]:
        """Yield every satisfying assignment, depth-first, ``x_1`` major.

        Each assignment is a tuple of 0/1 in variable order.  The tree
        walk of the paper's Fig. 1 is realised as one vectorized kernel:
        the satisfying columns of the canonical form in ascending index
        order *are* the depth-first leaves (``x = TRUE`` keeps the left
        half of a slice), so ``np.flatnonzero`` plus a bit-gather
        replaces the recursive halving descent.
        """
        yield from stp_assignments(self._matrix[0], self._num_vars)

    def all_solutions(self) -> list[tuple[int, ...]]:
        """All satisfying assignments as a list."""
        return list(self.iter_solutions())

    def solve(self) -> tuple[int, ...] | None:
        """First satisfying assignment, or None when UNSAT."""
        return next(self.iter_solutions(), None)

    def is_satisfiable(self) -> bool:
        """SAT / UNSAT decision."""
        return bool(np.any(self._matrix[0]))

    def solutions_as_dicts(self) -> list[dict[str, int]]:
        """All solutions keyed by variable name."""
        return [
            dict(zip(self._names, sol)) for sol in self.iter_solutions()
        ]


def _default_names(
    num_vars: int, variables: Sequence[str] | None
) -> tuple[str, ...]:
    if variables is None:
        return tuple(f"x{i}" for i in range(1, num_vars + 1))
    names = tuple(variables)
    if len(names) != num_vars:
        raise ValueError(
            f"expected {num_vars} variable names, got {len(names)}"
        )
    return names


def all_sat(
    formula: np.ndarray | TruthTable | Expression,
    variables: Sequence[str] | None = None,
) -> list[tuple[int, ...]]:
    """All satisfying assignments of a formula (AllSAT)."""
    return STPSolver(formula, variables).all_solutions()


def solve_one(
    formula: np.ndarray | TruthTable | Expression,
    variables: Sequence[str] | None = None,
) -> tuple[int, ...] | None:
    """One satisfying assignment, or None."""
    return STPSolver(formula, variables).solve()


def count_solutions(
    formula: np.ndarray | TruthTable | Expression,
) -> int:
    """Number of satisfying assignments (model count)."""
    solver = STPSolver(formula)
    return int(np.sum(solver.canonical_form[0]))
