"""Cross-engine differential oracle.

One :meth:`DifferentialHarness.check` call puts a single function
through every independent code path the repository has and reports any
pair that disagrees:

* each registered engine (plus ad-hoc ``(name, callable)`` engines for
  test fixtures) synthesizes the function through the fault-tolerant
  runtime with result verification *disabled* — the harness is the
  verifier here, and the runtime's own check would mask exactly the
  discrepancies this module exists to find;
* every returned chain is independently re-simulated
  (:meth:`BooleanChain.simulate_output`, a code path that shares
  nothing with the solvers) against the target;
* the packed-cube AllSAT verifier and the pre-kernel tuple reference
  are run on the same chains and must agree with the simulation and
  with each other (chains with ``CONST0`` outputs skip the reference,
  whose historical constant-output semantics deliberately differ —
  see ``tests/test_circuit_sat.py``);
* engines that both declare :attr:`EngineCapabilities.exact` must
  agree on the optimal gate count — with the default engine list this
  includes the CEGIS engine, whose sample-grown SAT instances share no
  constraint schedule with the fully-constrained baselines, making
  the gate-count cross-check a genuinely independent vote;
* the first exact result is pushed through a :class:`ChainStore`
  round trip — put, then lookup of a *different* orbit member — and
  the served chains are re-simulated against that member.

Engine timeouts, crashes, and infeasibility are recorded as
observations, not discrepancies: the harness runs under the same
fault-injection and deadline machinery as production synthesis, so a
fuzz campaign can script faults and still distinguish "engine fell
over (tolerated)" from "engines disagree (bug)".
"""

from __future__ import annotations

import os
import random
import tempfile
from dataclasses import dataclass, field
from typing import Sequence

from ..core.circuit_sat import (
    chain_all_sat,
    verify_chain,
    verify_chain_outputs,
)
from ..core.spec import Deadline
from ..engine import engine_capabilities, engine_names
from ..kernels.reference import chain_all_sat_ref, verify_chain_ref
from ..runtime.executor import FaultTolerantExecutor
from ..runtime.faults import FaultPlan
from ..store.chainstore import ChainStore
from ..truthtable.npn import NPNTransform
from ..truthtable.table import TruthTable

__all__ = [
    "Discrepancy",
    "EngineObservation",
    "DifferentialReport",
    "DifferentialHarness",
]


@dataclass(frozen=True)
class Discrepancy:
    """One observed disagreement between independent code paths.

    ``kind`` is one of ``realization`` (a chain does not compute its
    target), ``kernel`` (packed vs reference vs simulation disagree),
    ``optimality`` (exact engines disagree on the optimum), and
    ``store`` (a stored chain came back wrong or vanished).
    """

    kind: str
    function_hex: str
    num_vars: int
    engine: str
    detail: str

    def to_record(self) -> dict:
        return {
            "kind": self.kind,
            "function": self.function_hex,
            "num_vars": self.num_vars,
            "engine": self.engine,
            "detail": self.detail,
        }


@dataclass
class EngineObservation:
    """What one engine did with the function."""

    engine: str
    status: str
    num_gates: int = -1
    num_solutions: int = 0
    runtime: float = 0.0
    error: str = ""
    stats: dict | None = None

    def to_record(self) -> dict:
        record = {
            "engine": self.engine,
            "status": self.status,
            "num_gates": self.num_gates,
            "num_solutions": self.num_solutions,
            "runtime": round(self.runtime, 6),
        }
        if self.error:
            record["error"] = self.error
        if self.stats is not None:
            record["stats"] = self.stats
        return record


@dataclass
class DifferentialReport:
    """Everything one ``check()`` call observed."""

    function_hex: str
    num_vars: int
    observations: list[EngineObservation] = field(default_factory=list)
    discrepancies: list[Discrepancy] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no code paths disagreed (faults are tolerated)."""
        return not self.discrepancies

    def to_record(self) -> dict:
        return {
            "function": self.function_hex,
            "num_vars": self.num_vars,
            "observations": [o.to_record() for o in self.observations],
            "discrepancies": [d.to_record() for d in self.discrepancies],
        }


def _probe_transform(function: TruthTable) -> NPNTransform:
    """A deterministic non-trivial orbit member to probe the store with.

    Derived from the function bits alone so a fuzz run stays
    reproducible.  Above four variables the canonical form is only
    semi-canonical (orbit members may canonicalize differently), so
    the probe degrades to the identity there.
    """
    n = function.num_vars
    if n > 4 or n == 0:
        return NPNTransform.identity(n)
    rng = random.Random(function.bits * 2 + function.num_vars)
    perm = list(range(n))
    rng.shuffle(perm)
    return NPNTransform(
        tuple(perm), rng.getrandbits(n), bool(rng.getrandbits(1))
    )


class DifferentialHarness:
    """Differential tester over engines, kernels, and the chain store.

    Parameters
    ----------
    engines:
        Fallback-chain-style entries: registry names or
        ``(name, callable)`` pairs (in-process fixtures).  Defaults to
        every registered engine.
    timeout:
        Per-engine wall-clock budget for one function.
    max_solutions:
        Solution cap requested from each engine.
    max_chains_checked:
        Per-engine cap on chains put through the full oracle battery.
    check_kernels / check_store:
        Toggle the kernel-pair and store-round-trip oracles.
    store_path:
        Optional persistent store for the round-trip check; by default
        an ephemeral store in a temporary directory is used.
    fault_plan:
        Deterministic fault injection, forwarded to the runtime.
    exact_overrides:
        Exactness assumptions for ad-hoc callable engines (registry
        engines use their declared capabilities).  Callable engines
        default to exact.
    """

    def __init__(
        self,
        engines: Sequence | None = None,
        *,
        timeout: float = 5.0,
        max_solutions: int = 16,
        max_chains_checked: int = 8,
        check_kernels: bool = True,
        check_store: bool = True,
        store_path: str | os.PathLike | None = None,
        fault_plan: FaultPlan | None = None,
        exact_overrides: dict[str, bool] | None = None,
    ) -> None:
        self._engines = list(engines) if engines else list(engine_names())
        if not self._engines:
            raise ValueError("need at least one engine")
        self._timeout = timeout
        self._max_solutions = max_solutions
        self._max_chains = max_chains_checked
        self._check_kernels = check_kernels
        self._check_store = check_store
        self._fault_plan = fault_plan
        self._exact_overrides = dict(exact_overrides or {})
        self._store: ChainStore | None = None
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if check_store:
            if store_path is None:
                self._tmpdir = tempfile.TemporaryDirectory(
                    prefix="repro-verify-"
                )
                store_path = os.path.join(self._tmpdir.name, "oracle.db")
            self._store = ChainStore(store_path)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the ephemeral store (idempotent)."""
        if self._store is not None:
            self._store.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "DifferentialHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _engine_name(entry) -> str:
        return entry if isinstance(entry, str) else entry[0]

    def _is_exact(self, entry) -> bool:
        name = self._engine_name(entry)
        if name in self._exact_overrides:
            return self._exact_overrides[name]
        if isinstance(entry, str):
            return engine_capabilities(name).exact
        return True

    # ------------------------------------------------------------------
    # oracle battery
    # ------------------------------------------------------------------
    def check(
        self, function: TruthTable, deadline: Deadline | None = None
    ) -> DifferentialReport:
        """Run the full differential battery on one function."""
        report = DifferentialReport(
            function_hex=function.to_hex(), num_vars=function.num_vars
        )
        exact_results: list[tuple[str, object]] = []
        for entry in self._engines:
            if deadline is not None and deadline.expired():
                report.observations.append(
                    EngineObservation(
                        engine=self._engine_name(entry),
                        status="skipped",
                        error="fuzz budget exhausted",
                    )
                )
                continue
            budget = self._timeout
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None:
                    budget = min(budget, remaining)
            name = self._engine_name(entry)
            executor = FaultTolerantExecutor(
                (entry,),
                verify=False,
                max_retries=0,
                fault_plan=self._fault_plan,
                engine_kwargs={
                    name: {"max_solutions": self._max_solutions}
                },
            )
            outcome = executor.run(function, budget)
            observation = EngineObservation(
                engine=name,
                status=outcome.status,
                runtime=outcome.runtime,
                error=outcome.error,
            )
            if outcome.solved:
                result = outcome.result
                observation.num_gates = result.num_gates
                observation.num_solutions = result.num_solutions
                observation.stats = result.stats.to_record()
                self._check_chains(function, name, result, report)
                if self._is_exact(entry):
                    exact_results.append((name, result))
            report.observations.append(observation)
        self._check_optimality(function, exact_results, report)
        if self._store is not None and exact_results:
            self._check_store_roundtrip(
                function, exact_results[0], report
            )
        return report

    def check_multi(
        self,
        functions: Sequence[TruthTable],
        deadline: Deadline | None = None,
    ) -> DifferentialReport:
        """Differential battery for a multi-output function vector.

        Every engine synthesizes the vector through its multi-output
        path (decompose-and-share for the built-in adapters); the
        merged chain is cross-checked three independent ways:

        * **realization** — per-output plain simulation
          (:meth:`BooleanChain.simulate`) against each target;
        * **kernel** — the packed shared-memo verifier
          (:func:`verify_chain_outputs`) must agree with simulation;
        * **optimality** — for exact engines, each output's extracted
          cone (:func:`~repro.chain.transform.extract_output_cone`)
          must have the same gate count across engines: sharing is
          heuristic, per-output optima are not;
        * **store** — the first exact result round-trips through
          ``put_multi`` / ``lookup_multi`` of a jointly-transformed
          orbit member.
        """
        from ..chain.transform import extract_output_cone
        from ..core.spec import SynthesisSpec
        from ..engine import create_engine

        functions = list(functions)
        key_hex = ",".join(f.to_hex() for f in functions)
        report = DifferentialReport(
            function_hex=key_hex, num_vars=functions[0].num_vars
        )
        exact_cones: list[tuple[str, list[int]]] = []
        first_exact: tuple[str, object] | None = None
        for entry in self._engines:
            name = self._engine_name(entry)
            if deadline is not None and deadline.expired():
                report.observations.append(
                    EngineObservation(
                        engine=name,
                        status="skipped",
                        error="fuzz budget exhausted",
                    )
                )
                continue
            budget = self._timeout
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None:
                    budget = min(budget, remaining)
            spec = SynthesisSpec(
                functions=tuple(functions),
                timeout=budget,
                max_solutions=self._max_solutions,
                verify=False,
            )
            observation = EngineObservation(engine=name, status="ok")
            try:
                engine = (
                    create_engine(name)
                    if isinstance(entry, str)
                    else entry[1]
                )
                synth = (
                    engine.synthesize
                    if hasattr(engine, "synthesize")
                    else engine
                )
                result = synth(spec)
            except Exception as exc:
                observation.status = "crash"
                observation.error = f"{type(exc).__name__}: {exc}"
                report.observations.append(observation)
                continue
            observation.num_gates = result.num_gates
            observation.num_solutions = result.num_solutions
            observation.runtime = result.runtime
            report.observations.append(observation)
            chain = result.chains[0]
            simulated = chain.simulate()
            realized = [
                got == want for got, want in zip(simulated, functions)
            ]
            if len(simulated) != len(functions) or not all(realized):
                report.discrepancies.append(
                    Discrepancy(
                        kind="realization",
                        function_hex=key_hex,
                        num_vars=functions[0].num_vars,
                        engine=name,
                        detail=(
                            "merged chain realises outputs "
                            f"{[t.to_hex() for t in simulated]} "
                            "instead of the targets"
                        ),
                    )
                )
            if self._check_kernels:
                packed = verify_chain_outputs(chain, functions)
                if packed != all(realized):
                    report.discrepancies.append(
                        Discrepancy(
                            kind="kernel",
                            function_hex=key_hex,
                            num_vars=functions[0].num_vars,
                            engine=name,
                            detail=(
                                f"packed verify_chain_outputs says "
                                f"{packed}, per-output simulation "
                                f"says {all(realized)}"
                            ),
                        )
                    )
            if self._is_exact(entry) and all(realized):
                cones = [
                    extract_output_cone(chain, i).num_gates
                    for i in range(len(functions))
                ]
                exact_cones.append((name, cones))
                if first_exact is None:
                    first_exact = (name, result)
        if len(exact_cones) >= 2:
            baseline_name, baseline = exact_cones[0]
            for name, cones in exact_cones[1:]:
                if cones != baseline:
                    report.discrepancies.append(
                        Discrepancy(
                            kind="optimality",
                            function_hex=key_hex,
                            num_vars=functions[0].num_vars,
                            engine=name,
                            detail=(
                                f"per-output cone sizes {cones} differ "
                                f"from {baseline_name}'s {baseline}"
                            ),
                        )
                    )
        if self._store is not None and first_exact is not None:
            self._check_store_roundtrip_multi(
                functions, first_exact, key_hex, report
            )
        return report

    def _check_store_roundtrip_multi(
        self, functions, exact_result, key_hex, report
    ) -> None:
        """put_multi → lookup_multi of a joint orbit member."""
        from ..truthtable.npn import MultiNPNTransform

        engine, result = exact_result
        num_vars = functions[0].num_vars
        try:
            written = self._store.put_multi(
                functions, result, engine=engine
            )
        except Exception as exc:
            report.discrepancies.append(
                Discrepancy(
                    kind="store",
                    function_hex=key_hex,
                    num_vars=num_vars,
                    engine=engine,
                    detail=(
                        f"store.put_multi raised "
                        f"{type(exc).__name__}: {exc}"
                    ),
                )
            )
            return
        if not written:
            report.discrepancies.append(
                Discrepancy(
                    kind="store",
                    function_hex=key_hex,
                    num_vars=num_vars,
                    engine=engine,
                    detail=(
                        "store.put_multi rejected a verified "
                        "solution set"
                    ),
                )
            )
            return
        shared = _probe_transform(functions[0])
        if num_vars > 4 or num_vars == 0:
            # Above four variables the joint canonical form keys on
            # the exact tables; only the identity member is guaranteed
            # to hit.
            probe = MultiNPNTransform.identity(num_vars, len(functions))
        else:
            rng = random.Random(
                sum(f.bits for f in functions) + len(functions)
            )
            probe = MultiNPNTransform(
                perm=shared.perm,
                input_flips=shared.input_flips,
                output_flips=tuple(
                    bool(rng.getrandbits(1)) for _ in functions
                ),
            )
        members = list(probe.apply(functions))
        served = self._store.lookup_multi(members)
        if served is None:
            report.discrepancies.append(
                Discrepancy(
                    kind="store",
                    function_hex=key_hex,
                    num_vars=num_vars,
                    engine=engine,
                    detail=(
                        "lookup_multi missed the joint orbit member "
                        "right after put_multi"
                    ),
                )
            )
            return
        if served.num_gates != result.num_gates:
            report.discrepancies.append(
                Discrepancy(
                    kind="store",
                    function_hex=key_hex,
                    num_vars=num_vars,
                    engine=engine,
                    detail=(
                        f"store serves {served.num_gates} gates, "
                        f"engine found {result.num_gates}"
                    ),
                )
            )
        for index, chain in enumerate(served.chains[: self._max_chains]):
            simulated = chain.simulate()
            if [t.bits for t in simulated] != [t.bits for t in members]:
                report.discrepancies.append(
                    Discrepancy(
                        kind="store",
                        function_hex=key_hex,
                        num_vars=num_vars,
                        engine=engine,
                        detail=(
                            f"served chain {index} does not realise "
                            "the joint orbit member vector"
                        ),
                    )
                )

    def _check_chains(self, function, engine, result, report) -> None:
        """Independent re-simulation plus the packed/reference pair."""
        for index, chain in enumerate(result.chains[: self._max_chains]):
            simulated = chain.simulate_output()
            if simulated != function:
                report.discrepancies.append(
                    Discrepancy(
                        kind="realization",
                        function_hex=function.to_hex(),
                        num_vars=function.num_vars,
                        engine=engine,
                        detail=(
                            f"chain {index} simulates to "
                            f"0x{simulated.to_hex()} instead of the target"
                        ),
                    )
                )
            if not self._check_kernels:
                continue
            realized = simulated == function
            packed = verify_chain(chain, function)
            if packed != realized:
                report.discrepancies.append(
                    Discrepancy(
                        kind="kernel",
                        function_hex=function.to_hex(),
                        num_vars=function.num_vars,
                        engine=engine,
                        detail=(
                            f"packed verify_chain says {packed} on chain "
                            f"{index}, simulation says {realized}"
                        ),
                    )
                )
            if any(s == chain.CONST0 for s, _ in chain.outputs):
                continue  # reference keeps the old CONST0 semantics
            if verify_chain_ref(chain, function) != packed:
                report.discrepancies.append(
                    Discrepancy(
                        kind="kernel",
                        function_hex=function.to_hex(),
                        num_vars=function.num_vars,
                        engine=engine,
                        detail=(
                            "packed and reference verifiers disagree "
                            f"on chain {index}"
                        ),
                    )
                )
            elif index == 0 and chain_all_sat(chain) != chain_all_sat_ref(
                chain
            ):
                report.discrepancies.append(
                    Discrepancy(
                        kind="kernel",
                        function_hex=function.to_hex(),
                        num_vars=function.num_vars,
                        engine=engine,
                        detail=(
                            "packed and reference AllSAT cube sets "
                            "differ on chain 0"
                        ),
                    )
                )

    def _check_optimality(self, function, exact_results, report) -> None:
        """Exact engines must agree on the optimal gate count."""
        if len(exact_results) < 2:
            return
        baseline_name, baseline = exact_results[0]
        for name, result in exact_results[1:]:
            if result.num_gates != baseline.num_gates:
                report.discrepancies.append(
                    Discrepancy(
                        kind="optimality",
                        function_hex=function.to_hex(),
                        num_vars=function.num_vars,
                        engine=name,
                        detail=(
                            f"{name} claims {result.num_gates} gates, "
                            f"{baseline_name} claims "
                            f"{baseline.num_gates}"
                        ),
                    )
                )

    def _check_store_roundtrip(self, function, exact_result, report) -> None:
        """put → lookup of another orbit member → re-simulate."""
        engine, result = exact_result
        try:
            written = self._store.put(function, result, engine=engine)
        except Exception as exc:
            report.discrepancies.append(
                Discrepancy(
                    kind="store",
                    function_hex=function.to_hex(),
                    num_vars=function.num_vars,
                    engine=engine,
                    detail=f"store.put raised {type(exc).__name__}: {exc}",
                )
            )
            return
        if not written:
            report.discrepancies.append(
                Discrepancy(
                    kind="store",
                    function_hex=function.to_hex(),
                    num_vars=function.num_vars,
                    engine=engine,
                    detail="store.put rejected a verified solution set",
                )
            )
            return
        member = _probe_transform(function).apply(function)
        served = self._store.lookup(member)
        if served is None:
            report.discrepancies.append(
                Discrepancy(
                    kind="store",
                    function_hex=function.to_hex(),
                    num_vars=function.num_vars,
                    engine=engine,
                    detail=(
                        "lookup missed orbit member "
                        f"0x{member.to_hex()} right after put"
                    ),
                )
            )
            return
        if served.num_gates != result.num_gates:
            report.discrepancies.append(
                Discrepancy(
                    kind="store",
                    function_hex=function.to_hex(),
                    num_vars=function.num_vars,
                    engine=engine,
                    detail=(
                        f"store serves {served.num_gates} gates, engine "
                        f"found {result.num_gates}"
                    ),
                )
            )
        for index, chain in enumerate(served.chains[: self._max_chains]):
            if chain.simulate_output() != member:
                report.discrepancies.append(
                    Discrepancy(
                        kind="store",
                        function_hex=function.to_hex(),
                        num_vars=function.num_vars,
                        engine=engine,
                        detail=(
                            f"served chain {index} does not realise "
                            f"orbit member 0x{member.to_hex()}"
                        ),
                    )
                )
