"""The ``repro-fuzz`` command line (also ``python -m repro.verify.cli``).

Examples::

    repro-fuzz --budget 60s --seed 0                  # all engines
    repro-fuzz --count 20 --engines stp,fen --vars 3,4
    repro-fuzz --budget 2m --report fuzz.jsonl --corpus tests/corpus
    repro-fuzz --count 5 --inject-fault crash         # fuzz the runtime

Exit codes: 0 = campaign completed with zero discrepancies, 1 = at
least one discrepancy was found (reproducers are in the report and,
with ``--corpus``, checked into the corpus directory), 65 = bad
arguments.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..engine import engine_names
from ..runtime.faults import FaultPlan, FaultSpec
from .corpus import load_corpus
from .fuzz import FuzzConfig, run_fuzz
from .generators import strategy_names

EXIT_OK = 0
EXIT_DISCREPANCY = 1
EXIT_BAD_INPUT = 65

_BUDGET_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0}


def parse_budget(text: str) -> float:
    """Parse ``"120"``, ``"120s"``, ``"2m"``, or ``"1h"`` into seconds."""
    cleaned = text.strip().lower()
    unit = 1.0
    if cleaned and cleaned[-1] in _BUDGET_UNITS:
        unit = _BUDGET_UNITS[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        seconds = float(cleaned) * unit
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad budget {text!r}; expected e.g. 120, 120s, 2m, 1h"
        ) from None
    if seconds <= 0:
        raise argparse.ArgumentTypeError("budget must be positive")
    return seconds


def _csv(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _int_csv(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in _csv(text))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad integer list {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential fuzzing of the synthesis engines, "
        "kernels, and chain store against independent oracles.",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="master seed; the whole campaign is a pure function of it",
    )
    parser.add_argument(
        "--budget",
        type=parse_budget,
        default=None,
        metavar="TIME",
        help="wall-clock budget, e.g. 60s, 2m (default: one sweep)",
    )
    parser.add_argument(
        "--count", type=int, default=None, help="instance cap"
    )
    parser.add_argument(
        "--vars",
        type=_int_csv,
        default=(2, 3, 4),
        metavar="N,N,...",
        help="arities to fuzz (default: 2,3,4)",
    )
    parser.add_argument(
        "--strategies",
        type=_csv,
        default=(),
        metavar="A,B,...",
        help=f"generator subset (default: all of {','.join(strategy_names())})",
    )
    parser.add_argument(
        "--engines",
        type=_csv,
        default=(),
        metavar="A,B,...",
        help="engine subset (default: every registered engine)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-engine budget per instance in seconds (default: 5)",
    )
    parser.add_argument(
        "--max-solutions", type=int, default=16, help="solution cap"
    )
    parser.add_argument(
        "--report",
        type=str,
        default=None,
        metavar="PATH",
        help="stream a JSONL report (one line per instance + summary)",
    )
    parser.add_argument(
        "--corpus",
        type=str,
        default=None,
        metavar="DIR",
        help="corpus directory: mutation seeds are loaded from it and "
        "shrunk reproducers are written back to it",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failing functions without minimizing them",
    )
    parser.add_argument(
        "--no-store-check",
        action="store_true",
        help="skip the chain-store round-trip oracle",
    )
    parser.add_argument(
        "--no-kernel-check",
        action="store_true",
        help="skip the packed-vs-reference kernel oracle",
    )
    parser.add_argument(
        "--inject-fault",
        choices=("hang", "crash", "hard-crash", "corrupt", "timeout"),
        default=None,
        help="inject this fault into every attempt (wildcard fault "
        "plan) — fuzzes the fault-tolerance machinery itself",
    )
    parser.add_argument(
        "--inject-engine",
        type=str,
        default=None,
        help="restrict --inject-fault to one engine",
    )
    parser.add_argument(
        "--inject-times",
        type=int,
        default=None,
        help="burn the injected fault out after N attempts "
        "(default: every attempt)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-instance progress lines",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    known = engine_names()
    for name in args.engines:
        if name not in known:
            print(
                f"error: unknown engine {name!r}; "
                f"available: {', '.join(known)}",
                file=sys.stderr,
            )
            return EXIT_BAD_INPUT
    for name in args.strategies:
        if name not in strategy_names():
            print(
                f"error: unknown strategy {name!r}; "
                f"available: {', '.join(strategy_names())}",
                file=sys.stderr,
            )
            return EXIT_BAD_INPUT

    fault_plan = None
    if args.inject_fault:
        fault_plan = FaultPlan(
            {
                FaultPlan.WILDCARD: FaultSpec(
                    kind=args.inject_fault,
                    engine=args.inject_engine,
                    times=args.inject_times,
                )
            }
        )

    seed_functions = ()
    if args.corpus:
        try:
            seed_functions = tuple(
                entry.function() for entry in load_corpus(args.corpus)
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_BAD_INPUT

    config = FuzzConfig(
        seed=args.seed,
        budget_seconds=args.budget,
        count=args.count,
        num_vars=args.vars,
        strategies=args.strategies,
        engines=args.engines,
        timeout_per_engine=args.timeout,
        max_solutions=args.max_solutions,
        shrink=not args.no_shrink,
        check_store=not args.no_store_check,
        check_kernels=not args.no_kernel_check,
        fault_plan=fault_plan,
    )
    report = run_fuzz(
        config,
        report_path=args.report,
        corpus_dir=args.corpus,
        seed_functions=seed_functions,
        log=None if args.quiet else lambda line: print(line, file=sys.stderr),
    )

    statuses = " ".join(
        f"{status}={count}"
        for status, count in sorted(report.status_counts.items())
    )
    print(
        f"fuzz seed={report.seed}: {report.instances} instance(s) in "
        f"{report.elapsed:.1f}s, {len(report.discrepancies)} "
        f"discrepancy(ies) [{statuses}]"
    )
    for shrunk in report.shrunk:
        print(
            f"reproducer: 0x{shrunk.minimized.to_hex()} "
            f"({shrunk.minimized.num_vars} vars, shrunk from "
            f"0x{shrunk.original.to_hex()}/{shrunk.original.num_vars})"
        )
    return EXIT_OK if report.ok else EXIT_DISCREPANCY


if __name__ == "__main__":
    raise SystemExit(main())
