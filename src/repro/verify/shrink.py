"""Automatic minimization of failing functions.

A fuzzer's raw counterexample is usually a dense 4-input table that
tells a human nothing.  :func:`shrink_function` greedily reduces it
while a caller-supplied predicate keeps reporting failure, using three
move families in decreasing order of payoff:

* dropping variables the function does not depend on;
* cofactoring a variable to a constant and removing it
  (``TruthTable.restrict``), which halves the table;
* clearing single onset bits, driving the table toward constant 0.

A candidate is accepted only when it is strictly simpler — fewer
variables, then fewer onset minterms, then a smaller bit pattern — so
the loop terminates at a local minimum: every single remaining move
repairs the failure.  The result is the minimal reproducer checked
into the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..truthtable.table import TruthTable

__all__ = ["ShrinkResult", "shrink_function"]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    original: TruthTable
    minimized: TruthTable
    evaluations: int
    trail: tuple[str, ...]

    @property
    def reduced(self) -> bool:
        """True when any move was accepted."""
        return bool(self.trail)

    def to_record(self) -> dict:
        return {
            "original": self.original.to_hex(),
            "original_vars": self.original.num_vars,
            "minimized": self.minimized.to_hex(),
            "minimized_vars": self.minimized.num_vars,
            "evaluations": self.evaluations,
            "trail": list(self.trail),
        }


def _simplicity(table: TruthTable) -> tuple[int, int, int]:
    """Strictly decreasing along accepted moves — the termination
    argument."""
    return (table.num_vars, table.count_ones(), table.bits)


def _moves(table: TruthTable) -> Iterator[tuple[str, TruthTable]]:
    n = table.num_vars
    if n > 1:
        for var in range(n):
            if not table.depends_on(var):
                yield f"drop vacuous x{var}", table.remove_vacuous_variable(
                    var
                )
        for var in range(n):
            for value in (0, 1):
                yield (
                    f"restrict x{var}={value}",
                    table.restrict(var, value),
                )
    for row in table.onset():
        yield f"clear row {row}", TruthTable(
            table.bits & ~(1 << row), n
        )


def shrink_function(
    function: TruthTable,
    still_fails: Callable[[TruthTable], bool],
    *,
    max_evaluations: int = 500,
) -> ShrinkResult:
    """Minimize ``function`` while ``still_fails`` keeps returning True.

    ``still_fails`` is typically "the differential harness still
    reports a discrepancy on this table".  It is called once up front
    (a non-failing input is a usage error) and then once per candidate,
    up to ``max_evaluations`` times in total.
    """
    evaluations = 1
    if not still_fails(function):
        raise ValueError(
            "shrink_function needs a failing input: still_fails() "
            f"returned False for 0x{function.to_hex()}"
        )
    current = function
    trail: list[str] = []
    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        for description, candidate in _moves(current):
            if _simplicity(candidate) >= _simplicity(current):
                continue
            if evaluations >= max_evaluations:
                break
            evaluations += 1
            if still_fails(candidate):
                current = candidate
                trail.append(
                    f"{description} -> 0x{candidate.to_hex()}"
                    f"/{candidate.num_vars}"
                )
                improved = True
                break
    return ShrinkResult(
        original=function,
        minimized=current,
        evaluations=evaluations,
        trail=tuple(trail),
    )
