"""On-disk corpus of fuzz failures and regression seeds.

Every function that ever broke a code path — plus a handful of
hand-picked seeds — lives as one small JSON file under
``tests/corpus/``.  The corpus is consumed three ways:

* ``tests/test_corpus_replay.py`` replays every entry through the
  differential harness as an ordinary tier-1 test, so a past failure
  can never silently return;
* the fuzzer's ``mutation`` strategy draws from corpus functions, so
  new fuzzing radiates outward from historically fragile inputs;
* ``repro-fuzz`` writes a new entry (shrunk reproducer plus
  provenance) for each fresh discrepancy it finds.

Entries are deliberately tiny and diff-friendly — one function, its
arity, and provenance — so checking one in is a one-file PR.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..truthtable.table import TruthTable, from_hex

__all__ = [
    "CORPUS_VERSION",
    "CorpusEntry",
    "load_corpus",
    "save_entry",
    "default_corpus_dir",
]

CORPUS_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus function with its provenance.

    ``kind`` is ``"seed"`` for hand-picked regression anchors and
    ``"discrepancy"`` for minimized fuzz failures.
    """

    name: str
    hex: str
    num_vars: int
    kind: str = "seed"
    description: str = ""
    engines: tuple[str, ...] = ()
    origin: str = ""
    trail: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("corpus entries need a name")
        if self.kind not in ("seed", "discrepancy"):
            raise ValueError(f"unknown corpus entry kind {self.kind!r}")
        self.function()  # validates hex against num_vars

    def function(self) -> TruthTable:
        """The entry's function as a truth table."""
        return from_hex(self.hex, self.num_vars)

    def to_record(self) -> dict:
        record = {
            "version": CORPUS_VERSION,
            "name": self.name,
            "hex": self.hex,
            "num_vars": self.num_vars,
            "kind": self.kind,
            "description": self.description,
            "origin": self.origin,
        }
        if self.engines:
            record["engines"] = list(self.engines)
        if self.trail:
            record["trail"] = list(self.trail)
        return record

    @staticmethod
    def from_record(record: dict) -> "CorpusEntry":
        if not isinstance(record, dict):
            raise ValueError(
                f"corpus record must be a dict, got {type(record).__name__}"
            )
        version = record.get("version")
        if version != CORPUS_VERSION:
            raise ValueError(f"unsupported corpus version {version!r}")
        try:
            return CorpusEntry(
                name=str(record["name"]),
                hex=str(record["hex"]),
                num_vars=int(record["num_vars"]),
                kind=str(record.get("kind", "seed")),
                description=str(record.get("description", "")),
                engines=tuple(record.get("engines", ())),
                origin=str(record.get("origin", "")),
                trail=tuple(record.get("trail", ())),
            )
        except KeyError as exc:
            raise ValueError(f"corpus record missing field {exc}") from None


def default_corpus_dir() -> Path:
    """The repository's ``tests/corpus`` directory.

    Resolved relative to this source tree (editable installs, CI);
    falls back to ``./tests/corpus`` under the working directory for
    site-packages installs run from a checkout.
    """
    in_tree = Path(__file__).resolve().parents[3] / "tests" / "corpus"
    if in_tree.is_dir():
        return in_tree
    return Path.cwd() / "tests" / "corpus"


def load_corpus(directory: str | os.PathLike) -> list[CorpusEntry]:
    """Load every ``*.json`` entry, sorted by file name.

    A malformed file raises — a broken corpus should fail loudly in
    CI, not silently shrink the replay suite.
    """
    path = Path(directory)
    entries: list[CorpusEntry] = []
    if not path.is_dir():
        return entries
    for file in sorted(path.glob("*.json")):
        try:
            record = json.loads(file.read_text())
            entries.append(CorpusEntry.from_record(record))
        except (ValueError, TypeError) as exc:
            raise ValueError(f"corrupt corpus entry {file}: {exc}") from exc
    return entries


def save_entry(directory: str | os.PathLike, entry: CorpusEntry) -> Path:
    """Write one entry as ``<name>.json``; returns the path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    file = path / f"{entry.name}.json"
    file.write_text(json.dumps(entry.to_record(), indent=2) + "\n")
    return file
