"""Differential verification and fuzzing.

The repository's standing correctness gate: stratified function
generators (:mod:`~repro.verify.generators`), a cross-engine
differential oracle (:mod:`~repro.verify.oracle`), an automatic
failure shrinker (:mod:`~repro.verify.shrink`), the on-disk failure
corpus (:mod:`~repro.verify.corpus`), and budgeted fuzz campaigns
(:mod:`~repro.verify.fuzz`) behind the ``repro-fuzz`` CLI.

See ``TESTING.md`` for how the pieces fit the test tiers.
"""

from .corpus import (
    CORPUS_VERSION,
    CorpusEntry,
    default_corpus_dir,
    load_corpus,
    save_entry,
)
from .fuzz import FuzzConfig, FuzzReport, run_fuzz
from .generators import (
    DEFAULT_SEED_FUNCTIONS,
    MULTI_PATTERNS,
    STRATEGIES,
    FunctionGenerator,
    MultiOutputGenerator,
    multi_pattern_names,
    strategy_names,
)
from .oracle import (
    DifferentialHarness,
    DifferentialReport,
    Discrepancy,
    EngineObservation,
)
from .shrink import ShrinkResult, shrink_function

__all__ = [
    "CORPUS_VERSION",
    "CorpusEntry",
    "default_corpus_dir",
    "load_corpus",
    "save_entry",
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
    "DEFAULT_SEED_FUNCTIONS",
    "MULTI_PATTERNS",
    "STRATEGIES",
    "FunctionGenerator",
    "MultiOutputGenerator",
    "multi_pattern_names",
    "strategy_names",
    "DifferentialHarness",
    "DifferentialReport",
    "Discrepancy",
    "EngineObservation",
    "ShrinkResult",
    "shrink_function",
]
