"""Budgeted differential fuzzing campaigns.

One :func:`run_fuzz` call drives the stratified generators
(:mod:`repro.verify.generators`) through the differential oracle
(:mod:`repro.verify.oracle`) under a wall-clock and/or instance-count
budget, shrinks every fresh discrepancy to a minimal reproducer
(:mod:`repro.verify.shrink`), and optionally checks the reproducer
into the corpus (:mod:`repro.verify.corpus`).

Everything is a pure function of :attr:`FuzzConfig.seed`: the
generators own all randomness, the store probe derives from function
bits, and the JSONL report records the seed so any campaign — local
or the nightly CI job — can be replayed bit-for-bit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.spec import Deadline
from ..runtime.faults import FaultPlan
from ..truthtable.table import TruthTable
from .corpus import CorpusEntry, save_entry
from .generators import (
    FunctionGenerator,
    MultiOutputGenerator,
    strategy_names,
)
from .oracle import DifferentialHarness, DifferentialReport, Discrepancy
from .shrink import ShrinkResult, shrink_function

__all__ = ["FuzzConfig", "FuzzReport", "run_fuzz"]


@dataclass
class FuzzConfig:
    """One fuzz campaign's knobs.

    ``budget_seconds`` and ``count`` may be combined; the campaign
    stops at whichever limit is hit first.  With neither set, a single
    sweep of ``len(strategies)`` instances runs (one per stratum).
    """

    seed: int = 0
    budget_seconds: float | None = None
    count: int | None = None
    num_vars: tuple[int, ...] = (2, 3, 4)
    strategies: tuple[str, ...] = ()
    engines: tuple = ()
    timeout_per_engine: float = 5.0
    max_solutions: int = 16
    shrink: bool = True
    check_store: bool = True
    check_kernels: bool = True
    fault_plan: FaultPlan | None = None
    max_shrink_evaluations: int = 200
    #: Every Nth instance is a multi-output vector run through
    #: :meth:`DifferentialHarness.check_multi` (0 disables).
    multi_every: int = 0
    multi_num_outputs: tuple[int, ...] = (2, 3)

    def effective_count(self) -> int | None:
        if self.count is not None:
            return self.count
        if self.budget_seconds is not None:
            return None  # budget-bounded
        return len(self.strategies or strategy_names())


@dataclass
class FuzzReport:
    """Aggregate outcome of a campaign."""

    seed: int
    instances: int = 0
    elapsed: float = 0.0
    discrepancies: list[Discrepancy] = field(default_factory=list)
    shrunk: list[ShrinkResult] = field(default_factory=list)
    status_counts: dict[str, int] = field(default_factory=dict)
    strategy_counts: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def to_record(self) -> dict:
        return {
            "type": "summary",
            "seed": self.seed,
            "instances": self.instances,
            "elapsed": round(self.elapsed, 3),
            "num_discrepancies": len(self.discrepancies),
            "discrepancies": [d.to_record() for d in self.discrepancies],
            "shrunk": [s.to_record() for s in self.shrunk],
            "status_counts": dict(self.status_counts),
            "strategy_counts": dict(self.strategy_counts),
        }


def _count(bucket: dict[str, int], key: str) -> None:
    bucket[key] = bucket.get(key, 0) + 1


def run_fuzz(
    config: FuzzConfig,
    *,
    report_path: str | os.PathLike | None = None,
    corpus_dir: str | os.PathLike | None = None,
    seed_functions: Sequence[TruthTable] = (),
    log: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run one campaign; returns the aggregate report.

    ``report_path`` streams one JSON line per instance (plus a final
    summary line) as the campaign runs, so a killed job still leaves a
    usable report.  ``corpus_dir`` receives one entry per shrunk
    discrepancy, named ``fuzz-<seed>-<instance>``.
    """
    generator = FunctionGenerator(
        seed=config.seed,
        num_vars=config.num_vars,
        strategies=config.strategies or None,
        seed_functions=seed_functions,
    )
    multi_generator = None
    if config.multi_every > 0:
        multi_generator = MultiOutputGenerator(
            seed=config.seed,
            num_vars=config.num_vars,
            num_outputs=config.multi_num_outputs,
        )
    deadline = Deadline(config.budget_seconds)
    count = config.effective_count()
    report = FuzzReport(seed=config.seed)
    handle = open(report_path, "w") if report_path is not None else None

    def emit(record: dict) -> None:
        if handle is not None:
            handle.write(json.dumps(record) + "\n")
            handle.flush()

    try:
        with DifferentialHarness(
            config.engines or None,
            timeout=config.timeout_per_engine,
            max_solutions=config.max_solutions,
            check_kernels=config.check_kernels,
            check_store=config.check_store,
            fault_plan=config.fault_plan,
        ) as harness:
            index = 0
            while True:
                if count is not None and index >= count:
                    break
                if deadline.expired():
                    break
                is_multi = (
                    multi_generator is not None
                    and index % config.multi_every == config.multi_every - 1
                )
                if is_multi:
                    pattern, functions = multi_generator.generate()
                    strategy = f"multi:{pattern}"
                    function = functions[0]
                    instance = harness.check_multi(
                        functions, deadline=deadline
                    )
                else:
                    strategy, function = generator.generate()
                    instance = harness.check(function, deadline=deadline)
                report.instances += 1
                _count(report.strategy_counts, strategy)
                for observation in instance.observations:
                    _count(report.status_counts, observation.status)
                record = instance.to_record()
                record.update(
                    {"type": "instance", "index": index, "strategy": strategy}
                )
                if instance.discrepancies and is_multi:
                    # Vector discrepancies are recorded unshrunk: the
                    # single-function shrinker cannot preserve the
                    # sharing pattern that provoked them.
                    report.discrepancies.extend(instance.discrepancies)
                elif instance.discrepancies:
                    report.discrepancies.extend(instance.discrepancies)
                    shrunk = _handle_failure(
                        config,
                        harness,
                        function,
                        deadline,
                        index,
                        report,
                        corpus_dir,
                        instance,
                    )
                    if shrunk is not None:
                        record["shrunk"] = shrunk.to_record()
                    if log is not None:
                        log(
                            f"[{index}] 0x{function.to_hex()} "
                            f"({strategy}): "
                            f"{len(instance.discrepancies)} discrepancy(ies)"
                        )
                elif log is not None:
                    log(
                        f"[{index}] 0x{function.to_hex()} ({strategy}): ok"
                    )
                emit(record)
                index += 1
        report.elapsed = deadline.elapsed
        emit(report.to_record())
    finally:
        if handle is not None:
            handle.close()
    return report


def _handle_failure(
    config: FuzzConfig,
    harness: DifferentialHarness,
    function: TruthTable,
    deadline: Deadline,
    index: int,
    report: FuzzReport,
    corpus_dir,
    instance: DifferentialReport,
) -> ShrinkResult | None:
    """Shrink a failing function and record the reproducer."""
    if not config.shrink:
        return None

    def still_fails(candidate: TruthTable) -> bool:
        if deadline.expired():
            return False  # stop shrinking at the budget, keep best-so-far
        return bool(harness.check(candidate, deadline=deadline).discrepancies)

    try:
        shrunk = shrink_function(
            function,
            still_fails,
            max_evaluations=config.max_shrink_evaluations,
        )
    except ValueError:
        return None  # budget expired before the first re-check
    report.shrunk.append(shrunk)
    if corpus_dir is not None:
        entry = CorpusEntry(
            name=f"fuzz-{config.seed}-{index}",
            hex=shrunk.minimized.to_hex(),
            num_vars=shrunk.minimized.num_vars,
            kind="discrepancy",
            description=instance.discrepancies[0].detail,
            engines=tuple(
                sorted({d.engine for d in instance.discrepancies})
            ),
            origin=(
                f"repro-fuzz seed={config.seed} instance={index} "
                f"original=0x{function.to_hex()}/{function.num_vars}"
            ),
            trail=shrunk.trail,
        )
        save_entry(corpus_dir, entry)
    return shrunk
