"""Stratified function generators for differential fuzzing.

Uniform sampling over ``2**2**n`` truth tables almost never produces
the inputs that break exact synthesizers: constants, single literals,
functions with vacuous variables, orbit-extreme NPN members, or the
DSD shapes whose prime blocks drive the hierarchical engine.  Each
generator here targets one such stratum, and
:class:`FunctionGenerator` cycles through them deterministically so a
fuzz run with a fixed seed covers every stratum in a reproducible
order.

All randomness flows from one explicit :class:`random.Random` — no
generator touches the global RNG or the clock, so a failing function
can always be regenerated from ``(seed, index)`` alone.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Callable, Iterator, Sequence

from ..truthtable.dsd import DSDKind, dsd_kind
from ..truthtable.generate import random_fully_dsd, random_partially_dsd
from ..truthtable.npn import NPNTransform, npn_classes
from ..truthtable.table import TruthTable, constant, from_hex, projection

__all__ = [
    "STRATEGIES",
    "MULTI_PATTERNS",
    "DEFAULT_SEED_FUNCTIONS",
    "FunctionGenerator",
    "MultiOutputGenerator",
    "strategy_names",
    "multi_pattern_names",
]

#: Built-in mutation seeds: the paper's Example 7 function, 3-input
#: majority, and the two degenerate poles.
DEFAULT_SEED_FUNCTIONS: tuple[TruthTable, ...] = (
    from_hex("8ff8", 4),
    from_hex("e8", 3),
    constant(0, 3),
    projection(0, 3),
)


def _uniform(rng: random.Random, num_vars: int) -> TruthTable:
    """Uniform over all ``2**2**n`` tables."""
    return TruthTable(rng.getrandbits(1 << num_vars), num_vars)


@lru_cache(maxsize=8)
def _class_reps(num_vars: int) -> tuple[TruthTable, ...]:
    return tuple(npn_classes(num_vars))


def _random_transform(rng: random.Random, num_vars: int) -> NPNTransform:
    perm = list(range(num_vars))
    rng.shuffle(perm)
    return NPNTransform(
        tuple(perm),
        rng.getrandbits(num_vars) if num_vars else 0,
        bool(rng.getrandbits(1)),
    )


def _npn_stratified(rng: random.Random, num_vars: int) -> TruthTable:
    """Uniform over NPN *classes* (n <= 4), then a random orbit member.

    Uniform-over-functions sampling is dominated by the few huge
    orbits; stratifying by class reaches the rare small orbits (the
    symmetric and degenerate functions) every few draws.
    """
    if num_vars > 4:
        return _uniform(rng, num_vars)
    rep = rng.choice(_class_reps(num_vars))
    return _random_transform(rng, num_vars).apply(rep)


def _dsd_shaped(rng: random.Random, num_vars: int) -> TruthTable:
    """Fully or partially DSD-decomposable functions."""
    if num_vars < 2:
        return _uniform(rng, num_vars)
    if num_vars >= 4 and rng.getrandbits(1):
        return random_partially_dsd(num_vars, rng, prime_arity=3)
    return random_fully_dsd(num_vars, rng)


def _high_dont_care(rng: random.Random, num_vars: int) -> TruthTable:
    """Small-cone functions: most variables are unobservable on most
    rows, exercising the don't-care canonicalization and the
    factorization power-reduce paths.

    Either a small-support function padded with vacuous variables, or
    a mux between two small-support cofactors (one variable gates
    which small cone is observable).
    """
    if num_vars < 2:
        return _uniform(rng, num_vars)
    if rng.getrandbits(1):
        support = rng.randint(1, max(1, num_vars - 1))
        small = TruthTable(rng.getrandbits(1 << support), support)
        table = small.extend(num_vars)
        perm = list(range(num_vars))
        rng.shuffle(perm)
        return table.permute(perm)
    sel = rng.randrange(num_vars)
    cone = rng.randint(1, max(1, num_vars - 1))
    g = TruthTable(rng.getrandbits(1 << cone), cone).extend(num_vars)
    h = TruthTable(rng.getrandbits(1 << cone), cone).extend(num_vars)
    s = projection(sel, num_vars)
    return (s & g) | (~s & h)


def _degenerate(rng: random.Random, num_vars: int) -> TruthTable:
    """Constants, literals, and near-constant tables.

    The inputs no random sweep ever lands on, and exactly the ones
    whose zero-gate chains exercised the CONST0 output semantics.
    """
    kind = rng.randrange(4)
    if kind == 0:
        return constant(rng.getrandbits(1), num_vars)
    if kind == 1 and num_vars:
        return projection(
            rng.randrange(num_vars), num_vars, bool(rng.getrandbits(1))
        )
    rows = 1 << num_vars
    base = constant(rng.getrandbits(1), num_vars)
    bits = base.bits
    for _ in range(rng.randint(1, min(2, rows))):
        bits ^= 1 << rng.randrange(rows)
    return TruthTable(bits, num_vars)


class FunctionGenerator:
    """Deterministic round-robin over the stratified generators.

    Parameters
    ----------
    seed:
        Master seed; the whole emitted sequence is a pure function of
        it (plus the configuration).
    num_vars:
        Arities to draw from, uniformly per instance.
    strategies:
        Strategy subset to cycle through (default: all, in registry
        order).
    seed_functions:
        Extra mutation seeds, e.g. loaded from the failure corpus;
        merged with :data:`DEFAULT_SEED_FUNCTIONS`.
    """

    def __init__(
        self,
        seed: int = 0,
        num_vars: Sequence[int] = (2, 3, 4),
        strategies: Sequence[str] | None = None,
        seed_functions: Sequence[TruthTable] = (),
    ) -> None:
        if not num_vars:
            raise ValueError("need at least one arity")
        names = tuple(strategies) if strategies else strategy_names()
        for name in names:
            if name not in STRATEGIES:
                raise ValueError(
                    f"unknown strategy {name!r}; "
                    f"available: {', '.join(strategy_names())}"
                )
        self._strategies = names
        self._num_vars = tuple(num_vars)
        self._rng = random.Random(seed)
        self._seeds = tuple(seed_functions) + DEFAULT_SEED_FUNCTIONS
        self._index = 0

    def _mutate(self, rng: random.Random) -> TruthTable:
        """Mutate a corpus seed: bit flips or a random NPN transform."""
        table = rng.choice(self._seeds)
        if rng.getrandbits(1):
            return _random_transform(rng, table.num_vars).apply(table)
        bits = table.bits
        for _ in range(rng.randint(1, 3)):
            bits ^= 1 << rng.randrange(table.num_rows)
        return TruthTable(bits, table.num_vars)

    def generate(self) -> tuple[str, TruthTable]:
        """The next ``(strategy, function)`` pair."""
        strategy = self._strategies[self._index % len(self._strategies)]
        self._index += 1
        rng = self._rng
        if strategy == "mutation":
            return strategy, self._mutate(rng)
        num_vars = rng.choice(self._num_vars)
        return strategy, STRATEGIES[strategy](rng, num_vars)

    def __iter__(self) -> Iterator[tuple[str, TruthTable]]:
        while True:
            yield self.generate()


#: Multi-output sharing patterns the vector generator cycles through.
#: Each targets a distinct decompose-and-share code path: unrelated
#: outputs (no sharing), exact duplicates and complements (zero-cost
#: merges), NPN-related outputs (sharing after transform), and
#: near-miss mutations (almost-shareable cones).
MULTI_PATTERNS: tuple[str, ...] = (
    "independent",
    "duplicate",
    "complement",
    "related",
    "mutated",
)


def multi_pattern_names() -> tuple[str, ...]:
    """All multi-output pattern names, registry order."""
    return MULTI_PATTERNS


class MultiOutputGenerator:
    """Deterministic generator of multi-output function *vectors*.

    Every output in a vector shares one input space (same ``num_vars``)
    — the shape a multi-output :class:`~repro.core.spec.SynthesisSpec`
    requires.  Patterns cycle round-robin, and the base functions are
    drawn from the same stratified :data:`STRATEGIES` the single-output
    generator uses, so each vector stresses both a sharing pattern and
    a function stratum.
    """

    def __init__(
        self,
        seed: int = 0,
        num_vars: Sequence[int] = (2, 3, 4),
        num_outputs: Sequence[int] = (2, 3),
        strategies: Sequence[str] | None = None,
    ) -> None:
        if not num_vars:
            raise ValueError("need at least one arity")
        if not num_outputs or min(num_outputs) < 1:
            raise ValueError("need at least one output count >= 1")
        names = tuple(strategies) if strategies else tuple(
            n for n in strategy_names() if n != "mutation"
        )
        for name in names:
            if name not in STRATEGIES or STRATEGIES[name] is None:
                raise ValueError(f"unknown strategy {name!r}")
        self._strategies = names
        self._num_vars = tuple(num_vars)
        self._num_outputs = tuple(num_outputs)
        self._rng = random.Random(seed)
        self._index = 0

    def _draw(self, num_vars: int) -> TruthTable:
        strategy = self._rng.choice(self._strategies)
        return STRATEGIES[strategy](self._rng, num_vars)

    def generate(self) -> tuple[str, tuple[TruthTable, ...]]:
        """The next ``(pattern, functions)`` pair."""
        pattern = MULTI_PATTERNS[self._index % len(MULTI_PATTERNS)]
        self._index += 1
        rng = self._rng
        n = rng.choice(self._num_vars)
        k = rng.choice(self._num_outputs)
        base = self._draw(n)
        outputs = [base]
        while len(outputs) < k:
            if pattern == "independent":
                outputs.append(self._draw(n))
            elif pattern == "duplicate":
                outputs.append(base)
            elif pattern == "complement":
                outputs.append(~outputs[-1])
            elif pattern == "related":
                outputs.append(_random_transform(rng, n).apply(base))
            else:  # mutated: flip a few rows of the previous output
                bits = outputs[-1].bits
                for _ in range(rng.randint(1, 3)):
                    bits ^= 1 << rng.randrange(1 << n)
                outputs.append(TruthTable(bits, n))
        return pattern, tuple(outputs)

    def __iter__(self) -> Iterator[tuple[str, tuple[TruthTable, ...]]]:
        while True:
            yield self.generate()


#: Strategy registry; ``"mutation"`` is dispatched by the generator
#: itself because it needs the seed-function pool.
STRATEGIES: dict[str, Callable[[random.Random, int], TruthTable]] = {
    "uniform": _uniform,
    "npn": _npn_stratified,
    "dsd": _dsd_shaped,
    "dontcare": _high_dont_care,
    "degenerate": _degenerate,
    "mutation": None,  # type: ignore[dict-item]  — see FunctionGenerator
}


def strategy_names() -> tuple[str, ...]:
    """All strategy names, registry order."""
    return tuple(STRATEGIES)


def classify_emits_dsd(table: TruthTable) -> bool:
    """True when the DSD classifier agrees the table is decomposable
    (used by the generator self-tests)."""
    return dsd_kind(table) in (DSDKind.FULL, DSDKind.PARTIAL)
