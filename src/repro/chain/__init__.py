"""Boolean chains (multi-level 2-LUT networks) and cost models."""

from .chain import BooleanChain, Gate
from .export import chain_to_expression, chain_to_verilog
from .transform import (
    SharedChainBuilder,
    extract_output_cone,
    merge_chains_shared,
    npn_transform_chain,
    npn_transform_chain_multi,
)
from .costs import (
    COST_MODELS,
    DEFAULT_OP_WEIGHTS,
    depth,
    fanout_cost,
    gate_count,
    inverter_free_cost,
    rank_solutions,
    select_best,
    weighted_op_cost,
)

__all__ = [
    "BooleanChain",
    "Gate",
    "chain_to_expression",
    "chain_to_verilog",
    "SharedChainBuilder",
    "extract_output_cone",
    "merge_chains_shared",
    "npn_transform_chain",
    "npn_transform_chain_multi",
    "COST_MODELS",
    "DEFAULT_OP_WEIGHTS",
    "depth",
    "fanout_cost",
    "gate_count",
    "inverter_free_cost",
    "rank_solutions",
    "select_best",
    "weighted_op_cost",
]
