"""Chain rewrites shared by the synthesizers.

Exact synthesis engines work over the *functional support* of the
target; these helpers shrink a function to its support and lift the
resulting chains back to the original input space.  The polarity
machinery rewrites chains by complementing internal signals — gate
codes absorb the complement, so every variant realises the same
function with the same gate count (a large part of the paper's
"all optimal solutions" sets).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

from ..truthtable.table import TruthTable
from .chain import BooleanChain

__all__ = [
    "shrink_to_support",
    "lift_chain",
    "trivial_chain",
    "flip_signal",
    "polarity_variants",
    "npn_transform_chain",
    "npn_transform_chain_multi",
    "merge_chains_shared",
    "SharedChainBuilder",
    "extract_output_cone",
]


def shrink_to_support(f: TruthTable) -> tuple[TruthTable, tuple[int, ...]]:
    """Project ``f`` onto its support; local variable ``i`` corresponds
    to original variable ``support[i]``."""
    support = f.support()
    local = f
    for v in reversed(range(f.num_vars)):
        if v not in support:
            local = local.remove_vacuous_variable(v)
    return local, support


def lift_chain(
    chain: BooleanChain, num_vars: int, support: tuple[int, ...]
) -> BooleanChain:
    """Re-express a support-local chain over the original inputs."""
    s = len(support)
    lifted = BooleanChain(num_vars)

    def remap(signal: int) -> int:
        if signal == BooleanChain.CONST0:
            return signal
        if signal < s:
            return support[signal]
        return num_vars + (signal - s)

    for gate in chain.gates:
        lifted.add_gate(gate.op, tuple(remap(f) for f in gate.fanins))
    for signal, complemented in chain.outputs:
        lifted.set_output(remap(signal), complemented)
    return lifted


def trivial_chain(f: TruthTable) -> BooleanChain | None:
    """Zero-gate realisations: constants and (inverted) projections."""
    n = f.num_vars
    support = f.support()
    if not support:
        chain = BooleanChain(n)
        chain.set_output(BooleanChain.CONST0, complemented=bool(f.bits & 1))
        return chain
    if len(support) == 1:
        var = support[0]
        chain = BooleanChain(n)
        complemented = f.value(0) == 1
        chain.set_output(var, complemented)
        return chain
    return None


def _flip_code_input(code: int, arity: int, position: int) -> int:
    """Gate code with local input ``position`` complemented."""
    out = 0
    for row in range(1 << arity):
        if (code >> (row ^ (1 << position))) & 1:
            out |= 1 << row
    return out


def flip_signal(chain: BooleanChain, signal: int) -> BooleanChain:
    """Complement an internal signal, absorbing the inversion into the
    driving gate's code and every reader's code — the chain's outputs
    are unchanged."""
    if chain.is_input(signal):
        raise ValueError("primary inputs cannot be flipped")
    flipped = BooleanChain(chain.num_inputs)
    for i, gate in enumerate(chain.gates):
        current = chain.num_inputs + i
        code = gate.op
        if current == signal:
            code ^= (1 << (1 << gate.arity)) - 1
        for pos, fanin in enumerate(gate.fanins):
            if fanin == signal:
                code = _flip_code_input(code, gate.arity, pos)
        flipped.add_gate(code, gate.fanins)
    for out_signal, complemented in chain.outputs:
        flipped.set_output(
            out_signal, complemented ^ (out_signal == signal)
        )
    return flipped


def npn_transform_chain(chain: BooleanChain, transform) -> BooleanChain:
    """A chain computing ``transform.apply(f)`` from one computing ``f``.

    ``g(y) = f(x) ^ out`` with ``x_i = y_{perm[i]} ^ flips_i``, so the
    rewrite permutes the input signals, absorbs each input complement
    into the reading gates' codes (and the output flag for direct
    input outputs), and XORs the output complement flag.  Gate count is
    unchanged, making this the bijection that maps the optimal solution
    set of an NPN class representative onto any orbit member's.
    """
    n = chain.num_inputs
    perm = transform.perm
    flips = transform.input_flips
    if len(perm) != n:
        raise ValueError("transform arity does not match chain")

    def remap(signal: int) -> int:
        if signal != BooleanChain.CONST0 and signal < n:
            return perm[signal]
        return signal

    rewritten = BooleanChain(n)
    for gate in chain.gates:
        code = gate.op
        for pos, fanin in enumerate(gate.fanins):
            if fanin != BooleanChain.CONST0 and fanin < n:
                if (flips >> fanin) & 1:
                    code = _flip_code_input(code, gate.arity, pos)
        rewritten.add_gate(code, tuple(remap(f) for f in gate.fanins))
    for signal, complemented in chain.outputs:
        flipped_input = (
            signal != BooleanChain.CONST0
            and signal < n
            and bool((flips >> signal) & 1)
        )
        rewritten.set_output(
            remap(signal),
            complemented ^ flipped_input ^ bool(transform.output_flip),
        )
    return rewritten


def npn_transform_chain_multi(chain: BooleanChain, transform) -> BooleanChain:
    """Rewrite a multi-output chain through a joint NPN transform.

    ``transform`` is a :class:`~repro.truthtable.npn.MultiNPNTransform`:
    one shared input permutation/negation plus a *per-output* negation
    flag.  Same absorption rules as :func:`npn_transform_chain` — the
    gate codes swallow the input complements, the output flags swallow
    the rest — so gate count is preserved and the rewrite is the
    bijection between a multi-output orbit member's solution set and
    the canonical representative's.
    """
    n = chain.num_inputs
    perm = transform.perm
    flips = transform.input_flips
    output_flips = transform.output_flips
    if len(perm) != n:
        raise ValueError("transform arity does not match chain")
    if len(output_flips) != len(chain.outputs):
        raise ValueError("transform output count does not match chain")

    def remap(signal: int) -> int:
        if signal != BooleanChain.CONST0 and signal < n:
            return perm[signal]
        return signal

    rewritten = BooleanChain(n)
    for gate in chain.gates:
        code = gate.op
        for pos, fanin in enumerate(gate.fanins):
            if fanin != BooleanChain.CONST0 and fanin < n:
                if (flips >> fanin) & 1:
                    code = _flip_code_input(code, gate.arity, pos)
        rewritten.add_gate(code, tuple(remap(f) for f in gate.fanins))
    for (signal, complemented), out_flip in zip(
        chain.outputs, output_flips
    ):
        flipped_input = (
            signal != BooleanChain.CONST0
            and signal < n
            and bool((flips >> signal) & 1)
        )
        rewritten.set_output(
            remap(signal), complemented ^ flipped_input ^ bool(out_flip)
        )
    return rewritten


def _merge_one(
    merged: BooleanChain,
    chain: BooleanChain,
    gate_index: dict[tuple[int, tuple[int, ...]], int],
    *,
    commit: bool,
) -> int:
    """Map ``chain``'s gates into ``merged``, sharing structurally
    identical gates; returns how many *new* gates the chain needs.

    With ``commit=False`` nothing is added — the count is the
    sharing-aware cost a candidate chain would incur, which the
    decompose-and-share merger minimizes over each output's optimal
    solution set.
    """
    n = merged.num_inputs
    mapping: dict[int, int] = {i: i for i in range(n)}
    added = 0
    staged: dict[tuple[int, tuple[int, ...]], int] = {}
    next_signal = merged.num_signals
    for gi, gate in enumerate(chain.gates):
        fanins = tuple(mapping[f] for f in gate.fanins)
        key = (gate.op, fanins)
        signal = gate_index.get(key)
        if signal is None:
            signal = staged.get(key)
        if signal is None:
            if commit:
                signal = merged.add_gate(gate.op, fanins)
                gate_index[key] = signal
            else:
                signal = next_signal
                staged[key] = signal
                next_signal += 1
            added += 1
        mapping[n + gi] = signal
    if commit:
        for out_signal, complemented in chain.outputs:
            merged.set_output(
                out_signal
                if out_signal == BooleanChain.CONST0
                else mapping[out_signal],
                complemented,
            )
    return added


class SharedChainBuilder:
    """Incrementally fuse single-output chains into one multi-output
    chain with structural gate sharing.

    Gate ``(op, fanins)`` pairs already present in the merged prefix
    are reused rather than duplicated, so common subexpressions across
    outputs are built once — the "shared interior gates" a
    multi-output spec asks for.  :meth:`cost` prices a candidate
    without committing it, which lets a caller pick, from each
    output's optimal-solution set, the chain that shares the most
    logic with what is already merged.
    """

    def __init__(self, num_inputs: int) -> None:
        self.chain = BooleanChain(num_inputs)
        self._index: dict[tuple[int, tuple[int, ...]], int] = {}

    def cost(self, chain: BooleanChain) -> int:
        """New gates ``chain`` would add after sharing (no commit)."""
        return _merge_one(self.chain, chain, self._index, commit=False)

    def append(self, chain: BooleanChain) -> int:
        """Merge ``chain`` in; its outputs append to the merged chain.

        Returns the number of gates actually added.
        """
        if chain.num_inputs != self.chain.num_inputs:
            raise ValueError("chains must share one input space")
        return _merge_one(self.chain, chain, self._index, commit=True)


def merge_chains_shared(
    chains: Sequence[BooleanChain],
) -> BooleanChain:
    """Fuse single-output chains into one multi-output chain, sharing
    structurally identical gates (see :class:`SharedChainBuilder`).

    All chains must read the same primary inputs; output ``j`` of the
    result is chain ``j``'s output.
    """
    chains = list(chains)
    if not chains:
        raise ValueError("need at least one chain")
    builder = SharedChainBuilder(chains[0].num_inputs)
    for chain in chains:
        builder.append(chain)
    return builder.chain


def extract_output_cone(chain: BooleanChain, index: int) -> BooleanChain:
    """The single-output chain computing output ``index`` alone.

    Gates outside the output's transitive fanin cone are dropped and
    the survivors renumbered, so splitting a shared multi-output chain
    yields per-output chains with no dead logic.
    """
    signal, complemented = chain.outputs[index]
    n = chain.num_inputs
    needed: set[int] = set()
    stack = [] if signal == BooleanChain.CONST0 else [signal]
    while stack:
        current = stack.pop()
        if current < n or current in needed:
            continue
        needed.add(current)
        stack.extend(chain.gate(current).fanins)
    single = BooleanChain(n)
    mapping: dict[int, int] = {i: i for i in range(n)}
    for gi, gate in enumerate(chain.gates):
        old = n + gi
        if old not in needed:
            continue
        mapping[old] = single.add_gate(
            gate.op, tuple(mapping[f] for f in gate.fanins)
        )
    single.set_output(
        signal if signal == BooleanChain.CONST0 else mapping[signal],
        complemented,
    )
    return single


def polarity_variants(
    chain: BooleanChain, max_variants: int | None = None
) -> Iterator[BooleanChain]:
    """All polarity rewrites of a chain (the chain itself first).

    Every subset of internal gate signals is complemented in turn;
    each variant computes the same outputs with the same gate count.
    Output-driving signals are included (the output complement flag
    absorbs them).  ``2**num_gates`` variants exist; cap with
    ``max_variants``.
    """
    signals = [
        chain.num_inputs + i for i in range(chain.num_gates)
    ]
    emitted = 0
    for size in range(len(signals) + 1):
        for subset in combinations(signals, size):
            variant = chain
            for signal in subset:
                variant = flip_signal(variant, signal)
            yield variant
            emitted += 1
            if max_variants is not None and emitted >= max_variants:
                return
