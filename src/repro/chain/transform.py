"""Chain rewrites shared by the synthesizers.

Exact synthesis engines work over the *functional support* of the
target; these helpers shrink a function to its support and lift the
resulting chains back to the original input space.  The polarity
machinery rewrites chains by complementing internal signals — gate
codes absorb the complement, so every variant realises the same
function with the same gate count (a large part of the paper's
"all optimal solutions" sets).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from ..truthtable.table import TruthTable
from .chain import BooleanChain

__all__ = [
    "shrink_to_support",
    "lift_chain",
    "trivial_chain",
    "flip_signal",
    "polarity_variants",
    "npn_transform_chain",
]


def shrink_to_support(f: TruthTable) -> tuple[TruthTable, tuple[int, ...]]:
    """Project ``f`` onto its support; local variable ``i`` corresponds
    to original variable ``support[i]``."""
    support = f.support()
    local = f
    for v in reversed(range(f.num_vars)):
        if v not in support:
            local = local.remove_vacuous_variable(v)
    return local, support


def lift_chain(
    chain: BooleanChain, num_vars: int, support: tuple[int, ...]
) -> BooleanChain:
    """Re-express a support-local chain over the original inputs."""
    s = len(support)
    lifted = BooleanChain(num_vars)

    def remap(signal: int) -> int:
        if signal == BooleanChain.CONST0:
            return signal
        if signal < s:
            return support[signal]
        return num_vars + (signal - s)

    for gate in chain.gates:
        lifted.add_gate(gate.op, tuple(remap(f) for f in gate.fanins))
    for signal, complemented in chain.outputs:
        lifted.set_output(remap(signal), complemented)
    return lifted


def trivial_chain(f: TruthTable) -> BooleanChain | None:
    """Zero-gate realisations: constants and (inverted) projections."""
    n = f.num_vars
    support = f.support()
    if not support:
        chain = BooleanChain(n)
        chain.set_output(BooleanChain.CONST0, complemented=bool(f.bits & 1))
        return chain
    if len(support) == 1:
        var = support[0]
        chain = BooleanChain(n)
        complemented = f.value(0) == 1
        chain.set_output(var, complemented)
        return chain
    return None


def _flip_code_input(code: int, arity: int, position: int) -> int:
    """Gate code with local input ``position`` complemented."""
    out = 0
    for row in range(1 << arity):
        if (code >> (row ^ (1 << position))) & 1:
            out |= 1 << row
    return out


def flip_signal(chain: BooleanChain, signal: int) -> BooleanChain:
    """Complement an internal signal, absorbing the inversion into the
    driving gate's code and every reader's code — the chain's outputs
    are unchanged."""
    if chain.is_input(signal):
        raise ValueError("primary inputs cannot be flipped")
    flipped = BooleanChain(chain.num_inputs)
    for i, gate in enumerate(chain.gates):
        current = chain.num_inputs + i
        code = gate.op
        if current == signal:
            code ^= (1 << (1 << gate.arity)) - 1
        for pos, fanin in enumerate(gate.fanins):
            if fanin == signal:
                code = _flip_code_input(code, gate.arity, pos)
        flipped.add_gate(code, gate.fanins)
    for out_signal, complemented in chain.outputs:
        flipped.set_output(
            out_signal, complemented ^ (out_signal == signal)
        )
    return flipped


def npn_transform_chain(chain: BooleanChain, transform) -> BooleanChain:
    """A chain computing ``transform.apply(f)`` from one computing ``f``.

    ``g(y) = f(x) ^ out`` with ``x_i = y_{perm[i]} ^ flips_i``, so the
    rewrite permutes the input signals, absorbs each input complement
    into the reading gates' codes (and the output flag for direct
    input outputs), and XORs the output complement flag.  Gate count is
    unchanged, making this the bijection that maps the optimal solution
    set of an NPN class representative onto any orbit member's.
    """
    n = chain.num_inputs
    perm = transform.perm
    flips = transform.input_flips
    if len(perm) != n:
        raise ValueError("transform arity does not match chain")

    def remap(signal: int) -> int:
        if signal != BooleanChain.CONST0 and signal < n:
            return perm[signal]
        return signal

    rewritten = BooleanChain(n)
    for gate in chain.gates:
        code = gate.op
        for pos, fanin in enumerate(gate.fanins):
            if fanin != BooleanChain.CONST0 and fanin < n:
                if (flips >> fanin) & 1:
                    code = _flip_code_input(code, gate.arity, pos)
        rewritten.add_gate(code, tuple(remap(f) for f in gate.fanins))
    for signal, complemented in chain.outputs:
        flipped_input = (
            signal != BooleanChain.CONST0
            and signal < n
            and bool((flips >> signal) & 1)
        )
        rewritten.set_output(
            remap(signal),
            complemented ^ flipped_input ^ bool(transform.output_flip),
        )
    return rewritten


def polarity_variants(
    chain: BooleanChain, max_variants: int | None = None
) -> Iterator[BooleanChain]:
    """All polarity rewrites of a chain (the chain itself first).

    Every subset of internal gate signals is complemented in turn;
    each variant computes the same outputs with the same gate count.
    Output-driving signals are included (the output complement flag
    absorbs them).  ``2**num_gates`` variants exist; cap with
    ``max_variants``.
    """
    signals = [
        chain.num_inputs + i for i in range(chain.num_gates)
    ]
    emitted = 0
    for size in range(len(signals) + 1):
        for subset in combinations(signals, size):
            variant = chain
            for signal in subset:
                variant = flip_signal(variant, signal)
            yield variant
            emitted += 1
            if max_variants is not None and emitted >= max_variants:
                return
