"""Boolean chains (Knuth, TAOCP 4A §7.2.2.2; paper Section II-B).

A Boolean chain is a compact DAG form of a multi-level logic network:
signals ``0 … n-1`` are the primary inputs, and each *step* ``n+i``
computes a ``k``-input operator over strictly earlier signals.  Outputs
point at a signal, optionally complemented.  Every step carries its
operator as a truth-table code — i.e. every gate is a ``k``-LUT, which
is exactly the solution format the paper's synthesizer emits ("all
solutions are expressed as 2-LUTs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..truthtable.operations import binary_op_name
from ..truthtable.table import TruthTable, constant, projection

__all__ = ["Gate", "BooleanChain"]


@dataclass(frozen=True)
class Gate:
    """One step of a chain.

    ``op`` is the truth-table code of the gate's local function: bit
    ``row`` of ``op`` is the output when ``row = Σ value(fanins[i]) << i``
    (``fanins[0]`` is the least significant local input).
    """

    op: int
    fanins: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.fanins) == 0:
            raise ValueError("gates need at least one fanin")
        if not 0 <= self.op < (1 << (1 << len(self.fanins))):
            raise ValueError(
                f"op code 0x{self.op:x} too wide for {len(self.fanins)} fanins"
            )

    @property
    def arity(self) -> int:
        """Number of fanins."""
        return len(self.fanins)

    def local_table(self) -> TruthTable:
        """The gate function as a ``arity``-variable truth table."""
        return TruthTable(self.op, self.arity)

    def describe(self) -> str:
        """Readable description, e.g. ``and(x0, x1)`` for 2-input gates."""
        args = ", ".join(f"s{f}" for f in self.fanins)
        if self.arity == 2:
            return f"{binary_op_name(self.op)}({args})"
        return f"lut<0x{self.op:x}>({args})"


class BooleanChain:
    """A Boolean chain over ``num_inputs`` primary inputs.

    Build incrementally with :meth:`add_gate` / :meth:`set_output`, or
    all at once via the constructor.  Chains are mutable while being
    built but the query API never mutates.
    """

    def __init__(
        self,
        num_inputs: int,
        gates: Iterable[Gate] = (),
        outputs: Iterable[tuple[int, bool]] = (),
    ) -> None:
        if num_inputs < 0:
            raise ValueError("num_inputs must be non-negative")
        self._num_inputs = num_inputs
        self._gates: list[Gate] = []
        self._outputs: list[tuple[int, bool]] = []
        for gate in gates:
            self.add_gate(gate.op, gate.fanins)
        for signal, complemented in outputs:
            self.set_output(signal, complemented)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_gate(self, op: int, fanins: Sequence[int]) -> int:
        """Append a gate; returns the new signal index."""
        index = self._num_inputs + len(self._gates)
        for f in fanins:
            if not 0 <= f < index:
                raise ValueError(
                    f"fanin {f} of new signal {index} must reference an "
                    "earlier signal"
                )
        self._gates.append(Gate(op, tuple(fanins)))
        return index

    #: Pseudo-signal for the constant-zero input (Knuth's ``x_0``).
    CONST0 = -1

    def set_output(self, signal: int, complemented: bool = False) -> None:
        """Declare an output pointing at ``signal``.

        ``signal == BooleanChain.CONST0`` yields constant 0 (or constant
        1 when complemented), mirroring Knuth's constant-zero input.
        """
        if signal != self.CONST0 and not 0 <= signal < self.num_signals:
            raise ValueError(f"output signal {signal} does not exist")
        self._outputs.append((signal, complemented))

    # ------------------------------------------------------------------
    # shape queries
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return self._num_inputs

    @property
    def num_gates(self) -> int:
        """Number of steps (internal gates)."""
        return len(self._gates)

    @property
    def num_signals(self) -> int:
        """Inputs plus gates."""
        return self._num_inputs + len(self._gates)

    @property
    def gates(self) -> tuple[Gate, ...]:
        """The steps, in topological order."""
        return tuple(self._gates)

    @property
    def outputs(self) -> tuple[tuple[int, bool], ...]:
        """Declared outputs as ``(signal, complemented)`` pairs."""
        return tuple(self._outputs)

    def gate(self, signal: int) -> Gate:
        """The gate driving a signal (signals below ``num_inputs`` raise)."""
        if signal < self._num_inputs:
            raise IndexError(f"signal {signal} is a primary input")
        return self._gates[signal - self._num_inputs]

    def is_input(self, signal: int) -> bool:
        """True when the signal is a primary input."""
        return signal < self._num_inputs

    def level(self, signal: int) -> int:
        """Logic depth of a signal (inputs are level 0)."""
        levels = self._levels()
        return levels[signal]

    def depth(self) -> int:
        """Largest output level."""
        if not self._outputs:
            raise ValueError("chain has no outputs")
        levels = self._levels()
        return max(
            (levels[s] if s != self.CONST0 else 0) for s, _ in self._outputs
        )

    def _levels(self) -> list[int]:
        levels = [0] * self.num_signals
        for i, gate in enumerate(self._gates):
            signal = self._num_inputs + i
            levels[signal] = 1 + max(levels[f] for f in gate.fanins)
        return levels

    def fanout_counts(self) -> list[int]:
        """Number of readers of each signal (outputs included)."""
        counts = [0] * self.num_signals
        for gate in self._gates:
            for f in gate.fanins:
                counts[f] += 1
        for signal, _ in self._outputs:
            if signal != self.CONST0:
                counts[signal] += 1
        return counts

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def simulate_signals(self) -> list[TruthTable]:
        """Truth table of every signal over the chain's inputs."""
        tables = [projection(v, self._num_inputs) for v in range(self._num_inputs)]
        for gate in self._gates:
            local = gate.local_table()
            tables.append(local.compose([tables[f] for f in gate.fanins]))
        return tables

    def simulate(self) -> list[TruthTable]:
        """Truth table of every declared output."""
        if not self._outputs:
            raise ValueError("chain has no outputs")
        tables = self.simulate_signals()
        result = []
        for signal, complemented in self._outputs:
            if signal == self.CONST0:
                table = constant(0, self._num_inputs)
            else:
                table = tables[signal]
            result.append(~table if complemented else table)
        return result

    def simulate_output(self, index: int = 0) -> TruthTable:
        """Truth table of one output (default: the first)."""
        return self.simulate()[index]

    def evaluate(self, inputs: Sequence[int]) -> list[int]:
        """Evaluate all outputs on one input assignment."""
        if len(inputs) != self._num_inputs:
            raise ValueError(
                f"expected {self._num_inputs} inputs, got {len(inputs)}"
            )
        values = [int(bool(v)) for v in inputs]
        for gate in self._gates:
            row = 0
            for i, f in enumerate(gate.fanins):
                row |= values[f] << i
            values.append((gate.op >> row) & 1)
        return [
            (0 if s == self.CONST0 else values[s]) ^ int(c)
            for s, c in self._outputs
        ]

    # ------------------------------------------------------------------
    # structure & output
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ValueError on dangling outputs or empty chains."""
        if not self._outputs:
            raise ValueError("chain has no outputs")
        for signal, _ in self._outputs:
            if signal != self.CONST0 and not 0 <= signal < self.num_signals:
                raise ValueError(f"output references missing signal {signal}")

    def signature(self) -> tuple:
        """Hashable identity used to deduplicate equal chains."""
        return (
            self._num_inputs,
            tuple((g.op, g.fanins) for g in self._gates),
            tuple(self._outputs),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanChain):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        return (
            f"BooleanChain(inputs={self._num_inputs}, "
            f"gates={len(self._gates)}, outputs={len(self._outputs)})"
        )

    def format(self) -> str:
        """Multi-line pretty print in the style of the paper's Example 7."""
        lines = []
        for i, gate in enumerate(self._gates):
            signal = self._num_inputs + i
            args = ", ".join(
                (f"x{f}" if self.is_input(f) else f"s{f}") for f in gate.fanins
            )
            lines.append(f"s{signal} = 0x{gate.op:x}({args})")
        for signal, complemented in self._outputs:
            prefix = "~" if complemented else ""
            if signal == self.CONST0:
                name = "0"
            elif self.is_input(signal):
                name = f"x{signal}"
            else:
                name = f"s{signal}"
            lines.append(f"out = {prefix}{name}")
        return "\n".join(lines)
