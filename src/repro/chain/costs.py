"""Cost models for choosing among optimal chains.

The paper's selling point for AllSAT-style synthesis is that every
size-optimal chain comes back, "hence different costs can be considered
when selecting the optimal circuit."  These cost functions all map a
:class:`~repro.chain.chain.BooleanChain` to a number; lower is better.
:func:`select_best` ranks a solution set under any of them (or a custom
callable) with deterministic tie-breaking.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from .chain import BooleanChain

__all__ = [
    "gate_count",
    "depth",
    "inverter_free_cost",
    "weighted_op_cost",
    "fanout_cost",
    "DEFAULT_OP_WEIGHTS",
    "COST_MODELS",
    "select_best",
    "rank_solutions",
]

#: Example technology weights: XOR-like cells are pricier than AND/OR
#: in most standard-cell libraries.
DEFAULT_OP_WEIGHTS: dict[int, float] = {
    0x8: 1.0,  # and
    0xE: 1.0,  # or
    0x1: 1.0,  # nor
    0x7: 1.0,  # nand
    0x2: 1.5,  # and with complemented input
    0x4: 1.5,
    0xB: 1.5,  # or with complemented input
    0xD: 1.5,
    0x6: 2.0,  # xor
    0x9: 2.0,  # xnor
}


def gate_count(chain: BooleanChain) -> float:
    """Number of gates — the optimality criterion of exact synthesis."""
    return float(chain.num_gates)


def depth(chain: BooleanChain) -> float:
    """Logic depth (levels) of the chain."""
    return float(chain.depth())


def inverter_free_cost(chain: BooleanChain) -> float:
    """Gates plus one for each complemented output (poor man's area)."""
    extra = sum(1 for _, complemented in chain.outputs if complemented)
    return float(chain.num_gates + extra)


def weighted_op_cost(
    chain: BooleanChain,
    weights: Mapping[int, float] = DEFAULT_OP_WEIGHTS,
    default: float = 1.0,
) -> float:
    """Sum of per-operator technology weights over all gates."""
    return sum(weights.get(gate.op, default) for gate in chain.gates)


def fanout_cost(chain: BooleanChain) -> float:
    """Penalty for high-fanout internal signals (max fanout)."""
    counts = chain.fanout_counts()
    internal = counts[chain.num_inputs:] or [0]
    return float(max(internal))


#: Named registry for CLI/bench use.
COST_MODELS: dict[str, Callable[[BooleanChain], float]] = {
    "gates": gate_count,
    "depth": depth,
    "inverters": inverter_free_cost,
    "weighted": weighted_op_cost,
    "fanout": fanout_cost,
}


def rank_solutions(
    chains: Iterable[BooleanChain],
    cost: Callable[[BooleanChain], float] | str = "gates",
) -> list[tuple[float, BooleanChain]]:
    """All chains with their costs, cheapest first (stable order)."""
    fn = COST_MODELS[cost] if isinstance(cost, str) else cost
    scored = [(fn(c), c) for c in chains]
    scored.sort(key=lambda pair: (pair[0], pair[1].signature()))
    return scored


def select_best(
    chains: Iterable[BooleanChain],
    cost: Callable[[BooleanChain], float] | str = "gates",
) -> BooleanChain:
    """The cheapest chain under the given cost model."""
    ranked = rank_solutions(chains, cost)
    if not ranked:
        raise ValueError("no chains to select from")
    return ranked[0][1]
