"""Chain export: expression trees and structural Verilog.

The paper's output format is 2-LUT chains; downstream flows want them
as readable Boolean expressions or as Verilog netlists.  Both exports
are pure functions of the chain and round-trip through simulation in
the tests.
"""

from __future__ import annotations

from ..stp.expression import BinOp, Const, Expression, Not, Var
from ..truthtable.operations import binary_op_name
from .chain import BooleanChain

__all__ = ["chain_to_expression", "chain_to_verilog"]

#: 2-input code → expression builder over (x0, x1) sub-expressions.
_CODE_EXPR = {
    0x1: lambda a, b: Not(BinOp("or", a, b)),
    0x2: lambda a, b: BinOp("and", a, Not(b)),
    0x4: lambda a, b: BinOp("and", Not(a), b),
    0x6: lambda a, b: BinOp("xor", a, b),
    0x7: lambda a, b: Not(BinOp("and", a, b)),
    0x8: lambda a, b: BinOp("and", a, b),
    0x9: lambda a, b: BinOp("xnor", a, b),
    0xB: lambda a, b: BinOp("or", a, Not(b)),
    0xD: lambda a, b: BinOp("or", Not(a), b),
    0xE: lambda a, b: BinOp("or", a, b),
    0x0: lambda a, b: Const(False),
    0xF: lambda a, b: Const(True),
    0x3: lambda a, b: Not(b),
    0x5: lambda a, b: Not(a),
    0xA: lambda a, b: a,
    0xC: lambda a, b: b,
}


def chain_to_expression(
    chain: BooleanChain, output: int = 0
) -> Expression:
    """One output of a 2-input chain as an expression AST.

    Variable names are ``x0 … x{n-1}``; shared gates are duplicated in
    the tree (expressions have no sharing).
    """
    for gate in chain.gates:
        if gate.arity != 2:
            raise ValueError("expression export supports 2-input chains")
    exprs: list[Expression] = [
        Var(f"x{i}") for i in range(chain.num_inputs)
    ]
    for gate in chain.gates:
        a, b = (exprs[f] for f in gate.fanins)
        exprs.append(_CODE_EXPR[gate.op](a, b))
    signal, complemented = chain.outputs[output]
    if signal == BooleanChain.CONST0:
        expr: Expression = Const(False)
    else:
        expr = exprs[signal]
    return Not(expr) if complemented else expr


_VERILOG_OPS = {
    0x1: "~({a} | {b})",
    0x2: "{a} & ~{b}",
    0x4: "~{a} & {b}",
    0x6: "{a} ^ {b}",
    0x7: "~({a} & {b})",
    0x8: "{a} & {b}",
    0x9: "~({a} ^ {b})",
    0xB: "{a} | ~{b}",
    0xD: "~{a} | {b}",
    0xE: "{a} | {b}",
    0x0: "1'b0",
    0xF: "1'b1",
    0x3: "~{b}",
    0x5: "~{a}",
    0xA: "{a}",
    0xC: "{b}",
}


def chain_to_verilog(
    chain: BooleanChain, module_name: str = "chain"
) -> str:
    """Structural Verilog for a 2-input chain (assign-style netlist)."""
    for gate in chain.gates:
        if gate.arity != 2:
            raise ValueError("verilog export supports 2-input chains")
    n = chain.num_inputs
    inputs = ", ".join(f"x{i}" for i in range(n))
    outputs = ", ".join(f"y{i}" for i in range(len(chain.outputs)))
    lines = [
        f"module {module_name} ({inputs}, {outputs});",
        f"  input {inputs};" if n else "",
        f"  output {outputs};",
    ]
    wires = [
        f"w{chain.num_inputs + i}" for i in range(chain.num_gates)
    ]
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")

    def name_of(signal: int) -> str:
        if signal < n:
            return f"x{signal}"
        return f"w{signal}"

    for i, gate in enumerate(chain.gates):
        a, b = (name_of(f) for f in gate.fanins)
        rhs = _VERILOG_OPS[gate.op].format(a=a, b=b)
        target = f"w{n + i}"
        lines.append(
            f"  assign {target} = {rhs};  // {binary_op_name(gate.op)}"
        )
    for i, (signal, complemented) in enumerate(chain.outputs):
        if signal == BooleanChain.CONST0:
            rhs = "1'b1" if complemented else "1'b0"
        else:
            rhs = name_of(signal)
            if complemented:
                rhs = f"~{rhs}"
        lines.append(f"  assign y{i} = {rhs};")
    lines.append("endmodule")
    return "\n".join(line for line in lines if line) + "\n"
