"""FEN baseline: fence-constrained SAT-based exact synthesis.

The paper's second comparison point (Haaswijk et al., "SAT based exact
synthesis using DAG topology families"): for each gate count ``r``,
iterate the pruned fence family ``F_r`` and solve one SSV instance per
fence with the selection variables restricted to fence-compatible
fanin pairs.  The added topology constraints shrink each SAT instance
at the cost of solving several of them.
"""

from __future__ import annotations

import time

from ..chain.transform import lift_chain, shrink_to_support, trivial_chain
from ..core.spec import Deadline, SynthesisResult, SynthesisSpec, SynthesisStats
from ..runtime.errors import SynthesisInfeasible
from ..sat.encodings import SSVEncoder, normalize_function
from ..sat.solver import CDCLSolver
from ..topology.fence import valid_fences
from ..truthtable.table import TruthTable

__all__ = ["FenceSynthesizer", "fence_synthesize"]


class FenceSynthesizer:
    """Fence-enumerating SSV exact synthesis."""

    def __init__(self, max_gates: int | None = None) -> None:
        self._max_gates = max_gates

    def synthesize(
        self, function: TruthTable, timeout: float | None = None
    ) -> SynthesisResult:
        """Find one size-optimal chain for ``function``."""
        start = time.perf_counter()
        deadline = Deadline(timeout)
        stats = SynthesisStats()
        spec = SynthesisSpec(
            function=function,
            max_gates=self._max_gates,
            timeout=timeout,
            all_solutions=False,
        )

        chain = trivial_chain(function)
        if chain is not None:
            return SynthesisResult(
                spec, [chain], 0, time.perf_counter() - start, stats
            )

        local, support = shrink_to_support(function)
        normal, complemented = normalize_function(local)
        for r in range(max(1, len(support) - 1), spec.effective_max_gates() + 1):
            for fence in valid_fences(r):
                deadline.check()
                stats.fences_examined += 1
                encoder = SSVEncoder(normal, r, fence=fence, deadline=deadline)
                solver = CDCLSolver()
                if not solver.add_cnf(encoder.cnf):
                    continue
                stats.candidates_generated += 1
                if solver.solve(deadline=deadline):
                    found = encoder.decode(solver.model(), complemented)
                    lifted = lift_chain(found, function.num_vars, support)
                    if lifted.simulate_output() != function:
                        raise AssertionError(
                            "decoded FEN chain does not realise the target"
                        )
                    return SynthesisResult(
                        spec, [lifted], r, time.perf_counter() - start, stats
                    )
        raise SynthesisInfeasible(
            f"FEN found no chain within {spec.effective_max_gates()} gates"
        )


def fence_synthesize(
    function: TruthTable, timeout: float | None = None
) -> SynthesisResult:
    """One-call FEN baseline synthesis."""
    return FenceSynthesizer().synthesize(function, timeout=timeout)
