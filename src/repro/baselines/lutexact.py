"""ABC ``lutexact``-style baseline: CEGAR SAT-based exact synthesis.

ABC itself is a closed C binary unavailable in this environment, so —
per the substitution policy in DESIGN.md — this baseline reproduces the
*algorithmic class* of its ``lutexact`` engine: SAT-based exact
synthesis with counterexample-guided abstraction refinement.  Instead
of constraining every truth-table row up front (as BMS does), only a
small seed of rows is encoded; each SAT model is simulated, and any
mis-predicted row is added as a new constraint before re-solving.  On
structured (DSD-like) functions few rows are needed and the instances
stay tiny; on dense/partial-DSD functions the refinement loop has to
pull in many rows, which is exactly the regime where the paper observes
``lutexact`` degrading.
"""

from __future__ import annotations

import time

from ..chain.chain import BooleanChain
from ..chain.transform import lift_chain, shrink_to_support, trivial_chain
from ..core.spec import Deadline, SynthesisResult, SynthesisSpec, SynthesisStats
from ..runtime.errors import SynthesisInfeasible
from ..sat.encodings import SSVEncoder, normalize_function
from ..sat.solver import CDCLSolver
from ..truthtable.table import TruthTable

__all__ = ["LutExactSynthesizer", "lutexact_synthesize"]


class LutExactSynthesizer:
    """CEGAR-refined SSV exact synthesis (ABC-style)."""

    def __init__(
        self, max_gates: int | None = None, seed_rows: int = 2
    ) -> None:
        self._max_gates = max_gates
        self._seed_rows = seed_rows

    def synthesize(
        self, function: TruthTable, timeout: float | None = None
    ) -> SynthesisResult:
        """Find one size-optimal chain for ``function``."""
        start = time.perf_counter()
        deadline = Deadline(timeout)
        stats = SynthesisStats()
        spec = SynthesisSpec(
            function=function,
            max_gates=self._max_gates,
            timeout=timeout,
            all_solutions=False,
        )

        chain = trivial_chain(function)
        if chain is not None:
            return SynthesisResult(
                spec, [chain], 0, time.perf_counter() - start, stats
            )

        local, support = shrink_to_support(function)
        normal, complemented = normalize_function(local)
        for r in range(max(1, len(support) - 1), spec.effective_max_gates() + 1):
            found = self._solve_cegar(
                normal, r, complemented, deadline, stats
            )
            if found is not None:
                lifted = lift_chain(found, function.num_vars, support)
                if lifted.simulate_output() != function:
                    raise AssertionError(
                        "decoded lutexact chain does not realise the target"
                    )
                return SynthesisResult(
                    spec, [lifted], r, time.perf_counter() - start, stats
                )
        raise SynthesisInfeasible(
            f"lutexact found no chain within {spec.effective_max_gates()} gates"
        )

    def _solve_cegar(
        self,
        normal: TruthTable,
        r: int,
        complemented: bool,
        deadline: Deadline,
        stats: SynthesisStats,
    ) -> BooleanChain | None:
        """CEGAR loop at a fixed gate count; None when UNSAT."""
        # Seed with the lowest non-zero onset/offset rows.
        rows: set[int] = set()
        for t in range(1, normal.num_rows):
            rows.add(t)
            if len(rows) >= self._seed_rows:
                break
        while True:
            deadline.check()
            encoder = SSVEncoder(normal, r, rows=rows, deadline=deadline)
            solver = CDCLSolver()
            if not solver.add_cnf(encoder.cnf):
                return None
            stats.candidates_generated += 1
            if not solver.solve(deadline=deadline):
                return None  # UNSAT on a subset ⇒ UNSAT on all rows
            candidate = encoder.decode(solver.model(), complemented)
            simulated = candidate.simulate_output()
            target = ~normal if complemented else normal
            if simulated == target:
                return candidate
            # Add every mis-predicted row as a refinement constraint.
            diff = simulated.bits ^ target.bits
            added = False
            for t in range(1, normal.num_rows):
                if (diff >> t) & 1 and t not in rows:
                    rows.add(t)
                    added = True
                    break  # one counterexample per iteration (ABC-style)
            if not added:
                # All differing rows already constrained — cannot
                # happen with a sound encoding; guard against loops.
                raise AssertionError("CEGAR refinement made no progress")


def lutexact_synthesize(
    function: TruthTable, timeout: float | None = None
) -> SynthesisResult:
    """One-call lutexact-style baseline synthesis."""
    return LutExactSynthesizer().synthesize(function, timeout=timeout)
