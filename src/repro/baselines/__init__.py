"""Comparison algorithms for Table I: BMS (plain SSV SAT), FEN
(fence-constrained SAT), and an ABC lutexact-style CEGAR engine."""

from .bms import BMSSynthesizer, bms_synthesize
from .fence_synth import FenceSynthesizer, fence_synthesize
from .lutexact import LutExactSynthesizer, lutexact_synthesize

__all__ = [
    "BMSSynthesizer",
    "bms_synthesize",
    "FenceSynthesizer",
    "fence_synthesize",
    "LutExactSynthesizer",
    "lutexact_synthesize",
]
