"""BMS baseline: plain SAT-based exact synthesis (Soeken et al. style).

The "busy man's synthesis" column of the paper's Table I: the standard
SSV CNF encoding with no topology constraints, solved by the CDCL
solver, iterating the number of steps from the support lower bound
upwards.  Yields one chain (conventional SAT-based exact synthesis
produces a single solution per run).
"""

from __future__ import annotations

import time

from ..chain.transform import lift_chain, shrink_to_support, trivial_chain
from ..core.spec import Deadline, SynthesisResult, SynthesisSpec, SynthesisStats
from ..runtime.errors import SynthesisInfeasible
from ..sat.encodings import SSVEncoder, normalize_function
from ..sat.solver import CDCLSolver
from ..truthtable.table import TruthTable

__all__ = ["BMSSynthesizer", "bms_synthesize"]


class BMSSynthesizer:
    """Topology-free SSV exact synthesis."""

    def __init__(self, max_gates: int | None = None) -> None:
        self._max_gates = max_gates

    def synthesize(
        self, function: TruthTable, timeout: float | None = None
    ) -> SynthesisResult:
        """Find one size-optimal chain for ``function``."""
        start = time.perf_counter()
        deadline = Deadline(timeout)
        stats = SynthesisStats()
        spec = SynthesisSpec(
            function=function,
            max_gates=self._max_gates,
            timeout=timeout,
            all_solutions=False,
        )

        chain = trivial_chain(function)
        if chain is not None:
            return SynthesisResult(
                spec, [chain], 0, time.perf_counter() - start, stats
            )

        local, support = shrink_to_support(function)
        normal, complemented = normalize_function(local)
        for r in range(max(1, len(support) - 1), spec.effective_max_gates() + 1):
            deadline.check()
            encoder = SSVEncoder(normal, r, deadline=deadline)
            solver = CDCLSolver()
            if not solver.add_cnf(encoder.cnf):
                continue
            stats.candidates_generated += 1
            if solver.solve(deadline=deadline):
                found = encoder.decode(solver.model(), complemented)
                lifted = lift_chain(found, function.num_vars, support)
                if lifted.simulate_output() != function:
                    raise AssertionError(
                        "decoded BMS chain does not realise the target"
                    )
                return SynthesisResult(
                    spec, [lifted], r, time.perf_counter() - start, stats
                )
        raise SynthesisInfeasible(
            f"BMS found no chain within {spec.effective_max_gates()} gates"
        )


def bms_synthesize(
    function: TruthTable, timeout: float | None = None
) -> SynthesisResult:
    """One-call BMS baseline synthesis."""
    return BMSSynthesizer().synthesize(function, timeout=timeout)
