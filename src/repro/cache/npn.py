"""Memoized NPN canonicalization.

Exact NPN canonicalization of a 4-input function enumerates all 768
transforms; the NPN database and the synthesizer's canonicalize stage
call it for every lookup.  Within a Table-I suite the same functions
(and the same orbit members) recur constantly, so a ``(bits, n)``-keyed
memo turns the repeated orbit sweeps into dictionary reads.
"""

from __future__ import annotations

from ..truthtable.npn import NPNTransform, canonicalize
from ..truthtable.table import TruthTable

__all__ = ["NPNCache"]


class NPNCache:
    """Cross-call memo over :func:`repro.truthtable.npn.canonicalize`."""

    def __init__(self) -> None:
        self._store: dict[
            tuple[int, int], tuple[TruthTable, NPNTransform]
        ] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def canonical(
        self, table: TruthTable, stats=None
    ) -> tuple[TruthTable, NPNTransform]:
        """Memoized ``canonicalize(table)``.

        ``stats`` (a :class:`~repro.core.spec.SynthesisStats`) receives
        a hit/miss tick under the ``"npn"`` cache name when given.
        """
        key = (table.bits, table.num_vars)
        entry = self._store.get(key)
        hit = entry is not None
        if not hit:
            entry = canonicalize(table)
            self._store[key] = entry
            self.misses += 1
        else:
            self.hits += 1
        if stats is not None:
            stats.record_cache("npn", hit)
        return entry

    def clear(self) -> None:
        """Drop all memoized entries (counters are kept)."""
        self._store.clear()
