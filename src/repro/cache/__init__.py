"""Cross-call caching layer for the synthesis pipeline.

Three caches back the pipeline stages:

* :class:`NPNCache` — memoized NPN canonicalization (``canonicalize``
  is an orbit sweep; the database and the canonicalize stage call it
  for every lookup);
* :class:`TopologyCache` — per-``(num_gates, num_pis)`` fence/DAG
  topology families, the dominant repeated cost across a Table-I
  suite, with optional on-disk persistence;
* :class:`FactorizationPool` — memoizing factorization engines keyed
  on their immutable config, so the canonical-form + cone-shape query
  memo survives across synthesis calls.

One :class:`SynthesisCache` bundles all three and is shared through
the :class:`~repro.core.context.SynthesisContext`; a process-global
instance (:func:`get_cache`) serves entry points that do not manage
their own.  Setting ``enabled = False`` bypasses lookups *and* stores
without touching the recorded counters — the cache on/off ablation in
``benchmarks/bench_ablation_engine.py`` flips exactly this switch.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from contextlib import contextmanager

from .factorization import FactorizationPool
from .npn import NPNCache
from .topology import TopologyCache

try:  # pragma: no cover - fcntl exists on every POSIX target
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

__all__ = [
    "SynthesisCache",
    "NPNCache",
    "TopologyCache",
    "FactorizationPool",
    "get_cache",
    "set_cache",
    "reset_cache",
]

_PERSIST_VERSION = 1


class SynthesisCache:
    """The pipeline's cache bundle (NPN + topology + factorization)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.npn = NPNCache()
        self.topology = TopologyCache()
        self.factorization = FactorizationPool()

    # ------------------------------------------------------------------
    # stage-facing API (honours the enabled switch)
    # ------------------------------------------------------------------
    def npn_canonical(self, table, stats=None):
        """Memoized NPN canonicalization (or direct when disabled)."""
        if not self.enabled:
            from ..truthtable.npn import canonicalize

            if stats is not None:
                stats.record_cache("npn", False)
            return canonicalize(table)
        return self.npn.canonical(table, stats=stats)

    def topology_families(
        self,
        num_gates: int,
        num_pis: int,
        require_all_pis: bool = True,
        deadline=None,
        stats=None,
    ):
        """Cached (fence, pDAGs) families (freshly built when disabled)."""
        if not self.enabled:
            if stats is not None:
                stats.record_cache("topology", False)
            return self.topology._build(
                num_gates, num_pis, require_all_pis, deadline
            )
        return self.topology.families(
            num_gates,
            num_pis,
            require_all_pis,
            deadline=deadline,
            stats=stats,
        )

    def factorization_engine(
        self,
        num_vars: int,
        operators,
        max_solutions_per_query: int,
        deadline=None,
        stats=None,
    ):
        """Pooled factorization engine (fresh instance when disabled)."""
        if not self.enabled:
            from ..core.factorization import FactorizationEngine

            if stats is not None:
                stats.record_cache("factorization_pool", False)
            engine = FactorizationEngine(
                num_vars,
                tuple(operators),
                max_solutions_per_query=max_solutions_per_query,
            )
            engine.bind(deadline=deadline, stats=stats)
            return engine
        return self.factorization.engine_for(
            num_vars,
            operators,
            max_solutions_per_query,
            deadline=deadline,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # counters / lifecycle
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """Aggregate hit/miss counters per cache (JSON-safe)."""
        return {
            "npn": {"hits": self.npn.hits, "misses": self.npn.misses},
            "topology": {
                "hits": self.topology.hits,
                "misses": self.topology.misses,
            },
            "factorization": {
                "hits": self.factorization.hits,
                "misses": self.factorization.misses,
            },
        }

    def clear(self) -> None:
        """Drop all cached entries across the bundle."""
        self.npn.clear()
        self.topology.clear()
        self.factorization.clear()

    # ------------------------------------------------------------------
    # persistence (topology families only — the others rebuild fast or
    # hold live objects)
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the topology families atomically to ``path``.

        Safe under concurrent writers: an exclusive lock on
        ``path + ".lock"`` serializes savers, the current on-disk
        payload is re-read and merged under that lock (families only
        on disk are preserved, in-memory families win), and the merged
        payload lands via temp-file + atomic rename — so parallel
        suite runs sharing one cache path never tear the file or drop
        each other's families.
        """
        directory = os.path.dirname(os.path.abspath(path)) or "."
        with _writer_lock(path):
            state = self._read_disk_state(path)
            state.update(
                TopologyCache.sanitize_state(self.topology.export_state())
            )
            payload = {"version": _PERSIST_VERSION, "topology": state}
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    @staticmethod
    def _read_disk_state(path: str) -> dict:
        """Sanitized topology state currently on disk ({} when absent,
        corrupt, or an incompatible version)."""
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _PERSIST_VERSION
        ):
            return {}
        return TopologyCache.sanitize_state(payload.get("topology", {}))

    def load(self, path: str) -> int:
        """Load persisted topology families; returns families restored.

        Missing, corrupt, or incompatible files are treated as an
        empty cache — persistence is an optimisation, never a failure
        mode.
        """
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return 0
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _PERSIST_VERSION
        ):
            return 0
        return self.topology.load_state(payload.get("topology", {}))


@contextmanager
def _writer_lock(path: str):
    """Exclusive advisory lock on ``path + ".lock"`` (no-op when the
    platform lacks ``fcntl``)."""
    if fcntl is None:
        yield
        return
    with open(path + ".lock", "a+b") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


_GLOBAL_CACHE: SynthesisCache | None = None


def get_cache() -> SynthesisCache:
    """The process-global cache shared by default contexts."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = SynthesisCache()
    return _GLOBAL_CACHE


def set_cache(cache: SynthesisCache) -> SynthesisCache:
    """Replace the process-global cache (returns the previous one)."""
    global _GLOBAL_CACHE
    previous = get_cache()
    _GLOBAL_CACHE = cache
    return previous


def reset_cache() -> None:
    """Discard the process-global cache (a fresh one is lazily made)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = None
