"""Cross-call pool of memoizing factorization engines.

A :class:`~repro.core.factorization.FactorizationEngine` memoizes its
queries on canonical-form bytes plus the local cone shape — exactly
the key the ISSUE's factorization memo calls for — but used to be
created fresh for every synthesis run, discarding the memo each time.
This pool keys engines on ``(num_vars, operators, cap)`` and rebinds
only the per-run deadline and stats sink, so structurally identical
factorization queries from *different* targets (or different suite
instances) are answered from the memo.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["FactorizationPool"]

#: Query-memo size at which an engine's caches are dropped — a memory
#: backstop for unbounded suites, far above any Table-I working set.
DEFAULT_MAX_QUERIES_PER_ENGINE = 1_000_000


class FactorizationPool:
    """Reusable factorization engines keyed on their immutable config."""

    def __init__(
        self, max_queries_per_engine: int = DEFAULT_MAX_QUERIES_PER_ENGINE
    ) -> None:
        self._engines: dict[tuple, object] = {}
        self._max_queries = max_queries_per_engine
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._engines)

    def engine_for(
        self,
        num_vars: int,
        operators: Sequence[int],
        max_solutions_per_query: int,
        deadline=None,
        stats=None,
    ):
        """A factorization engine for this config, memo preserved.

        The engine's deadline and stats sink are rebound on every call:
        runs are sequential, and a nested run's sub-deadline never
        outlives its parent, so rebinding is sound.
        """
        from ..core.factorization import FactorizationEngine

        key = (num_vars, tuple(operators), max_solutions_per_query)
        engine = self._engines.get(key)
        hit = engine is not None
        if stats is not None:
            stats.record_cache("factorization_pool", hit)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            engine = FactorizationEngine(
                num_vars,
                tuple(operators),
                max_solutions_per_query=max_solutions_per_query,
            )
            self._engines[key] = engine
        if engine.cached_queries > self._max_queries:
            engine.clear_caches()
        engine.bind(deadline=deadline, stats=stats)
        return engine

    def clear(self) -> None:
        """Drop every pooled engine (counters are kept)."""
        self._engines.clear()
