"""Per-``(num_gates, num_pis)`` fence/DAG topology-family cache.

Topology enumeration is pure combinatorics: the pruned fence family of
``r`` gates and every pDAG of each fence over ``s`` inputs depend only
on ``(r, s)`` — yet the synthesizer used to re-enumerate them from
scratch for every target function.  Across a Table-I suite (hundreds
of functions, nearly all hitting the same handful of ``(r, s)`` pairs)
that re-enumeration is the dominant repeated cost.  This cache
materialises each family once and serves every later call from memory;
families can also be persisted to disk so ``run_suite`` reuses them
across resumed checkpoint runs and separate processes.
"""

from __future__ import annotations

from ..topology.dag import DagTopology, enumerate_dags
from ..topology.fence import Fence, valid_fences

__all__ = ["TopologyCache", "TopologyFamily"]

#: One cached family: every valid fence of ``r`` gates paired with its
#: fully materialised pDAG tuple (empty tuples are kept so the
#: fences-examined counter is unchanged versus streaming enumeration).
TopologyFamily = tuple[tuple[Fence, tuple[DagTopology, ...]], ...]

#: Families larger than this many DAGs are streamed, not stored —
#: a memory backstop for pathological (r, s) pairs.
DEFAULT_MAX_DAGS_PER_FAMILY = 200_000


class TopologyCache:
    """Cross-call cache of pruned fence/DAG topology families."""

    def __init__(
        self, max_dags_per_family: int = DEFAULT_MAX_DAGS_PER_FAMILY
    ) -> None:
        self._store: dict[tuple[int, int, bool], TopologyFamily] = {}
        self._max_dags = max_dags_per_family
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def families(
        self,
        num_gates: int,
        num_pis: int,
        require_all_pis: bool = True,
        deadline=None,
        stats=None,
    ) -> TopologyFamily:
        """All (fence, pDAG tuple) pairs for ``num_gates`` gates.

        A cooperative ``deadline`` is polled while a family is being
        built, so a first-call enumeration cannot blow a synthesis
        budget unnoticed; a build aborted by the deadline leaves the
        cache untouched.  ``stats`` receives hit/miss ticks under the
        ``"topology"`` cache name.
        """
        key = (num_gates, num_pis, require_all_pis)
        family = self._store.get(key)
        hit = family is not None
        if stats is not None:
            stats.record_cache("topology", hit)
        if hit:
            self.hits += 1
            return family
        self.misses += 1
        family = self._build(num_gates, num_pis, require_all_pis, deadline)
        total = sum(len(dags) for _, dags in family)
        if total <= self._max_dags:
            self._store[key] = family
        return family

    def _build(
        self,
        num_gates: int,
        num_pis: int,
        require_all_pis: bool,
        deadline,
    ) -> TopologyFamily:
        out = []
        for fence in valid_fences(num_gates):
            dags = []
            for dag in enumerate_dags(fence, num_pis, require_all_pis):
                if deadline is not None:
                    deadline.check(every=64)
                dags.append(dag)
            out.append((fence, tuple(dags)))
        return tuple(out)

    def clear(self) -> None:
        """Drop every cached family (counters are kept)."""
        self._store.clear()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Plain-data snapshot of the cached families (picklable)."""
        return {
            key: tuple(
                (fence, tuple(dag.fanins for dag in dags))
                for fence, dags in family
            )
            for key, family in self._store.items()
        }

    @staticmethod
    def sanitize_state(state) -> dict:
        """Validated plain-data subset of a raw exported/unpickled state.

        Keys normalize to ``(num_gates, num_pis, require_all_pis)`` and
        every family to nested plain tuples; malformed entries are
        dropped rather than raising (a stale or torn cache file must
        never break a run).  Both :meth:`load_state` and the read-merge
        step of concurrent cache saves run untrusted disk data through
        this before using it.
        """
        if not isinstance(state, dict):
            return {}
        clean: dict = {}
        for key, family in state.items():
            try:
                num_gates, num_pis, require_all_pis = key
                plain = tuple(
                    (
                        tuple(fence),
                        tuple(
                            tuple(tuple(pair) for pair in fanins)
                            for fanins in dag_fanins
                        ),
                    )
                    for fence, dag_fanins in family
                )
                clean_key = (int(num_gates), int(num_pis), bool(require_all_pis))
            except (TypeError, ValueError):
                continue
            clean[clean_key] = plain
        return clean

    def load_state(self, state: dict) -> int:
        """Restore families exported by :meth:`export_state`.

        Returns the number of families restored; malformed entries are
        skipped via :meth:`sanitize_state`.
        """
        restored = 0
        for key, family in self.sanitize_state(state).items():
            _, num_pis, _ = key
            try:
                rebuilt = tuple(
                    (
                        fence,
                        tuple(
                            DagTopology(num_pis, fanins, fence)
                            for fanins in dag_fanins
                        ),
                    )
                    for fence, dag_fanins in family
                )
            except (TypeError, ValueError):
                continue
            self._store[key] = rebuilt
            restored += 1
        return restored
