"""Disjoint-support decomposition (DSD) of Boolean functions.

The paper's FDSD/PDSD benchmark suites are defined by how far a function
decomposes under DSD (Mishchenko, "An approach to disjoint-support
decomposition of logic functions"):

* *fully DSD decomposable* — the function is a read-once tree of
  2-input gates over its support;
* *partially DSD decomposable* — some 2-input disjoint-support
  extraction is possible, but a non-decomposable *prime* block remains;
* *prime / non-decomposable* — no disjoint-support extraction exists.

The engine here merges variable pairs bottom-up.  Two support variables
``a, b`` can be fused into a single pseudo-input ``z = sigma(a, b)``
exactly when the four cofactors of ``f`` with respect to ``(a, b)``
take at most two distinct values; the indicator of which value a row
falls into *is* the gate function ``sigma``.  Repeating until a single
variable remains proves full decomposability (the DSD tree of a fully
decomposable function is unique up to associativity, so greedy merging
cannot paint itself into a corner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .operations import binary_op_name
from .table import TruthTable

__all__ = [
    "DSDKind",
    "DSDNode",
    "dsd_decompose",
    "dsd_kind",
    "feasible_top_splits",
    "is_fully_dsd",
    "is_partially_dsd",
    "is_prime",
    "mergeable_pair",
]


class DSDKind:
    """String constants naming the decomposition classes."""

    FULL = "full"
    PARTIAL = "partial"
    PRIME = "prime"
    TRIVIAL = "trivial"  # constants and single-variable functions


@dataclass(frozen=True)
class DSDNode:
    """A node of a DSD tree.

    ``kind`` is one of ``"var"``, ``"gate"``, ``"prime"``:

    * ``var`` — a leaf; ``var_index`` names the input variable.
    * ``gate`` — a 2-input gate; ``op_code`` is the 4-bit operator code
      and ``children`` has exactly two entries.
    * ``prime`` — a non-decomposable block; ``prime_table`` is its local
      function over ``children`` (child ``i`` is local variable ``i``).
    """

    kind: str
    var_index: int = -1
    op_code: int = -1
    prime_table: Optional[TruthTable] = None
    children: tuple["DSDNode", ...] = ()

    def format(self) -> str:
        """Render the tree as a nested expression string."""
        if self.kind == "var":
            return f"x{self.var_index}"
        if self.kind == "gate":
            name = binary_op_name(self.op_code)
            args = ", ".join(c.format() for c in self.children)
            return f"{name}({args})"
        assert self.prime_table is not None
        args = ", ".join(c.format() for c in self.children)
        return f"prime<0x{self.prime_table.to_hex()}>({args})"

    def to_truth_table(self, num_vars: int) -> TruthTable:
        """Evaluate the tree back into a truth table (for validation)."""
        from .table import projection

        if self.kind == "var":
            return projection(self.var_index, num_vars)
        child_tables = [c.to_truth_table(num_vars) for c in self.children]
        if self.kind == "gate":
            local = TruthTable(self.op_code, 2)
            return local.compose(child_tables)
        assert self.prime_table is not None
        if not child_tables:
            # Constant block.
            bits = ((1 << (1 << num_vars)) - 1) if self.prime_table.bits else 0
            return TruthTable(bits, num_vars)
        return self.prime_table.compose(child_tables)

    def max_prime_arity(self) -> int:
        """Largest prime block in the tree (0 when fully decomposable)."""
        own = (
            self.prime_table.num_vars
            if self.kind == "prime" and self.prime_table is not None
            else 0
        )
        return max([own] + [c.max_prime_arity() for c in self.children])


def _cofactor_quadruple(
    table: TruthTable, a: int, b: int
) -> tuple[TruthTable, TruthTable, TruthTable, TruthTable]:
    """Cofactors of ``table`` over ``(a, b)`` in row order 00,01,10,11
    (row bit 0 = value of ``a``)."""
    c0 = table.cofactor(a, 0)
    c1 = table.cofactor(a, 1)
    return (
        c0.cofactor(b, 0),
        c1.cofactor(b, 0),
        c0.cofactor(b, 1),
        c1.cofactor(b, 1),
    )


def mergeable_pair(table: TruthTable, a: int, b: int) -> Optional[int]:
    """If ``f`` factors as ``h(sigma(a, b), other vars)``, return the
    operator code of ``sigma`` (with ``a`` as ``x0``); otherwise None.

    Only genuine fusions count: ``sigma`` must depend on both inputs and
    the two cofactor groups must be distinct (otherwise the function
    simply does not depend on the pair).
    """
    quads = _cofactor_quadruple(table, a, b)
    distinct = sorted({q.bits for q in quads})
    if len(distinct) != 2:
        return None
    # Indicator: row m of sigma is 1 when the cofactor equals the larger
    # of the two values (a canonical, deterministic choice).
    hi = distinct[1]
    code = 0
    for row, q in enumerate(quads):
        if q.bits == hi:
            code |= 1 << row
    sigma = TruthTable(code, 2)
    if not (sigma.depends_on(0) and sigma.depends_on(1)):
        return None
    return code


def _merge(table: TruthTable, a: int, b: int, code: int) -> TruthTable:
    """Replace the pair ``(a, b)`` by the single pseudo-variable
    ``z = sigma(a, b)`` stored in slot ``a``; slot ``b`` becomes vacuous
    and is removed, shrinking the table by one variable."""
    quads = _cofactor_quadruple(table, a, b)
    distinct = sorted({q.bits for q in quads})
    hi_cof = TruthTable(distinct[1], table.num_vars)
    lo_cof = TruthTable(distinct[0], table.num_vars)
    from .table import projection

    z = projection(a, table.num_vars)
    merged = (z & hi_cof) | (~z & lo_cof)
    # merged no longer depends on b.
    return merged.remove_vacuous_variable(b)


def dsd_decompose(table: TruthTable) -> DSDNode:
    """Compute the DSD tree of ``table``.

    Two extraction rules are applied until neither fires:

    * *pair fusion* (bottom-up): two leaves with at most two distinct
      joint cofactors fuse into one 2-input gate;
    * *top extraction*: a single leaf ``v`` with
      ``f = sigma(v, h(rest))`` — detected via complementary or
      constant cofactors — peels one gate off the top, recursing into
      ``h``.

    The residue, if larger than one variable, becomes a prime node
    over the partial trees built so far.
    """
    support = list(table.support())
    if not support:
        # Constant function: encode as a 0-input prime block.
        const = TruthTable(table.bits & 1, 0)
        return DSDNode(kind="prime", prime_table=const, children=())

    # Shrink to the support only, remembering original names.
    work = table
    names = list(range(table.num_vars))
    for v in reversed(range(table.num_vars)):
        if v not in support:
            work = work.remove_vacuous_variable(v)
            del names[v]

    nodes = [DSDNode(kind="var", var_index=name) for name in names]
    return _decompose(work, nodes)


def _decompose(work: TruthTable, nodes: list[DSDNode]) -> DSDNode:
    """Recursive core of :func:`dsd_decompose` over pseudo-leaves."""
    while work.num_vars > 1:
        fused = _try_pair_fusion(work, nodes)
        if fused is not None:
            work, nodes = fused
            continue
        extracted = _try_top_extraction(work, nodes)
        if extracted is not None:
            return extracted
        return DSDNode(
            kind="prime", prime_table=work, children=tuple(nodes)
        )
    root = nodes[0]
    if work.bits == 0b01:  # residual f(z) = ~z
        root = _negate(root)
    return root


def _try_pair_fusion(
    work: TruthTable, nodes: list[DSDNode]
) -> tuple[TruthTable, list[DSDNode]] | None:
    n = work.num_vars
    for a in range(n):
        for b in range(a + 1, n):
            code = mergeable_pair(work, a, b)
            if code is None:
                continue
            fused = DSDNode(
                kind="gate", op_code=code, children=(nodes[a], nodes[b])
            )
            new_work = _merge(work, a, b, code)
            new_nodes = list(nodes)
            new_nodes[a] = fused
            del new_nodes[b]
            return new_work, new_nodes
    return None


def _try_top_extraction(
    work: TruthTable, nodes: list[DSDNode]
) -> DSDNode | None:
    """Peel ``f = sigma(v, h(rest))`` off the top for some leaf ``v``."""
    n = work.num_vars
    for a in range(n):
        c0 = work.restrict(a, 0)
        c1 = work.restrict(a, 1)
        rest_nodes = nodes[:a] + nodes[a + 1:]
        mask = c0.num_rows_mask()
        if c0.bits == c1.bits ^ mask:
            # f = v XOR ~c1 ... choose h = c0 (f(v=0) = h): sigma = xor.
            sub = _decompose(c0, rest_nodes)
            return DSDNode(
                kind="gate", op_code=0x6, children=(nodes[a], sub)
            )
        if c0.is_constant():
            sub = _decompose(c1, rest_nodes)
            # Row order (h << 1) | v:  f(v=0) = const, f(v=1) = h,
            # so const 0 ⇒ v & h (0x8) and const 1 ⇒ ~v | h (0xD).
            code = 0x8 if c0.bits == 0 else 0xD
            return DSDNode(
                kind="gate", op_code=code, children=(nodes[a], sub)
            )
        if c1.is_constant():
            sub = _decompose(c0, rest_nodes)
            # f(v=1) = const, f(v=0) = h:
            # const 1 ⇒ v | h (0xE), const 0 ⇒ ~v & h (0x4).
            code = 0xE if c1.bits else 0x4
            return DSDNode(
                kind="gate", op_code=code, children=(nodes[a], sub)
            )
    return None


def _negate(node: DSDNode) -> DSDNode:
    """Complement a DSD tree by complementing its root."""
    if node.kind == "gate":
        return DSDNode(
            kind="gate",
            op_code=node.op_code ^ 0xF,
            children=node.children,
        )
    if node.kind == "prime":
        assert node.prime_table is not None
        return DSDNode(
            kind="prime",
            prime_table=~node.prime_table,
            children=node.children,
        )
    # A bare complemented variable: represent as a NAND(x, x) gate so the
    # node vocabulary stays small.
    return DSDNode(kind="gate", op_code=0x7, children=(node, node))


def feasible_top_splits(
    table: TruthTable, ops: tuple[int, ...]
) -> frozenset[int]:
    """Variable bitmasks ``A`` such that ``f = op(g_a(A), g_b(B))`` can
    exist for some ``op`` in ``ops`` and *some* children, where ``B`` is
    the complementary variable set.

    This is the disjoint-support profile used to reject pDAG topologies
    before any factorization is attempted: a pDAG whose top node splits
    the inputs into disjoint cones ``(A, B)`` covering all variables can
    only realize ``f`` if ``A`` is in this set.  The existence check is
    deliberately weaker than the factorization engine's — children may
    be constants, projections, or equal to anything — so membership is
    necessary for the engine to succeed and the prune is sound.

    The test is the paper's two-unique-quartering-parts criterion: the
    rows of ``f`` grouped by the ``A``-assignment must take at most two
    distinct ``B``-profiles, and some operator column assignment must
    cover every profile bit.  Both polarities of the ``A``-indicator are
    tried.  Splits where the profiles are not 2-distinct (``f`` ignores
    the ``A`` side) are conservatively kept.
    """
    n = table.num_vars
    bits = table.bits
    full = (1 << n) - 1
    splits: set[int] = set()
    for amask in range(1, full):
        bmask = full & ~amask
        apos = [i for i in range(n) if (amask >> i) & 1]
        bpos = [i for i in range(n) if (bmask >> i) & 1]
        size_a = 1 << len(apos)
        size_b = 1 << len(bpos)
        # beta-profile of each A-assignment: bit beta = f(alpha, beta).
        profiles = []
        for alpha in range(size_a):
            base = 0
            for j, p in enumerate(apos):
                if (alpha >> j) & 1:
                    base |= 1 << p
            prof = 0
            for beta in range(size_b):
                row = base
                for j, p in enumerate(bpos):
                    if (beta >> j) & 1:
                        row |= 1 << p
                prof |= ((bits >> row) & 1) << beta
            profiles.append(prof)
        distinct = sorted(set(profiles))
        if len(distinct) > 2:
            continue
        if len(distinct) < 2:
            splits.add(amask)
            continue
        lo, hi = distinct
        full_b = (1 << size_b) - 1
        # c = profile of the g_a = 1 group, d = the g_a = 0 group; the
        # operator's column (v << 1) | u gives op(u, v).
        found = False
        for c, d in ((hi, lo), (lo, hi)):
            for op in ops:
                cover = 0
                for v in (0, 1):
                    cb = (op >> ((v << 1) | 1)) & 1
                    db = (op >> (v << 1)) & 1
                    m = (c if cb else ~c) & (d if db else ~d)
                    cover |= m & full_b
                if cover == full_b:
                    found = True
                    break
            if found:
                break
        if found:
            splits.add(amask)
    return frozenset(splits)


def dsd_kind(table: TruthTable) -> str:
    """Classify a function as trivial / full / partial / prime DSD."""
    if table.support_size() <= 1:
        return DSDKind.TRIVIAL
    tree = dsd_decompose(table)
    largest = tree.max_prime_arity()
    if largest == 0:
        return DSDKind.FULL
    if largest < table.support_size():
        return DSDKind.PARTIAL
    return DSDKind.PRIME


def is_fully_dsd(table: TruthTable) -> bool:
    """True when the function is a read-once tree of 2-input gates."""
    return dsd_kind(table) == DSDKind.FULL


def is_partially_dsd(table: TruthTable) -> bool:
    """True when some, but not full, DSD structure exists."""
    return dsd_kind(table) == DSDKind.PARTIAL


def is_prime(table: TruthTable) -> bool:
    """True when no disjoint-support extraction exists at all."""
    return dsd_kind(table) == DSDKind.PRIME
