"""Catalogues of named Boolean operators and common functions.

Two-input operators are identified by their 4-bit truth-table code
``0..15``: bit ``m`` of the code is the output for the input row ``m``
with ``x_0`` as the least significant input.  For example ``AND = 0x8``
(only row ``(x1, x0) = (1, 1)`` is true) and ``XOR = 0x6``.
"""

from __future__ import annotations

from .table import TruthTable, from_function

__all__ = [
    "BINARY_OP_NAMES",
    "NONTRIVIAL_BINARY_OPS",
    "NORMAL_BINARY_OPS",
    "binary_op_table",
    "binary_op_name",
    "apply_binary_op",
    "is_trivial_binary_op",
    "majority",
    "mux",
    "parity",
    "threshold",
]

#: Human-readable names for all sixteen 2-input operator codes.
BINARY_OP_NAMES: dict[int, str] = {
    0x0: "const0",
    0x1: "nor",
    0x2: "andn(x1,x0)",  # x0 & ~x1
    0x3: "not(x1)",
    0x4: "andn(x0,x1)",  # ~x0 & x1
    0x5: "not(x0)",
    0x6: "xor",
    0x7: "nand",
    0x8: "and",
    0x9: "xnor",
    0xA: "buf(x0)",
    0xB: "orn(x1,x0)",  # x0 | ~x1
    0xC: "buf(x1)",
    0xD: "orn(x0,x1)",  # ~x0 | x1
    0xE: "or",
    0xF: "const1",
}

#: Operator codes that truly depend on both inputs — the gate alphabet a
#: 2-input exact synthesizer needs to consider (ten of the sixteen).
NONTRIVIAL_BINARY_OPS: tuple[int, ...] = (
    0x1, 0x2, 0x4, 0x6, 0x7, 0x8, 0x9, 0xB, 0xD, 0xE,
)

#: The "normal" operators (output 0 on the all-zero row) that depend on
#: both inputs.  Classic SAT encodings (Knuth 7.2.2.2) restrict chains
#: to normal operators and recover the rest through output inversion.
NORMAL_BINARY_OPS: tuple[int, ...] = (0x2, 0x4, 0x6, 0x8, 0xE)


def binary_op_table(code: int) -> TruthTable:
    """The 2-variable :class:`TruthTable` of an operator code."""
    if not 0 <= code <= 0xF:
        raise ValueError(f"operator code must be in 0..15, got {code}")
    return TruthTable(code, 2)


def binary_op_name(code: int) -> str:
    """Human-readable name of an operator code."""
    if code not in BINARY_OP_NAMES:
        raise ValueError(f"operator code must be in 0..15, got {code}")
    return BINARY_OP_NAMES[code]


def apply_binary_op(code: int, a: int, b: int) -> int:
    """Evaluate operator ``code`` on Boolean scalars ``(x0=a, x1=b)``."""
    row = (b << 1) | a
    return (code >> row) & 1


def is_trivial_binary_op(code: int) -> bool:
    """True if the operator ignores at least one of its inputs."""
    return code not in NONTRIVIAL_BINARY_OPS


def majority(num_vars: int = 3) -> TruthTable:
    """Majority function of an odd number of inputs."""
    if num_vars % 2 == 0:
        raise ValueError("majority needs an odd number of inputs")
    half = num_vars // 2
    return from_function(lambda *xs: int(sum(xs) > half), num_vars)


def mux(num_select: int = 1) -> TruthTable:
    """Multiplexer: ``num_select`` select lines choosing between data
    inputs.  Select lines occupy the low variable indices."""
    data = 1 << num_select

    def fn(*xs: int) -> int:
        sel = 0
        for i in range(num_select):
            sel |= xs[i] << i
        return xs[num_select + sel]

    return from_function(fn, num_select + data)


def parity(num_vars: int) -> TruthTable:
    """Odd-parity (XOR chain) of ``num_vars`` inputs."""
    return from_function(lambda *xs: sum(xs) & 1, num_vars)


def threshold(num_vars: int, k: int) -> TruthTable:
    """Threshold function: true when at least ``k`` inputs are true."""
    return from_function(lambda *xs: int(sum(xs) >= k), num_vars)
