"""NPN classification of Boolean functions.

Two functions are NPN-equivalent when one can be obtained from the other
by Negating inputs, Permuting inputs, and/or Negating the output.  The
paper uses NPN classes both as a benchmark suite (all 222 classes of
4-input functions) and to prune DAG candidates.

For ``n <= 4`` we canonicalize *exactly* by enumerating all
``2 * 2**n * n!`` transforms (768 for ``n = 4``).  For larger ``n`` the
exhaustive orbit is too large for pure Python, so
:func:`canonicalize` falls back to a deterministic greedy
semi-canonical form — still a valid normal form for hashing, just not
guaranteed to be the orbit minimum.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..kernels.tables import npn_apply_bits, npn_minimum, npn_orbit
from .table import TruthTable

__all__ = [
    "NPNTransform",
    "MultiNPNTransform",
    "canonicalize",
    "canonicalize_multi",
    "exact_canonical",
    "semi_canonical",
    "npn_classes",
    "NUM_NPN4_CLASSES",
]

#: The classic count of NPN classes of 4-input functions.
NUM_NPN4_CLASSES = 222

_EXACT_LIMIT = 4


@dataclass(frozen=True)
class NPNTransform:
    """An NPN transform: ``g(y) = f(..., y_perm[i] ^ flips_i, ...) ^ out``.

    ``perm[i]`` names the *new* variable feeding old input ``i``;
    ``input_flips`` is a bitmask of old inputs that are complemented;
    ``output_flip`` complements the function value.
    """

    perm: tuple[int, ...]
    input_flips: int
    output_flip: bool

    def apply(self, table: TruthTable) -> TruthTable:
        """Apply the transform to ``table`` (cached index-gather kernel)."""
        n = table.num_vars
        if len(self.perm) != n:
            raise ValueError("transform arity does not match table")
        return TruthTable(
            npn_apply_bits(
                table.bits, n, self.perm, self.input_flips, self.output_flip
            ),
            n,
        )

    def inverse(self) -> "NPNTransform":
        """The transform undoing this one."""
        n = len(self.perm)
        inv_perm = [0] * n
        for i, p in enumerate(self.perm):
            inv_perm[p] = i
        inv_flips = 0
        for i in range(n):
            if (self.input_flips >> i) & 1:
                inv_flips |= 1 << self.perm[i]
        return NPNTransform(tuple(inv_perm), inv_flips, self.output_flip)

    @staticmethod
    def identity(num_vars: int) -> "NPNTransform":
        """The do-nothing transform."""
        return NPNTransform(tuple(range(num_vars)), 0, False)


def _all_transforms(num_vars: int) -> Iterator[NPNTransform]:
    for perm in itertools.permutations(range(num_vars)):
        for flips in range(1 << num_vars):
            for out in (False, True):
                yield NPNTransform(perm, flips, out)


def exact_canonical(
    table: TruthTable,
) -> tuple[TruthTable, NPNTransform]:
    """Exact NPN canonical form for small functions.

    Returns the orbit-minimal table (by integer comparison of the
    bit-packed representation) together with the transform that maps
    ``table`` to it.  Exponential in ``n!``; restricted to ``n <= 4``.
    """
    n = table.num_vars
    if n > _EXACT_LIMIT:
        raise ValueError(
            f"exact NPN canonicalization supports up to {_EXACT_LIMIT} "
            f"variables, got {n}"
        )
    # Batch kernel: all 2·2^n·n! transforms in one gather, argmin with
    # the same first-strict-minimum tie-breaking as a sequential scan.
    best_bits, perm, flips, out = npn_minimum(table.bits, n)
    return TruthTable(best_bits, n), NPNTransform(perm, flips, out)


def semi_canonical(table: TruthTable) -> tuple[TruthTable, NPNTransform]:
    """Greedy deterministic NPN normal form for any arity.

    The normal form is reached by (1) complementing the output when the
    onset is larger than the offset, (2) complementing each input whose
    positive cofactor has more minterms than its negative cofactor, and
    (3) sorting inputs by cofactor-count signature.  Ties are broken by
    the bit-packed table, so equal inputs still land in a fixed order.
    The result is NPN-equivalent to the input and identical for many —
    but not all — members of an orbit.
    """
    n = table.num_vars
    work = table
    out_flip = False
    half = work.num_rows // 2
    if work.count_ones() > half or (
        work.count_ones() == half and (work.bits & 1)
    ):
        work = ~work
        out_flip = True

    flips = 0
    for v in range(n):
        pos = work.cofactor(v, 1).count_ones()
        neg = work.cofactor(v, 0).count_ones()
        if pos > neg:
            work = work.flip_var(v)
            flips |= 1 << v

    signature = []
    for v in range(n):
        pos = work.cofactor(v, 1)
        signature.append((pos.count_ones(), pos.bits, v))
    order = [v for (_, _, v) in sorted(signature)]
    # ``order[j] = old variable placed at new position j``; permute with
    # perm[old] = new.
    perm = [0] * n
    for new_pos, old in enumerate(order):
        perm[old] = new_pos
    work = work.permute(perm)

    # Compose the full transform g(y) = f applied through flips+perm.
    # work = permute(flip(out_flip(f))) — express as a single transform:
    # x_i(old) = y_{perm[i]} ^ flip_i.
    transform = NPNTransform(tuple(perm), flips, out_flip)
    return work, transform


def canonicalize(table: TruthTable) -> tuple[TruthTable, NPNTransform]:
    """Best available NPN normal form: exact for ``n <= 4``, greedy above."""
    if table.num_vars <= _EXACT_LIMIT:
        return exact_canonical(table)
    return semi_canonical(table)


@dataclass(frozen=True)
class MultiNPNTransform:
    """A joint NPN transform of a multi-output function vector.

    All outputs share one input permutation and one input-flip mask
    (they read the same primary inputs), while output negation is free
    *per output*: ``g_j(y) = f_j(..., y_perm[i] ^ flips_i, ...) ^
    output_flips[j]``.  Output order is never permuted — callers that
    need order-insensitivity sort before canonicalizing.
    """

    perm: tuple[int, ...]
    input_flips: int
    output_flips: tuple[bool, ...]

    @property
    def num_outputs(self) -> int:
        """Number of outputs the transform covers."""
        return len(self.output_flips)

    def component(self, index: int) -> NPNTransform:
        """The single-output transform seen by output ``index``."""
        return NPNTransform(
            self.perm, self.input_flips, self.output_flips[index]
        )

    def apply(
        self, tables: tuple[TruthTable, ...]
    ) -> tuple[TruthTable, ...]:
        """Apply the transform to a function vector."""
        if len(tables) != len(self.output_flips):
            raise ValueError("transform output count does not match")
        return tuple(
            self.component(j).apply(table)
            for j, table in enumerate(tables)
        )

    def inverse(self) -> "MultiNPNTransform":
        """The transform undoing this one."""
        base = NPNTransform(self.perm, self.input_flips, False).inverse()
        return MultiNPNTransform(
            base.perm, base.input_flips, self.output_flips
        )

    @staticmethod
    def identity(num_vars: int, num_outputs: int) -> "MultiNPNTransform":
        """The do-nothing transform."""
        return MultiNPNTransform(
            tuple(range(num_vars)), 0, (False,) * num_outputs
        )


def canonicalize_multi(
    tables: tuple[TruthTable, ...] | list[TruthTable],
) -> tuple[tuple[TruthTable, ...], MultiNPNTransform]:
    """Joint NPN canonical form of a multi-output function vector.

    For ``n <= 4`` the form is exact over the *shared-input* transform
    group: all ``2**n * n!`` input permutation/negation pairs are
    enumerated, each output independently picks the cheaper of table
    and complement, and the lexicographically smallest bit vector
    wins.  Two function vectors reachable from each other by that
    group canonicalize identically, so one store row serves the whole
    orbit.  Above four inputs the orbit is too large for pure Python
    and the identity transform is returned (exact-table keying — still
    a valid, just finer, store key).
    """
    tables = tuple(tables)
    if not tables:
        raise ValueError("need at least one output")
    n = tables[0].num_vars
    for table in tables:
        if table.num_vars != n:
            raise ValueError("outputs must share one input space")
    if len(tables) == 1:
        canon, transform = canonicalize(tables[0])
        return (canon,), MultiNPNTransform(
            transform.perm, transform.input_flips, (transform.output_flip,)
        )
    if n > _EXACT_LIMIT:
        return tables, MultiNPNTransform.identity(n, len(tables))
    mask = (1 << (1 << n)) - 1
    best_key: tuple[int, ...] | None = None
    best: MultiNPNTransform | None = None
    for perm in itertools.permutations(range(n)):
        for flips in range(1 << n):
            key = []
            out_flips = []
            for table in tables:
                bits = npn_apply_bits(table.bits, n, perm, flips, False)
                flipped = bits ^ mask
                if flipped < bits:
                    key.append(flipped)
                    out_flips.append(True)
                else:
                    key.append(bits)
                    out_flips.append(False)
            key = tuple(key)
            if best_key is None or key < best_key:
                best_key = key
                best = MultiNPNTransform(perm, flips, tuple(out_flips))
    assert best is not None and best_key is not None
    canon = tuple(TruthTable(bits, n) for bits in best_key)
    return canon, best


def npn_classes(num_vars: int) -> list[TruthTable]:
    """All NPN class representatives of ``num_vars``-input functions.

    Exhaustive orbit sweep; practical for ``n <= 4`` (for ``n = 4`` this
    recovers the classic 222 classes).  Representatives are the
    orbit-minimal tables, returned sorted by their bit-packed value.
    """
    if num_vars > _EXACT_LIMIT:
        raise ValueError("class enumeration is exhaustive; use n <= 4")
    seen: set[int] = set()
    reps: list[TruthTable] = []
    for bits in range(1 << (1 << num_vars)):
        if bits in seen:
            continue
        orbit = npn_orbit(bits, num_vars)
        seen.update(orbit)
        reps.append(TruthTable(min(orbit), num_vars))
    return sorted(reps, key=lambda t: t.bits)
