"""Bit-packed truth tables.

A :class:`TruthTable` stores a Boolean function ``f : B^n -> B`` as a
``2**n``-bit integer.  Row ``m`` of the table (bit ``m`` of the integer)
holds ``f`` evaluated at the assignment in which variable ``x_i`` takes
the value of bit ``i`` of ``m`` — i.e. ``x_0`` is the least significant
variable.  This is the same convention as ABC, mockturtle and percy, so
hexadecimal literals from those tools (and from the paper, e.g. the
function ``0x8ff8`` of Example 7) can be used directly.

Truth tables are immutable value objects: every operation returns a new
instance.  Operators ``& | ^ ~`` are overloaded with their Boolean
meaning.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from ..kernels.bitops import var_mask as _kernel_var_mask
from ..kernels.tables import (
    cofactor_bits,
    depends_bits,
    permute_bits,
    support_bits,
)

__all__ = [
    "TruthTable",
    "constant",
    "projection",
    "from_bits",
    "from_function",
    "from_hex",
    "all_tables",
]


class TruthTable:
    """An immutable Boolean function of ``num_vars`` inputs.

    Parameters
    ----------
    bits:
        Integer whose bit ``m`` is the function value on row ``m``.
    num_vars:
        Number of input variables ``n``; the table has ``2**n`` rows.
    """

    __slots__ = ("_bits", "_num_vars", "_support")

    def __init__(self, bits: int, num_vars: int) -> None:
        if num_vars < 0:
            raise ValueError(f"num_vars must be non-negative, got {num_vars}")
        size = 1 << num_vars
        if bits < 0:
            raise ValueError("bits must be a non-negative integer")
        if bits >> size:
            raise ValueError(
                f"bits 0x{bits:x} does not fit in a {num_vars}-variable table"
            )
        self._bits = bits
        self._num_vars = num_vars
        self._support: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def bits(self) -> int:
        """The raw table as an integer (bit ``m`` = value on row ``m``)."""
        return self._bits

    @property
    def num_vars(self) -> int:
        """Number of input variables."""
        return self._num_vars

    @property
    def num_rows(self) -> int:
        """Number of rows, ``2**num_vars``."""
        return 1 << self._num_vars

    def value(self, assignment: int) -> int:
        """Return ``f`` at the given row index (0 or 1)."""
        if not 0 <= assignment < self.num_rows:
            raise IndexError(f"row {assignment} out of range")
        return (self._bits >> assignment) & 1

    def __call__(self, *inputs: int) -> int:
        """Evaluate on explicit per-variable values, ``f(x0, x1, ...)``."""
        if len(inputs) != self._num_vars:
            raise ValueError(
                f"expected {self._num_vars} inputs, got {len(inputs)}"
            )
        row = 0
        for i, v in enumerate(inputs):
            if v not in (0, 1, True, False):
                raise ValueError(f"input {i} must be Boolean, got {v!r}")
            if v:
                row |= 1 << i
        return self.value(row)

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self._bits == other._bits and self._num_vars == other._num_vars

    def __hash__(self) -> int:
        return hash((self._bits, self._num_vars))

    def __repr__(self) -> str:
        return f"TruthTable(0x{self.to_hex()}, num_vars={self._num_vars})"

    def __invert__(self) -> "TruthTable":
        return TruthTable(self._bits ^ (self.num_rows_mask()), self._num_vars)

    def _check_compatible(self, other: "TruthTable") -> None:
        if not isinstance(other, TruthTable):
            raise TypeError(f"expected TruthTable, got {type(other).__name__}")
        if other._num_vars != self._num_vars:
            raise ValueError(
                "variable counts differ: "
                f"{self._num_vars} vs {other._num_vars}"
            )

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self._bits & other._bits, self._num_vars)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self._bits | other._bits, self._num_vars)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self._bits ^ other._bits, self._num_vars)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def num_rows_mask(self) -> int:
        """All-ones mask over the table's rows."""
        return (1 << self.num_rows) - 1

    def to_hex(self) -> str:
        """Hexadecimal string padded to the table width (no ``0x``)."""
        digits = max(1, self.num_rows // 4)
        return format(self._bits, f"0{digits}x")

    def to_binary(self) -> str:
        """Binary string, most significant row first."""
        return format(self._bits, f"0{self.num_rows}b")

    def rows(self) -> Iterator[int]:
        """Yield the function value row by row (row 0 first)."""
        for m in range(self.num_rows):
            yield (self._bits >> m) & 1

    def onset(self) -> list[int]:
        """Row indices where the function is 1."""
        return [m for m in range(self.num_rows) if (self._bits >> m) & 1]

    def offset(self) -> list[int]:
        """Row indices where the function is 0."""
        return [m for m in range(self.num_rows) if not (self._bits >> m) & 1]

    def count_ones(self) -> int:
        """Number of onset minterms."""
        return self._bits.bit_count()

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def is_constant(self) -> bool:
        """True if the function is constant 0 or constant 1."""
        return self._bits == 0 or self._bits == self.num_rows_mask()

    def depends_on(self, var: int) -> bool:
        """True if the function depends on variable ``var``."""
        if not 0 <= var < self._num_vars:
            raise IndexError(f"variable {var} out of range")
        return depends_bits(self._bits, self._num_vars, var)

    def support(self) -> tuple[int, ...]:
        """Indices of the variables the function actually depends on
        (computed once and cached; word-parallel kernel)."""
        if self._support is None:
            self._support = support_bits(self._bits, self._num_vars)
        return self._support

    def support_size(self) -> int:
        """Number of variables in the functional support."""
        return len(self.support())

    # ------------------------------------------------------------------
    # cofactors and quantification
    # ------------------------------------------------------------------
    def cofactor(self, var: int, value: int) -> "TruthTable":
        """Shannon cofactor with ``x_var`` fixed to ``value``.

        The result keeps the same variable count (the fixed variable
        becomes vacuous), matching ABC conventions.
        """
        if not 0 <= var < self._num_vars:
            raise IndexError(f"variable {var} out of range")
        if value not in (0, 1):
            raise ValueError("value must be 0 or 1")
        return TruthTable(
            cofactor_bits(self._bits, self._num_vars, var, value),
            self._num_vars,
        )

    def restrict(self, var: int, value: int) -> "TruthTable":
        """Cofactor that *removes* the variable, shrinking the table."""
        cof = self.cofactor(var, value)
        return cof.remove_vacuous_variable(var)

    def remove_vacuous_variable(self, var: int) -> "TruthTable":
        """Drop a variable the function does not depend on."""
        if self.depends_on(var):
            raise ValueError(f"function depends on variable {var}")
        bits = 0
        out_row = 0
        for m in range(self.num_rows):
            if (m >> var) & 1:
                continue
            if (self._bits >> m) & 1:
                bits |= 1 << out_row
            out_row += 1
        return TruthTable(bits, self._num_vars - 1)

    def exists(self, var: int) -> "TruthTable":
        """Existential quantification over ``x_var``."""
        return self.cofactor(var, 0) | self.cofactor(var, 1)

    def forall(self, var: int) -> "TruthTable":
        """Universal quantification over ``x_var``."""
        return self.cofactor(var, 0) & self.cofactor(var, 1)

    # ------------------------------------------------------------------
    # variable manipulation
    # ------------------------------------------------------------------
    def flip_var(self, var: int) -> "TruthTable":
        """Negate input variable ``x_var``."""
        if not 0 <= var < self._num_vars:
            raise IndexError(f"variable {var} out of range")
        masked = _var_mask(var, self._num_vars)
        shift = 1 << var
        hi = self._bits & masked
        lo = self._bits & ~masked & self.num_rows_mask()
        return TruthTable((hi >> shift) | (lo << shift), self._num_vars)

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Apply an input permutation.

        ``perm[i] = j`` means old variable ``x_i`` is routed to new
        position ``x_j``:  ``g(y_0..y_{n-1}) = f(y_{perm[0]}, ...)`` in
        the sense that the value of new row ``m'`` equals the value of
        the old row obtained by moving bit ``i`` to bit ``perm[i]``.
        """
        if sorted(perm) != list(range(self._num_vars)):
            raise ValueError(f"{perm!r} is not a permutation of the inputs")
        return TruthTable(
            permute_bits(self._bits, self._num_vars, tuple(perm)),
            self._num_vars,
        )

    def swap_vars(self, a: int, b: int) -> "TruthTable":
        """Exchange two input variables."""
        perm = list(range(self._num_vars))
        perm[a], perm[b] = perm[b], perm[a]
        return self.permute(perm)

    def extend(self, num_vars: int) -> "TruthTable":
        """Pad with vacuous high variables up to ``num_vars`` inputs."""
        if num_vars < self._num_vars:
            raise ValueError("cannot shrink; use restrict()")
        bits = self._bits
        rows = self.num_rows
        for _ in range(num_vars - self._num_vars):
            bits = bits | (bits << rows)
            rows <<= 1
        return TruthTable(bits, num_vars)

    def compose(self, inner: Sequence["TruthTable"]) -> "TruthTable":
        """Functional composition ``f(g_0(x), ..., g_{n-1}(x))``.

        Every ``inner`` table must share a common variable count, which
        becomes the variable count of the result.
        """
        if len(inner) != self._num_vars:
            raise ValueError(
                f"need {self._num_vars} inner functions, got {len(inner)}"
            )
        if not inner:
            return TruthTable(self._bits, 0)
        n_inner = inner[0].num_vars
        for g in inner:
            if g.num_vars != n_inner:
                raise ValueError("inner functions disagree on variable count")
        bits = 0
        for m in range(1 << n_inner):
            row = 0
            for i, g in enumerate(inner):
                if (g.bits >> m) & 1:
                    row |= 1 << i
            if (self._bits >> row) & 1:
                bits |= 1 << m
        return TruthTable(bits, n_inner)


#: Mask of the rows in which ``x_var = 1`` — the kernel layer's cache.
_var_mask = _kernel_var_mask


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------
def constant(value: int, num_vars: int) -> TruthTable:
    """The constant-0 or constant-1 function of ``num_vars`` inputs."""
    if value not in (0, 1):
        raise ValueError("value must be 0 or 1")
    bits = ((1 << (1 << num_vars)) - 1) if value else 0
    return TruthTable(bits, num_vars)


def projection(var: int, num_vars: int, complemented: bool = False) -> TruthTable:
    """The projection ``f(x) = x_var`` (or its complement)."""
    if not 0 <= var < num_vars:
        raise IndexError(f"variable {var} out of range for {num_vars} inputs")
    bits = _var_mask(var, num_vars)
    table = TruthTable(bits, num_vars)
    return ~table if complemented else table


def from_bits(values: Iterable[int], num_vars: int) -> TruthTable:
    """Build a table from an iterable of row values (row 0 first)."""
    bits = 0
    count = 0
    for m, v in enumerate(values):
        if v not in (0, 1):
            raise ValueError(f"row {m} must be 0 or 1, got {v!r}")
        if v:
            bits |= 1 << m
        count += 1
    if count != 1 << num_vars:
        raise ValueError(
            f"expected {1 << num_vars} rows for {num_vars} variables, got {count}"
        )
    return TruthTable(bits, num_vars)


def from_function(fn: Callable[..., int], num_vars: int) -> TruthTable:
    """Tabulate a Python callable ``fn(x0, ..., x_{n-1}) -> {0,1}``."""
    bits = 0
    for m in range(1 << num_vars):
        inputs = [(m >> i) & 1 for i in range(num_vars)]
        if fn(*inputs):
            bits |= 1 << m
    return TruthTable(bits, num_vars)


def from_hex(hex_string: str, num_vars: int) -> TruthTable:
    """Parse a hexadecimal truth-table literal such as ``"8ff8"``."""
    cleaned = hex_string.lower().removeprefix("0x")
    return TruthTable(int(cleaned, 16), num_vars)


def all_tables(num_vars: int) -> Iterator[TruthTable]:
    """Iterate over every function of ``num_vars`` inputs (use n <= 4!)."""
    for bits in range(1 << (1 << num_vars)):
        yield TruthTable(bits, num_vars)
