"""Seeded generators for the paper's benchmark function suites.

The paper evaluates on five collections: all 222 4-input NPN classes
(NPN4), fully DSD-decomposable functions of 6 and 8 inputs
(FDSD6/FDSD8), and partially DSD-decomposable functions (PDSD6/PDSD8).
The DSD collections came from the authors' practical mapping runs and
are not published, so we substitute *synthetic* collections drawn from
the same structural classes (see DESIGN.md §5):

* FDSD functions are random read-once trees of 2-input gates, which are
  fully DSD-decomposable by construction.
* PDSD functions embed one random *prime* (non-decomposable) block of
  configurable arity into such a tree, making the result partially but
  not fully decomposable.

Every generator is deterministic given its seed, and the test suite
cross-checks each emitted function against the DSD classifier.
"""

from __future__ import annotations

import random

from .dsd import dsd_kind, DSDKind
from .operations import NONTRIVIAL_BINARY_OPS, binary_op_table
from .table import TruthTable, projection

__all__ = [
    "random_fully_dsd",
    "random_partially_dsd",
    "random_prime_function",
    "fdsd_suite",
    "pdsd_suite",
]

_PRIME_SAMPLE_LIMIT = 10_000


def _random_read_once_tree(
    rng: random.Random, leaves: list[TruthTable]
) -> TruthTable:
    """Combine the given leaf functions into one random read-once tree
    of nontrivial 2-input gates."""
    forest = list(leaves)
    while len(forest) > 1:
        i = rng.randrange(len(forest))
        a = forest.pop(i)
        j = rng.randrange(len(forest))
        b = forest.pop(j)
        op = binary_op_table(rng.choice(NONTRIVIAL_BINARY_OPS))
        forest.append(op.compose([a, b]))
    return forest[0]


def random_fully_dsd(num_vars: int, rng: random.Random) -> TruthTable:
    """A random fully DSD-decomposable function of ``num_vars`` inputs."""
    if num_vars < 2:
        raise ValueError("need at least two variables")
    leaves = [projection(v, num_vars) for v in range(num_vars)]
    return _random_read_once_tree(rng, leaves)


def random_prime_function(num_vars: int, rng: random.Random) -> TruthTable:
    """A random non-decomposable (prime) function with full support.

    Rejection-samples random tables; prime functions are plentiful for
    ``num_vars >= 3`` so this terminates quickly.
    """
    if num_vars < 3:
        raise ValueError("prime functions need at least three variables")
    rows = 1 << num_vars
    for _ in range(_PRIME_SAMPLE_LIMIT):
        table = TruthTable(rng.getrandbits(rows), num_vars)
        if table.support_size() != num_vars:
            continue
        if dsd_kind(table) == DSDKind.PRIME:
            return table
    raise RuntimeError(
        f"failed to sample a prime {num_vars}-input function "
        f"in {_PRIME_SAMPLE_LIMIT} tries"
    )


def random_partially_dsd(
    num_vars: int,
    rng: random.Random,
    prime_arity: int = 3,
) -> TruthTable:
    """A random partially (not fully) DSD-decomposable function.

    One prime block of ``prime_arity`` inputs is wrapped in a read-once
    gate tree over the remaining variables, so DSD extraction succeeds
    on the tree part but stops at the prime block.
    """
    if not 3 <= prime_arity < num_vars:
        raise ValueError(
            "prime_arity must satisfy 3 <= prime_arity < num_vars"
        )
    while True:
        prime_local = random_prime_function(prime_arity, rng)
        variables = list(range(num_vars))
        rng.shuffle(variables)
        prime_vars = variables[:prime_arity]
        free_vars = variables[prime_arity:]
        prime_leaf = prime_local.compose(
            [projection(v, num_vars) for v in prime_vars]
        )
        leaves = [prime_leaf] + [projection(v, num_vars) for v in free_vars]
        candidate = _random_read_once_tree(rng, leaves)
        # Composition with gates occasionally simplifies the prime block
        # away; keep sampling until the classifier agrees.
        if dsd_kind(candidate) == DSDKind.PARTIAL:
            return candidate


def fdsd_suite(
    num_vars: int, count: int, seed: int = 2023
) -> list[TruthTable]:
    """Deterministic suite of distinct fully-DSD functions."""
    rng = random.Random(seed)
    suite: list[TruthTable] = []
    seen: set[int] = set()
    while len(suite) < count:
        table = random_fully_dsd(num_vars, rng)
        if table.bits in seen or table.is_constant():
            continue
        seen.add(table.bits)
        suite.append(table)
    return suite


def pdsd_suite(
    num_vars: int,
    count: int,
    seed: int = 2023,
    prime_arity: int = 3,
) -> list[TruthTable]:
    """Deterministic suite of distinct partially-DSD functions."""
    rng = random.Random(seed)
    suite: list[TruthTable] = []
    seen: set[int] = set()
    while len(suite) < count:
        table = random_partially_dsd(num_vars, rng, prime_arity=prime_arity)
        if table.bits in seen:
            continue
        seen.add(table.bits)
        suite.append(table)
    return suite
