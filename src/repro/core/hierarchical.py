"""Hierarchical STP synthesis: DSD-guided factorization with exact
synthesis of prime blocks.

The STP quartering criterion (Section III-B) factors disjoint-support
structure *greedily and deterministically* — exactly what makes the
paper's method fast on the FDSD/PDSD suites: a fully DSD-decomposable
function factors all the way down to single variables without any
search, and a partially decomposable one factors down to small prime
blocks that the DAG-based engine then synthesizes exactly.

The resulting chain is optimal whenever the DSD skeleton is
optimal-compatible (always true for fully-DSD functions, whose optimum
is the read-once tree with ``support - 1`` gates).  The solution *set*
is generated as (product of prime-block solution sets) × (all internal
polarity variants), mirroring the all-solutions semantics of the flat
engine within the fixed DSD skeleton.

Prime blocks are dispatched through the engine registry
(:mod:`repro.engine`), each in a child
:class:`~repro.core.context.SynthesisContext` so sub-deadlines nest
under the run's budget, the cross-call caches are shared, and prime
stats merge back without double counting.
"""

from __future__ import annotations

import time
from itertools import product as iter_product
from typing import Sequence

from ..chain.chain import BooleanChain
from ..chain.transform import (
    flip_signal,
    lift_chain,
    shrink_to_support,
    trivial_chain,
)
from ..truthtable.dsd import DSDNode, dsd_decompose
from ..truthtable.operations import NONTRIVIAL_BINARY_OPS
from ..truthtable.table import TruthTable
from .context import SynthesisContext
from .spec import Deadline, SynthesisResult, SynthesisSpec
from .synthesizer import _canonicalize_dont_cares

__all__ = ["HierarchicalSynthesizer", "hierarchical_synthesize"]


class HierarchicalSynthesizer:
    """DSD-first exact synthesis (the STP fast path).

    Parameters
    ----------
    operators:
        Allowed 2-input codes, handed to the prime-block engine.
    max_solutions:
        Cap on the returned solution set.
    all_solutions:
        When False only the base chain is returned.
    prime_synthesizer:
        Optional explicit engine object for non-decomposable blocks
        (anything with the ``synthesize(function, timeout=...)``
        signature); overrides ``prime_engine``.
    prime_engine:
        Registry name of the prime-block engine (default ``"stp"``).
    """

    def __init__(
        self,
        operators: Sequence[int] = NONTRIVIAL_BINARY_OPS,
        max_solutions: int = 10_000,
        all_solutions: bool = True,
        prime_synthesizer=None,
        prime_engine: str = "stp",
    ) -> None:
        self._operators = tuple(operators)
        self._max_solutions = max_solutions
        self._all_solutions = all_solutions
        self._prime = prime_synthesizer
        self._prime_engine = prime_engine

    def synthesize(
        self,
        function: TruthTable,
        timeout: float | None = None,
        ctx: SynthesisContext | None = None,
    ) -> SynthesisResult:
        """Synthesize via DSD factorization + exact prime synthesis."""
        spec = SynthesisSpec(
            function=function,
            operators=self._operators,
            timeout=timeout,
            all_solutions=self._all_solutions,
            max_solutions=self._max_solutions,
        )
        return self.run(spec, ctx=ctx)

    def run(
        self, spec: SynthesisSpec, ctx: SynthesisContext | None = None
    ) -> SynthesisResult:
        """Synthesize according to an explicit spec."""
        if ctx is None:
            ctx = SynthesisContext.create(timeout=spec.timeout)
        start = time.perf_counter()
        deadline = ctx.deadline
        stats = ctx.stats

        chain = trivial_chain(spec.function)
        if chain is not None:
            return SynthesisResult(
                spec, [chain], 0, time.perf_counter() - start, stats
            )

        with ctx.stage("normalize"):
            local, support = shrink_to_support(spec.function)
        with ctx.stage("dsd"):
            tree = dsd_decompose(local)

        # Synthesize every prime block exactly; collect alternatives.
        prime_nodes = _collect_primes(tree)
        prime_solutions: list[list[BooleanChain]] = []
        for node in prime_nodes:
            assert node.prime_table is not None
            result = self._synthesize_prime(node.prime_table, ctx)
            stats.merge(result.stats)
            prime_solutions.append(result.chains)

        # Base chain for each combination of prime alternatives.
        chains: list[BooleanChain] = []
        seen: set[tuple] = set()
        combos = iter_product(*prime_solutions) if prime_solutions else [()]
        for combo in combos:
            deadline.check()
            picked = dict(zip(map(id, prime_nodes), combo))
            built = BooleanChain(local.num_vars)
            top, complemented = _build(tree, built, picked)
            built.set_output(top, complemented)
            base = _canonicalize_dont_cares(built)
            if base.simulate_output() != local:
                raise AssertionError("hierarchical chain is incorrect")
            for variant in self._polarity_closure(base, local, deadline):
                key = variant.signature()
                if key in seen:
                    continue
                seen.add(key)
                chains.append(variant)
                if len(chains) >= self._max_solutions:
                    break
            if len(chains) >= self._max_solutions or not self._all_solutions:
                break

        if not self._all_solutions:
            chains = chains[:1]
        lifted = [
            lift_chain(c, spec.function.num_vars, support) for c in chains
        ]
        num_gates = lifted[0].num_gates if lifted else 0
        return SynthesisResult(
            spec, lifted, num_gates, time.perf_counter() - start, stats
        )

    def _synthesize_prime(
        self, prime_table: TruthTable, ctx: SynthesisContext
    ) -> SynthesisResult:
        """One prime block, in a child context of the run.

        A caller-supplied ``prime_synthesizer`` object is honoured
        as-is; otherwise the block dispatches through the engine
        registry, sharing the run's caches and nesting its deadline.
        """
        if self._prime is not None:
            return self._prime.synthesize(
                prime_table, timeout=ctx.deadline.remaining()
            )
        # Imported lazily: repro.engine imports this module's package.
        from ..engine import create_engine

        prime_spec = SynthesisSpec(
            function=prime_table,
            operators=self._operators,
            timeout=ctx.deadline.remaining(),
            all_solutions=self._all_solutions,
            max_solutions=max(64, self._max_solutions // 8),
        )
        engine = create_engine(self._prime_engine)
        return engine.synthesize(prime_spec, ctx.child(fresh_stats=True))

    def _polarity_closure(
        self, base: BooleanChain, local: TruthTable, deadline: Deadline
    ):
        """Variants of a base chain under internal-signal complement."""
        if not self._all_solutions:
            yield base
            return
        output_signal = base.outputs[0][0]
        flippable = [
            base.num_inputs + i
            for i in range(base.num_gates)
            if base.num_inputs + i != output_signal
        ]
        limit = self._max_solutions
        for combo in range(min(1 << len(flippable), limit)):
            deadline.check(every=32)
            variant = base
            for j, signal in enumerate(flippable):
                if (combo >> j) & 1:
                    variant = flip_signal(variant, signal)
            yield _canonicalize_dont_cares(variant)


def _collect_primes(tree: DSDNode) -> list[DSDNode]:
    out: list[DSDNode] = []
    if tree.kind == "prime":
        out.append(tree)
    for child in tree.children:
        out.extend(_collect_primes(child))
    return out


def _build(
    node: DSDNode,
    chain: BooleanChain,
    picked: dict[int, BooleanChain],
) -> tuple[int, bool]:
    """Emit gates for a DSD node; returns (signal, complemented)."""
    if node.kind == "var":
        return node.var_index, False
    if node.kind == "gate":
        (sig_a, comp_a) = _build(node.children[0], chain, picked)
        (sig_b, comp_b) = _build(node.children[1], chain, picked)
        code = node.op_code
        if comp_a:
            code = _flip_input(code, 0)
        if comp_b:
            code = _flip_input(code, 1)
        return chain.add_gate(code, (sig_a, sig_b)), False
    # Prime block: splice the selected sub-chain onto the child signals.
    assert node.prime_table is not None
    child_signals = []
    complemented_pis: set[int] = set()
    for i, child in enumerate(node.children):
        sig, comp = _build(child, chain, picked)
        if comp:
            complemented_pis.add(i)
        child_signals.append(sig)
    sub = picked[id(node)]
    mapping: dict[int, int] = {}
    for i, sig in enumerate(child_signals):
        mapping[i] = sig
    for gi, gate in enumerate(sub.gates):
        new_fanins = tuple(mapping[f] for f in gate.fanins)
        code = gate.op
        # Absorb complemented child drivers into the gate codes.
        for pos, f in enumerate(gate.fanins):
            if f < sub.num_inputs and f in complemented_pis:
                code = _flip_input(code, pos)
        new_signal = chain.add_gate(code, new_fanins)
        mapping[sub.num_inputs + gi] = new_signal
    out_signal, out_comp = sub.outputs[0]
    if out_signal == BooleanChain.CONST0:
        raise AssertionError("prime blocks are never constant")
    return mapping[out_signal], out_comp


def _flip_input(code: int, position: int) -> int:
    out = 0
    for row in range(4):
        if (code >> (row ^ (1 << position))) & 1:
            out |= 1 << row
    return out


def hierarchical_synthesize(
    function: TruthTable, timeout: float | None = None, **kwargs
) -> SynthesisResult:
    """One-call hierarchical (DSD-first) STP synthesis."""
    return HierarchicalSynthesizer(**kwargs).synthesize(
        function, timeout=timeout
    )
