"""Synthesis problem specification and result types."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..chain.chain import BooleanChain
from ..truthtable.operations import NONTRIVIAL_BINARY_OPS
from ..truthtable.table import TruthTable

__all__ = ["SynthesisSpec", "SynthesisResult", "SynthesisStats", "Deadline"]


class Deadline:
    """Cooperative wall-clock budget shared across a synthesis run.

    Pure-Python algorithms cannot be preempted safely, so all long loops
    poll :meth:`check`.  A ``limit`` of ``None`` never expires.
    """

    def __init__(self, limit_seconds: float | None) -> None:
        self._limit = limit_seconds
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.perf_counter() - self._start

    def expired(self) -> bool:
        """True once the budget is exhausted."""
        return self._limit is not None and self.elapsed >= self._limit

    def check(self) -> None:
        """Raise :class:`TimeoutError` once the budget is exhausted."""
        if self.expired():
            raise TimeoutError(
                f"synthesis exceeded {self._limit:.3f}s budget"
            )


@dataclass
class SynthesisSpec:
    """What to synthesize and under which constraints.

    Parameters
    ----------
    function:
        The single-output target function.
    operators:
        Allowed 2-input operator codes (default: the ten operators that
        depend on both inputs).
    max_gates:
        Hard cap on the number of gates tried before giving up.
    timeout:
        Wall-clock budget in seconds (None = unlimited).
    all_solutions:
        When True (the paper's mode) every optimal chain is returned;
        when False the search stops at the first chain.
    verify:
        Run the STP circuit AllSAT verification (Section III-C) on each
        candidate before accepting it.
    max_solutions:
        Safety cap on the size of the returned solution set.
    """

    function: TruthTable
    operators: tuple[int, ...] = NONTRIVIAL_BINARY_OPS
    max_gates: int | None = None
    timeout: float | None = None
    all_solutions: bool = True
    verify: bool = True
    max_solutions: int = 10_000

    def __post_init__(self) -> None:
        for code in self.operators:
            if not 0 <= code <= 0xF:
                raise ValueError(f"bad operator code {code}")

    def effective_max_gates(self) -> int:
        """Default gate cap: generous for the support size."""
        if self.max_gates is not None:
            return self.max_gates
        support = self.function.support_size()
        return max(3 * support, 7)


@dataclass
class SynthesisStats:
    """Search-effort counters filled in by the synthesizer."""

    fences_examined: int = 0
    dags_examined: int = 0
    candidates_generated: int = 0
    candidates_verified: int = 0
    verification_failures: int = 0

    def merge(self, other: "SynthesisStats") -> None:
        """Accumulate counters from a sub-run."""
        self.fences_examined += other.fences_examined
        self.dags_examined += other.dags_examined
        self.candidates_generated += other.candidates_generated
        self.candidates_verified += other.candidates_verified
        self.verification_failures += other.verification_failures


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    spec: SynthesisSpec
    chains: list[BooleanChain]
    num_gates: int
    runtime: float
    stats: SynthesisStats = field(default_factory=SynthesisStats)

    @property
    def num_solutions(self) -> int:
        """Size of the optimal-solution set."""
        return len(self.chains)

    @property
    def best(self) -> BooleanChain:
        """The first optimal chain (deterministic order)."""
        if not self.chains:
            raise ValueError("no solutions")
        return self.chains[0]

    def mean_time_per_solution(self) -> float:
        """The paper's per-solution mean (Total / number)."""
        if not self.chains:
            return self.runtime
        return self.runtime / len(self.chains)
